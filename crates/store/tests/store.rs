//! Deterministic tests of the `.dza` container, the content-addressed
//! registry, and the tiered store.

use dz_compress::codec::{CodecId, PackedLayer, SignMatrix, SignScope};
use dz_compress::pack::CompressedMatrix;
use dz_compress::pipeline::{CompressedDelta, DeltaCompressConfig, SizeReport};
use dz_compress::quant::{quantize_slice, QuantSpec};
use dz_store::{
    sha256, ArtifactReader, ArtifactWriter, FetchTier, Registry, StoreError, TensorKind,
    TieredDeltaStore,
};
use dz_tensor::{Matrix, Rng};
use std::collections::BTreeMap;
use std::io::Cursor;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("dz-store-test-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn packed_matrix(d_out: usize, d_in: usize, bits: u32, seed: u64) -> CompressedMatrix {
    let mut rng = Rng::seeded(seed);
    let spec = QuantSpec::new(bits, 8);
    let wt = Matrix::randn(d_out, d_in, 0.05, &mut rng);
    let mut levels = Vec::new();
    let mut scales = Vec::new();
    for r in 0..d_out {
        let (l, s) = quantize_slice(wt.row(r), spec);
        levels.extend(l);
        scales.extend(s);
    }
    CompressedMatrix::from_dense(d_out, d_in, &levels, scales, spec)
}

fn fixture_delta(seed: u64) -> CompressedDelta {
    let mut layers = BTreeMap::new();
    layers.insert(
        "layers.0.wq".to_string(),
        PackedLayer::Quant(packed_matrix(8, 16, 4, seed)),
    );
    layers.insert(
        "layers.0.wk".to_string(),
        PackedLayer::Quant(packed_matrix(8, 16, 2, seed ^ 1)),
    );
    let mut rest = BTreeMap::new();
    let mut rng = Rng::seeded(seed ^ 2);
    rest.insert("tok_emb".to_string(), Matrix::randn(12, 8, 1.0, &mut rng));
    rest.insert("ln.g".to_string(), Matrix::randn(1, 8, 0.1, &mut rng));
    let compressed: usize = layers.values().map(|c| c.packed_bytes()).sum();
    CompressedDelta {
        layers,
        rest,
        codec: CodecId::SparseGptStar,
        config: DeltaCompressConfig::starred(4),
        report: SizeReport {
            compressed_linear_bytes: compressed,
            uncompressed_rest_bytes: (12 * 8 + 8) * 2,
            full_fp16_bytes: 4096,
            lossless_linear_bytes: None,
        },
    }
}

fn container_bytes(delta: &CompressedDelta, name: &str) -> Vec<u8> {
    let sink = Cursor::new(Vec::new());
    let out = dz_store::dza::write_delta(sink, name, sha256(b"base"), delta).expect("write");
    out.into_inner()
}

#[test]
fn container_round_trips_a_delta() {
    let delta = fixture_delta(1);
    let bytes = container_bytes(&delta, "vicuna-tiny");
    let mut reader = ArtifactReader::open(Cursor::new(&bytes)).expect("open");
    assert_eq!(reader.manifest().name, "vicuna-tiny");
    assert_eq!(reader.manifest().base_hash, sha256(b"base"));
    assert_eq!(reader.manifest().tensors.len(), 4);
    let back = reader.read_delta().expect("read delta");
    assert_eq!(back, delta);
}

#[test]
fn single_tensors_are_randomly_accessible() {
    let delta = fixture_delta(2);
    let bytes = container_bytes(&delta, "v");
    let mut reader = ArtifactReader::open(Cursor::new(&bytes)).expect("open");
    // Read in an order unrelated to file order.
    let emb = reader.read_dense("tok_emb").expect("dense");
    assert_eq!(&emb, &delta.rest["tok_emb"]);
    let wk = reader.read_packed("layers.0.wk").expect("packed");
    assert_eq!(&wk, &delta.layers["layers.0.wk"]);
    // Kind confusion is rejected.
    assert!(matches!(
        reader.read_packed("tok_emb"),
        Err(StoreError::Corrupt(_))
    ));
    assert!(matches!(
        reader.read_dense("nope"),
        Err(StoreError::UnknownTensor(_))
    ));
}

#[test]
fn streaming_writer_matches_write_delta() {
    let delta = fixture_delta(3);
    let mut w = ArtifactWriter::new(
        Cursor::new(Vec::new()),
        "v",
        sha256(b"base"),
        delta.codec,
        delta.config,
        delta.report,
    )
    .expect("writer");
    for (name, cm) in &delta.layers {
        w.add_packed(name, cm).expect("add packed");
    }
    for (name, m) in &delta.rest {
        w.add_dense(name, m).expect("add dense");
    }
    let streamed = w.finish().expect("finish").into_inner();
    assert_eq!(streamed, container_bytes(&delta, "v"));
}

#[test]
fn duplicate_tensor_names_rejected() {
    let delta = fixture_delta(4);
    let mut w = ArtifactWriter::new(
        Cursor::new(Vec::new()),
        "v",
        sha256(b"base"),
        delta.codec,
        delta.config,
        delta.report,
    )
    .expect("writer");
    w.add_packed("wq", &delta.layers["layers.0.wq"])
        .expect("first");
    assert!(matches!(
        w.add_packed("wq", &delta.layers["layers.0.wq"]),
        Err(StoreError::InvalidName(_))
    ));
}

#[test]
fn bad_magic_and_version_are_typed_errors() {
    let bytes = container_bytes(&fixture_delta(5), "v");
    let mut garbled = bytes.clone();
    garbled[0] = b'X';
    assert!(matches!(
        ArtifactReader::open(Cursor::new(&garbled)),
        Err(StoreError::BadMagic)
    ));
    let mut versioned = bytes.clone();
    versioned[4] = 0xFF;
    assert!(matches!(
        ArtifactReader::open(Cursor::new(&versioned)),
        Err(StoreError::BadVersion(_))
    ));
    assert!(ArtifactReader::open(Cursor::new(b"".as_slice())).is_err());
}

#[test]
fn manifest_knows_payload_bytes() {
    let delta = fixture_delta(6);
    let bytes = container_bytes(&delta, "v");
    let reader = ArtifactReader::open(Cursor::new(&bytes)).expect("open");
    let payload = reader.manifest().payload_bytes();
    assert!(payload > 0 && payload < bytes.len() as u64);
    for t in &reader.manifest().tensors {
        assert!(matches!(
            t.kind,
            TensorKind::PackedLinear | TensorKind::DenseRest
        ));
    }
}

#[test]
fn registry_publishes_content_addressed_and_deduplicates() {
    let dir = temp_dir("registry");
    let registry = Registry::open(&dir).expect("open");
    let delta = fixture_delta(7);
    let id1 = registry
        .publish_delta("variant-a", sha256(b"base"), &delta)
        .expect("publish");
    // Re-publishing identical content under the same name is idempotent:
    // the bytes hash to the same address and deduplicate on disk.
    let id2 = registry
        .publish_delta("variant-a", sha256(b"base"), &delta)
        .expect("republish");
    assert_eq!(id1, id2);
    assert_eq!(registry.list().expect("list"), vec![id1]);
    // A different name is a different artifact (the name is part of the
    // manifest) with its own ref.
    let id3 = registry
        .publish_delta("variant-b", sha256(b"base"), &delta)
        .expect("publish b");
    assert_ne!(id1, id3);
    let mut want = vec![id1, id3];
    want.sort();
    assert_eq!(registry.list().expect("list"), want);
    assert_eq!(registry.resolve("variant-a").expect("ref a"), id1);
    assert_eq!(registry.resolve("variant-b").expect("ref b"), id3);
    assert!(registry.resolve("missing").is_err());
    // The file name is the hash of the bytes.
    registry.verify(&id1).expect("verify");
    let loaded = registry.load_delta(&id1).expect("load");
    assert_eq!(loaded, delta);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn supersede_records_rollout_lineage() {
    let dir = temp_dir("lineage");
    let registry = Registry::open(&dir).expect("open");
    let v1 = registry
        .publish_delta("hot-v1", sha256(b"base"), &fixture_delta(61))
        .expect("publish v1");
    // Rolling rollout: the serving ref moves v1 -> v2 -> v3, each step
    // recording what it replaced.
    registry.tag("hot", &v1).expect("tag");
    let v2 = registry
        .publish_delta("hot-v2", sha256(b"base"), &fixture_delta(62))
        .expect("publish v2");
    assert_eq!(registry.supersede("hot", &v2).expect("supersede"), Some(v1));
    let v3 = registry
        .publish_delta("hot-v3", sha256(b"base"), &fixture_delta(63))
        .expect("publish v3");
    assert_eq!(registry.supersede("hot", &v3).expect("supersede"), Some(v2));
    assert_eq!(registry.resolve("hot").expect("ref"), v3);
    assert_eq!(registry.parent_of(&v3).expect("parent"), Some(v2));
    assert_eq!(registry.parent_of(&v1).expect("parent"), None);
    assert_eq!(registry.lineage_of(&v3).expect("chain"), vec![v2, v1]);
    // Superseding a fresh ref has no previous target and records nothing.
    let other = registry
        .publish_delta("other", sha256(b"base"), &fixture_delta(64))
        .expect("publish");
    assert_eq!(registry.supersede("cold", &other).expect("fresh"), None);
    assert_eq!(registry.parent_of(&other).expect("parent"), None);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn invalidate_resident_models_a_crash() {
    let dir = temp_dir("crash");
    let registry = Registry::open(&dir).expect("open");
    let ids: Vec<_> = (0..3)
        .map(|i| {
            registry
                .publish_delta(&format!("c{i}"), sha256(b"base"), &fixture_delta(70 + i))
                .expect("publish")
        })
        .collect();
    let mut store = TieredDeltaStore::new(registry, u64::MAX);
    for id in &ids {
        store.fetch(id).expect("fetch");
    }
    assert_eq!(store.resident_count(), 3);
    let before = store.total_stats();
    // Crash: the whole host warm set is lost, disk copies survive, and
    // the accounting keeps counting across the restart.
    assert_eq!(store.invalidate_resident(), 3);
    assert_eq!(store.resident_count(), 0);
    assert_eq!(store.resident_bytes(), 0);
    for id in &ids {
        assert!(!store.is_resident(id));
        store.fetch(id).expect("re-warm after crash");
    }
    let after = store.total_stats();
    assert_eq!(after.disk_loads, before.disk_loads * 2, "re-warm pays disk");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_publishes_do_not_collide() {
    let dir = temp_dir("concurrent");
    let registry = Registry::open(&dir).expect("open");
    let ids: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let registry = registry.clone();
                scope.spawn(move || {
                    registry
                        .publish_delta(
                            &format!("thread-variant-{i}"),
                            sha256(b"base"),
                            &fixture_delta(40 + i),
                        )
                        .expect("publish")
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });
    // Every artifact landed intact and every ref resolves.
    for (i, id) in ids.iter().enumerate() {
        registry.verify(id).expect("artifact integrity");
        assert_eq!(
            registry
                .resolve(&format!("thread-variant-{i}"))
                .expect("ref"),
            *id
        );
    }
    assert_eq!(registry.list().expect("list").len(), 4);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn registry_verify_detects_tampering() {
    let dir = temp_dir("tamper");
    let registry = Registry::open(&dir).expect("open");
    let id = registry
        .publish_delta("v", sha256(b"base"), &fixture_delta(8))
        .expect("publish");
    let path = registry.path_of(&id);
    let mut bytes = std::fs::read(&path).expect("read");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).expect("write");
    assert!(matches!(
        registry.verify(&id),
        Err(StoreError::ChecksumMismatch { .. })
    ));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn invalid_ref_names_rejected() {
    let dir = temp_dir("names");
    let registry = Registry::open(&dir).expect("open");
    let delta = fixture_delta(9);
    for bad in ["", "a\tb", "a/b", ".hidden", "a\nb"] {
        assert!(
            matches!(
                registry.publish_delta(bad, sha256(b"base"), &delta),
                Err(StoreError::InvalidName(_))
            ),
            "name {bad:?} must be rejected"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tiered_store_tracks_hits_misses_and_bytes() {
    let dir = temp_dir("tiered");
    let registry = Registry::open(&dir).expect("open");
    let id = registry
        .publish_delta("v", sha256(b"base"), &fixture_delta(10))
        .expect("publish");
    let size = registry.size_of(&id).expect("size");
    let mut store = TieredDeltaStore::new(registry, 10 * size);
    let first = store.fetch(&id).expect("first fetch");
    assert_eq!(first.tier, FetchTier::DiskMiss);
    assert_eq!(first.bytes, size);
    let second = store.fetch(&id).expect("second fetch");
    assert_eq!(second.tier, FetchTier::HostHit);
    assert_eq!(second.bytes, size);
    let stats = store.stats(&id);
    assert_eq!(stats.disk_loads, 1);
    assert_eq!(stats.host_hits, 1);
    assert_eq!(stats.disk_bytes, size);
    assert_eq!(stats.host_bytes, size);
    assert_eq!(store.total_stats(), stats);
    std::fs::remove_dir_all(store.registry().root()).ok();
}

#[test]
fn tiered_store_evicts_lru_under_byte_budget() {
    let dir = temp_dir("lru");
    let registry = Registry::open(&dir).expect("open");
    let ids: Vec<_> = (0..3)
        .map(|i| {
            registry
                .publish_delta(&format!("v{i}"), sha256(b"base"), &fixture_delta(20 + i))
                .expect("publish")
        })
        .collect();
    let max_size = ids
        .iter()
        .map(|id| registry.size_of(id).expect("size"))
        .max()
        .expect("nonempty");
    // Room for roughly two artifacts, never three.
    let mut store = TieredDeltaStore::new(registry, 2 * max_size);
    assert_eq!(store.fetch(&ids[0]).expect("a").tier, FetchTier::DiskMiss);
    assert_eq!(store.fetch(&ids[1]).expect("b").tier, FetchTier::DiskMiss);
    // Touch 0 so 1 becomes the LRU victim.
    assert_eq!(store.fetch(&ids[0]).expect("c").tier, FetchTier::HostHit);
    assert_eq!(store.fetch(&ids[2]).expect("d").tier, FetchTier::DiskMiss);
    assert!(store.resident_bytes() <= store.budget_bytes());
    assert!(store.is_resident(&ids[0]) || store.is_resident(&ids[2]));
    assert!(!store.is_resident(&ids[1]), "LRU victim must be evicted");
    // Re-fetching the victim is a miss again.
    assert_eq!(store.fetch(&ids[1]).expect("e").tier, FetchTier::DiskMiss);
    std::fs::remove_dir_all(store.registry().root()).ok();
}

#[test]
fn prefetch_prewarm_respects_budget_and_counts_hits() {
    let dir = temp_dir("prefetch");
    let registry = Registry::open(&dir).expect("open");
    let ids: Vec<_> = (0..3)
        .map(|i| {
            registry
                .publish_delta(&format!("p{i}"), sha256(b"base"), &fixture_delta(30 + i))
                .expect("publish")
        })
        .collect();
    let sizes: Vec<u64> = ids
        .iter()
        .map(|id| registry.size_of(id).expect("size"))
        .collect();
    let mut store = TieredDeltaStore::new(registry, 100 * sizes.iter().max().unwrap());

    // Budget for roughly one artifact: the first id fits, the second is
    // skipped by the budget, the third may fit again if small enough.
    let outcome = store
        .prefetch(&ids[..2], sizes[0])
        .expect("prefetch within budget");
    assert_eq!(outcome.fetched, vec![ids[0]]);
    assert_eq!(outcome.bytes, sizes[0]);
    assert_eq!(outcome.skipped_budget, 1);
    assert_eq!(outcome.skipped_resident, 0);
    assert!(store.is_resident(&ids[0]));
    assert!(!store.is_resident(&ids[1]));

    // Prefetch accounting is separate from demand-load accounting.
    let stats = store.total_stats();
    assert_eq!(stats.prefetch_loads, 1);
    assert_eq!(stats.prefetch_bytes, sizes[0]);
    assert_eq!(stats.disk_loads, 0);
    assert_eq!(stats.host_hits, 0);

    // Re-prefetching a resident artifact is a no-op.
    let again = store.prefetch(&ids[..1], u64::MAX).expect("noop prefetch");
    assert!(again.fetched.is_empty());
    assert_eq!(again.skipped_resident, 1);

    // The first demand fetch of the prewarmed artifact is a host hit and
    // counts exactly one prefetch hit.
    assert_eq!(store.fetch(&ids[0]).expect("hit").tier, FetchTier::HostHit);
    assert_eq!(store.total_stats().prefetch_hits, 1);
    assert_eq!(store.fetch(&ids[0]).expect("hit2").tier, FetchTier::HostHit);
    assert_eq!(store.total_stats().prefetch_hits, 1, "hit counts once");

    // `since` carries the prefetch counters.
    let delta = store.total_stats().since(&stats);
    assert_eq!(delta.prefetch_hits, 1);
    assert_eq!(delta.host_hits, 2);
    std::fs::remove_dir_all(store.registry().root()).ok();
}

#[test]
fn warmth_distinguishes_decoded_resident_copies() {
    let dir = temp_dir("warmth");
    let registry = Registry::open(&dir).expect("open");
    let id = registry
        .publish_delta("w", sha256(b"base"), &fixture_delta(40))
        .expect("publish");
    let size = registry.size_of(&id).expect("size");
    let mut store = TieredDeltaStore::new(registry, 1000 * size);
    assert_eq!(store.warmth(&id), dz_store::Warmth::Disk);
    assert_eq!(store.warmth(&id).tier(), FetchTier::DiskMiss);
    assert!(!store.is_decoded_resident(&id));

    // A byte fetch (or a prefetch) makes it Host — compressed only.
    store.fetch(&id).expect("fetch bytes");
    assert_eq!(store.warmth(&id), dz_store::Warmth::Host);
    assert_eq!(store.warmth(&id).tier(), FetchTier::HostHit);
    assert!(!store.is_decoded_resident(&id));

    // A decoded fetch caches the decoded copy beside the bytes.
    let decoded = store.fetch_decoded(&id).expect("decode");
    assert!(decoded.decode.is_some());
    assert!(decoded.raw_bytes > 0);
    assert_eq!(store.warmth(&id), dz_store::Warmth::HostDecoded);
    assert!(store.is_decoded_resident(&id));

    // The decode-free re-fetch reports the same raw size.
    let again = store.fetch_decoded(&id).expect("decode-free");
    assert!(again.decode.is_none());
    assert_eq!(again.raw_bytes, decoded.raw_bytes);

    // Warmth levels order Disk < Host < HostDecoded.
    assert!(dz_store::Warmth::Disk < dz_store::Warmth::Host);
    assert!(dz_store::Warmth::Host < dz_store::Warmth::HostDecoded);

    // Eviction drops both copies.
    store.evict(&id);
    assert_eq!(store.warmth(&id), dz_store::Warmth::Disk);
    std::fs::remove_dir_all(store.registry().root()).ok();
}

#[test]
fn pipelined_read_matches_serial_and_reports_stats() {
    // A wide artifact (many tensors) crosses the pipeline threshold and
    // must decode identically to the per-tensor serial path.
    let mut layers = BTreeMap::new();
    for i in 0..12 {
        layers.insert(
            format!("layers.{i}.w"),
            PackedLayer::Quant(packed_matrix(48, 64, 4, 60 + i)),
        );
    }
    let mut rng = Rng::seeded(77);
    let mut rest = BTreeMap::new();
    rest.insert("tok_emb".to_string(), Matrix::randn(64, 48, 1.0, &mut rng));
    let delta = CompressedDelta {
        layers,
        rest,
        codec: CodecId::SparseGptStar,
        config: DeltaCompressConfig::starred(4),
        report: SizeReport {
            compressed_linear_bytes: 1,
            uncompressed_rest_bytes: 1,
            full_fp16_bytes: 1,
            lossless_linear_bytes: None,
        },
    };
    let bytes = container_bytes(&delta, "wide");
    let mut reader = ArtifactReader::open(Cursor::new(&bytes)).expect("open");
    let (fast, stats) = reader.read_delta_with_stats().expect("pipelined read");
    assert_eq!(fast, delta);
    assert_eq!(stats.tensors, 13);
    assert_eq!(
        stats.compressed_bytes,
        reader.manifest().payload_bytes(),
        "stats must account every compressed byte"
    );
    let raw: u64 = reader.manifest().tensors.iter().map(|t| t.raw_len).sum();
    assert_eq!(stats.raw_bytes, raw);
    assert!(stats.wall_s > 0.0);
    assert!(stats.threads >= 1);
    // Serial per-tensor reads agree tensor for tensor.
    let mut reader2 = ArtifactReader::open(Cursor::new(&bytes)).expect("open2");
    let slow = reader2.read_delta().expect("read");
    assert_eq!(slow, fast);
}

#[test]
fn fetch_decoded_measures_then_reuses_resident_delta() {
    let dir = temp_dir("decoded");
    let registry = Registry::open(&dir).expect("open");
    let delta = fixture_delta(55);
    let id = registry
        .publish_delta("v", sha256(b"base"), &delta)
        .expect("publish");
    let size = registry.size_of(&id).expect("size");
    let mut store = TieredDeltaStore::new(registry, 10 * size);
    // Miss: decode runs and is measured.
    let first = store.fetch_decoded(&id).expect("miss");
    assert_eq!(first.tier, FetchTier::DiskMiss);
    assert_eq!(first.bytes, size);
    assert_eq!(*first.delta, delta);
    let stats = first.decode.expect("decode measured on miss");
    assert!(stats.wall_s > 0.0 && stats.compressed_bytes > 0);
    assert_eq!(store.decode_throughput().loads, 1);
    assert!(store.decode_throughput().effective_gbps().is_some());
    // Hit: the decoded delta is resident, no decode runs.
    let second = store.fetch_decoded(&id).expect("hit");
    assert_eq!(second.tier, FetchTier::HostHit);
    assert!(second.decode.is_none(), "host hit must not re-decode");
    assert_eq!(*second.delta, delta);
    assert_eq!(store.decode_throughput().loads, 1);
    // Eviction drops the decoded copy; a re-fetch re-measures.
    store.evict(&id);
    let third = store.fetch_decoded(&id).expect("recold");
    assert_eq!(third.tier, FetchTier::DiskMiss);
    assert!(third.decode.is_some());
    assert_eq!(store.decode_throughput().loads, 2);
    std::fs::remove_dir_all(store.registry().root()).ok();
}

#[test]
fn decoded_copies_count_against_the_byte_budget() {
    let dir = temp_dir("decoded-budget");
    let registry = Registry::open(&dir).expect("open");
    let ids: Vec<_> = (0..3)
        .map(|i| {
            registry
                .publish_delta(&format!("v{i}"), sha256(b"base"), &fixture_delta(80 + i))
                .expect("publish")
        })
        .collect();
    let comp_max = ids
        .iter()
        .map(|id| registry.size_of(id).expect("size"))
        .max()
        .expect("nonempty");
    // Generous for compressed bytes alone, tight once raw decoded copies
    // ride along: the budget must still hold.
    let budget = 4 * comp_max;
    let mut store = TieredDeltaStore::new(registry, budget);
    for id in &ids {
        store.fetch_decoded(id).expect("decoded fetch");
        assert!(
            store.resident_bytes() <= store.budget_bytes(),
            "resident {} exceeds budget {} after decoded fetch",
            store.resident_bytes(),
            store.budget_bytes()
        );
    }
    // A budget smaller than one artifact's compressed+decoded footprint
    // serves decodes uncached instead of pinning an over-budget entry.
    let registry2 = Registry::open(&dir).expect("reopen");
    let mut tiny = TieredDeltaStore::new(registry2, comp_max + comp_max / 4);
    tiny.fetch_decoded(&ids[0]).expect("oversize decode");
    assert!(tiny.resident_bytes() <= tiny.budget_bytes());
    std::fs::remove_dir_all(store.registry().root()).ok();
}

#[test]
fn oversized_artifacts_are_served_uncached() {
    let dir = temp_dir("oversize");
    let registry = Registry::open(&dir).expect("open");
    let id = registry
        .publish_delta("v", sha256(b"base"), &fixture_delta(30))
        .expect("publish");
    let size = registry.size_of(&id).expect("size");
    let mut store = TieredDeltaStore::new(registry, size / 2);
    assert_eq!(store.fetch(&id).expect("a").tier, FetchTier::DiskMiss);
    assert_eq!(store.fetch(&id).expect("b").tier, FetchTier::DiskMiss);
    assert_eq!(store.resident_bytes(), 0);
    std::fs::remove_dir_all(store.registry().root()).ok();
}

#[test]
fn manifest_records_codec_ids_per_tensor() {
    let mut delta = fixture_delta(90);
    // A BitDelta-style artifact: sign/scale layers, BitDelta codec id.
    let mut rng = Rng::seeded(91);
    let sign = SignMatrix::from_delta(&Matrix::randn(16, 8, 0.01, &mut rng), SignScope::PerRow);
    delta
        .layers
        .insert("layers.0.wv".to_string(), PackedLayer::Sign(sign));
    delta.codec = CodecId::BitDelta;
    let bytes = container_bytes(&delta, "bitdelta-variant");
    let mut reader = ArtifactReader::open(Cursor::new(&bytes)).expect("open");
    assert_eq!(reader.manifest().codec, CodecId::BitDelta);
    // Tensor headers record each layer's own format family, so the mixed
    // artifact is inspectable per tensor without decoding pages.
    for t in &reader.manifest().tensors {
        let want = match (t.kind, t.name.as_str()) {
            (TensorKind::DenseRest, _) => None,
            (TensorKind::PackedLinear, "layers.0.wv") => Some(CodecId::BitDelta),
            (TensorKind::PackedLinear, _) => Some(CodecId::SparseGptStar),
        };
        assert_eq!(t.codec, want, "tensor {}", t.name);
    }
    // The whole delta (mixed quant + sign layers) round-trips.
    let back = reader.read_delta().expect("read");
    assert_eq!(back, delta);
    // And the sign layer is randomly accessible on its own.
    let wv = reader.read_packed("layers.0.wv").expect("packed");
    assert_eq!(&wv, &delta.layers["layers.0.wv"]);
}

/// Hand-writes a pre-method-zoo version-1 container (no codec bytes in
/// the manifest or tensor headers) using the public wire primitives.
fn v1_container_bytes(delta: &CompressedDelta, name: &str) -> Vec<u8> {
    use dz_compress::wire;
    use dz_lossless::crc::crc32;

    let mut out = Vec::new();
    out.extend_from_slice(b"DZA1");
    out.extend_from_slice(&1u16.to_le_bytes());
    // kind, offset, comp_len, raw_len, crc32 per tensor, in file order.
    let mut entries: Vec<(String, u8, u64, u64, u64, u32)> = Vec::new();
    for (tname, layer) in &delta.layers {
        let raw = wire::matrix_to_bytes(layer.as_quant().expect("v1 holds quant layers"));
        let page = dz_lossless::compress(&raw);
        entries.push((
            tname.clone(),
            0,
            out.len() as u64,
            page.len() as u64,
            raw.len() as u64,
            crc32(&raw),
        ));
        out.extend_from_slice(&page);
    }
    for (tname, m) in &delta.rest {
        let mut raw = Vec::new();
        wire::encode_dense(m, &mut raw);
        let page = dz_lossless::compress(&raw);
        entries.push((
            tname.clone(),
            1,
            out.len() as u64,
            page.len() as u64,
            raw.len() as u64,
            crc32(&raw),
        ));
        out.extend_from_slice(&page);
    }
    let manifest_offset = out.len() as u64;
    let mut manifest = Vec::new();
    wire::put_name(&mut manifest, name);
    manifest.extend_from_slice(&sha256(b"base").0);
    wire::encode_config(&delta.config, &mut manifest);
    wire::encode_report(&delta.report, &mut manifest);
    manifest.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (tname, kind, offset, comp_len, raw_len, crc) in &entries {
        wire::put_name(&mut manifest, tname);
        manifest.push(*kind);
        manifest.extend_from_slice(&offset.to_le_bytes());
        manifest.extend_from_slice(&comp_len.to_le_bytes());
        manifest.extend_from_slice(&raw_len.to_le_bytes());
        manifest.extend_from_slice(&crc.to_le_bytes());
    }
    out.extend_from_slice(&manifest);
    out.extend_from_slice(&manifest_offset.to_le_bytes());
    out.extend_from_slice(&(manifest.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(&manifest).to_le_bytes());
    out.extend_from_slice(b"DZAE");
    out
}

#[test]
fn version_1_containers_still_read() {
    let delta = fixture_delta(95);
    let bytes = v1_container_bytes(&delta, "legacy");
    let mut reader = ArtifactReader::open(Cursor::new(&bytes)).expect("open v1");
    // Pre-method-zoo artifacts are implicitly SparseGPT-starred.
    assert_eq!(reader.manifest().codec, CodecId::SparseGptStar);
    for t in &reader.manifest().tensors {
        match t.kind {
            TensorKind::PackedLinear => assert_eq!(t.codec, Some(CodecId::SparseGptStar)),
            TensorKind::DenseRest => assert_eq!(t.codec, None),
        }
    }
    let back = reader.read_delta().expect("read v1 delta");
    assert_eq!(back, delta);
    // Single-tensor random access works on v1 containers too.
    let mut reader2 = ArtifactReader::open(Cursor::new(&bytes)).expect("reopen");
    let wq = reader2.read_packed("layers.0.wq").expect("packed");
    assert_eq!(&wq, &delta.layers["layers.0.wq"]);
}

#[test]
fn object_store_tier_charges_once_then_edge_replicates() {
    let dir = temp_dir("object-tier");
    let registry = Registry::open(&dir).expect("open");
    let remote_id = registry
        .publish_delta("remote-v", sha256(b"base"), &fixture_delta(101))
        .expect("publish remote");
    let local_id = registry
        .publish_delta("local-v", sha256(b"base"), &fixture_delta(102))
        .expect("publish local");
    let config = dz_store::ObjectStoreConfig {
        gbps: 1.0,
        latency_s: 0.05,
    };
    let mut store =
        TieredDeltaStore::new(registry, u64::MAX).with_object_store(config, vec![remote_id]);
    assert!(!store.is_edge_resident(&remote_id));
    assert!(store.is_edge_resident(&local_id));

    // First miss of a remote artifact pays latency + bytes/bandwidth and
    // replicates it to the edge disk.
    let first = store.fetch(&remote_id).expect("remote miss");
    assert_eq!(first.tier, FetchTier::DiskMiss);
    let expected = config.fetch_time_s(first.bytes);
    assert!((first.object_wait_s - expected).abs() < 1e-12);
    assert!(first.object_wait_s > 0.05);
    assert!(store.is_edge_resident(&remote_id));
    assert_eq!(store.total_stats().object_fetches, 1);
    assert_eq!(store.total_stats().object_bytes, first.bytes);

    // Edge-resident artifacts never pay the object tier, even after the
    // host cache drops them (disk copies survive a crash).
    store.invalidate_resident();
    let again = store.fetch(&remote_id).expect("edge disk miss");
    assert_eq!(again.tier, FetchTier::DiskMiss);
    assert_eq!(again.object_wait_s, 0.0);
    assert_eq!(store.total_stats().object_fetches, 1);

    // Artifacts never marked remote are free of object-store charges.
    let local = store.fetch(&local_id).expect("local miss");
    assert_eq!(local.object_wait_s, 0.0);

    // Explicit demotion restores the object-store charge on the next miss.
    store.mark_remote(remote_id);
    store.invalidate_resident();
    let recold = store.fetch(&remote_id).expect("re-remote miss");
    assert!(recold.object_wait_s > 0.0);
    assert_eq!(store.total_stats().object_fetches, 2);
    assert!(
        (store.object_wait_total_s() - first.object_wait_s - recold.object_wait_s).abs() < 1e-12
    );
}

#[test]
fn object_store_prefetch_replicates_off_critical_path() {
    let dir = temp_dir("object-prefetch");
    let registry = Registry::open(&dir).expect("open");
    let id = registry
        .publish_delta("popular", sha256(b"base"), &fixture_delta(103))
        .expect("publish");
    let mut store = TieredDeltaStore::new(registry, u64::MAX)
        .with_object_store(dz_store::ObjectStoreConfig::default(), vec![id]);
    // Prefetch pulls from the object store (accounted) and edge-replicates,
    // but the wait is not charged to any demand fetch.
    let outcome = store.prefetch(&[id], u64::MAX).expect("prefetch");
    assert_eq!(outcome.fetched, vec![id]);
    assert_eq!(store.total_stats().object_fetches, 1);
    assert!(store.is_edge_resident(&id));
    let hit = store.fetch(&id).expect("host hit");
    assert_eq!(hit.tier, FetchTier::HostHit);
    assert_eq!(hit.object_wait_s, 0.0);
    // The demand critical path never saw the object tier.
    assert_eq!(store.object_wait_total_s(), 0.0);
}
