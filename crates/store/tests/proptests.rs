//! Property-based store invariants: `write → read` is the identity for
//! dense and 2:4-sparse payloads, and corrupted or truncated containers
//! produce typed errors — never a panic, never silently wrong data.

use dz_compress::codec::{CodecId, LowRankMatrix, PackedLayer, SignMatrix, SignScope};
use dz_compress::pack::CompressedMatrix;
use dz_compress::pipeline::{CompressedDelta, DeltaCompressConfig, SizeReport};
use dz_compress::quant::{quantize_slice, QuantSpec};
use dz_store::dza::{write_delta, ArtifactReader};
use dz_store::sha256;
use dz_tensor::{Matrix, Rng};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::io::Cursor;

fn dense_matrix(d_out: usize, d_in: usize, bits: u32, seed: u64) -> CompressedMatrix {
    let mut rng = Rng::seeded(seed);
    let spec = QuantSpec::new(bits, 8);
    let wt = Matrix::randn(d_out, d_in, 0.05, &mut rng);
    let mut levels = Vec::new();
    let mut scales = Vec::new();
    for r in 0..d_out {
        let (l, s) = quantize_slice(wt.row(r), spec);
        levels.extend(l);
        scales.extend(s);
    }
    CompressedMatrix::from_dense(d_out, d_in, &levels, scales, spec)
}

fn sparse_matrix(d_out: usize, d_in: usize, bits: u32, seed: u64) -> CompressedMatrix {
    let mut rng = Rng::seeded(seed);
    let spec = QuantSpec::new(bits, 8);
    let qmax = spec.qmax();
    let mut levels = vec![0i32; d_out * d_in];
    let mut mask = vec![false; d_out * d_in];
    for r in 0..d_out {
        for g in 0..d_in / 4 {
            let first = rng.below(4);
            let mut second = rng.below(4);
            while second == first {
                second = rng.below(4);
            }
            for k in [first, second] {
                let i = r * d_in + g * 4 + k;
                mask[i] = true;
                levels[i] = rng.below((2 * qmax + 1) as usize) as i32 - qmax;
            }
        }
    }
    let scales = vec![0.05f32; d_out * d_in.div_ceil(8)];
    CompressedMatrix::from_sparse24(d_out, d_in, &levels, &mask, scales, spec)
}

fn arb_delta(
    seed: u64,
    blocks: usize,
    d_out: usize,
    bits: u32,
    rest_dim: usize,
) -> CompressedDelta {
    let d_in = blocks * 8;
    let mut layers = BTreeMap::new();
    layers.insert(
        "dense".to_string(),
        PackedLayer::Quant(dense_matrix(d_out, d_in, bits, seed)),
    );
    layers.insert(
        "sparse".to_string(),
        PackedLayer::Quant(sparse_matrix(d_out, d_in, bits, seed ^ 0xABC)),
    );
    // Method-zoo layers ride in the same container: a BitDelta sign/scale
    // layer and a Delta-CoMe mixed-precision low-rank layer.
    let mut rng = Rng::seeded(seed ^ 0xDEF);
    let raw = Matrix::randn(d_in, d_out, 0.01, &mut rng);
    layers.insert(
        "sign".to_string(),
        PackedLayer::Sign(SignMatrix::from_delta(&raw, SignScope::PerRow)),
    );
    layers.insert(
        "lowrank".to_string(),
        PackedLayer::LowRank(LowRankMatrix::from_delta(&raw, &[(8, 1), (2, 2)])),
    );
    let mut rest = BTreeMap::new();
    rest.insert(
        "emb".to_string(),
        Matrix::randn(rest_dim, d_out, 1.0, &mut rng),
    );
    let compressed: usize = layers.values().map(|c| c.packed_bytes()).sum();
    // Sweep the manifest codec id too: `.dza` round-trips must preserve it.
    let codec = match seed % 3 {
        0 => CodecId::SparseGptStar,
        1 => CodecId::BitDelta,
        _ => CodecId::DeltaCome,
    };
    CompressedDelta {
        layers,
        rest,
        codec,
        config: DeltaCompressConfig::starred(bits),
        report: SizeReport {
            compressed_linear_bytes: compressed,
            uncompressed_rest_bytes: rest_dim * d_out * 2,
            full_fp16_bytes: 4 * d_in * d_out,
            lossless_linear_bytes: None,
        },
    }
}

fn container(delta: &CompressedDelta) -> Vec<u8> {
    write_delta(Cursor::new(Vec::new()), "prop", sha256(b"base"), delta)
        .expect("write")
        .into_inner()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn write_read_is_identity(
        seed in any::<u64>(),
        blocks in 1usize..5,
        d_out in 1usize..12,
        bits in 2u32..5,
        rest_dim in 1usize..8,
    ) {
        let delta = arb_delta(seed, blocks, d_out, bits, rest_dim);
        let bytes = container(&delta);
        let mut reader = ArtifactReader::open(Cursor::new(&bytes)).expect("open");
        let back = reader.read_delta().expect("read");
        prop_assert_eq!(back, delta);
    }

    #[test]
    fn truncation_is_a_typed_error_never_a_panic(
        seed in any::<u64>(),
        cut_frac in 0.0f64..1.0,
    ) {
        let delta = arb_delta(seed, 2, 6, 4, 4);
        let bytes = container(&delta);
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        // Either opening fails, or reading any tensor fails; both must be
        // typed errors. A truncated container can never round-trip.
        if let Ok(mut reader) = ArtifactReader::open(Cursor::new(&bytes[..cut])) { prop_assert!(reader.read_delta().is_err()) }
    }

    #[test]
    fn byte_flips_never_yield_silent_corruption(
        seed in any::<u64>(),
        pos in any::<proptest::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let delta = arb_delta(seed, 2, 6, 4, 4);
        let bytes = container(&delta);
        let mut corrupted = bytes.clone();
        let i = pos.index(corrupted.len());
        corrupted[i] ^= flip;
        // The decoder must either reject the container or still produce
        // exactly the original delta (e.g. a flip in dead padding).
        if let Ok(mut reader) = ArtifactReader::open(Cursor::new(&corrupted)) { if let Ok(back) = reader.read_delta() { prop_assert_eq!(back, delta) } }
    }
}
