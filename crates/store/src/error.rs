//! Typed errors for the artifact store.

use dz_compress::wire::WireError;
use dz_lossless::CodecError;

/// Anything that can go wrong persisting or loading an artifact.
///
/// Corruption (flipped bytes, truncation, bad magic) is always surfaced as
/// a typed error — never a panic, never silently wrong tensors.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// A lossless page failed to decode.
    Codec(CodecError),
    /// A tensor record failed to decode.
    Wire(WireError),
    /// The container does not start with the `.dza` magic.
    BadMagic,
    /// The container version is not supported.
    BadVersion(u16),
    /// The file is shorter than its framing claims.
    Truncated,
    /// A decompressed payload or the manifest failed its checksum.
    ChecksumMismatch {
        /// The tensor whose page failed, or `None` for the manifest.
        tensor: Option<String>,
    },
    /// The manifest references no tensor with this name.
    UnknownTensor(String),
    /// The registry holds no artifact with this id or ref name.
    UnknownArtifact(String),
    /// The artifact's recorded base lineage does not match the expected
    /// base model.
    BaseMismatch {
        /// Base hash the caller expected.
        expected: String,
        /// Base hash recorded in the manifest.
        found: String,
    },
    /// A name is not storable (too long, or contains separators).
    InvalidName(String),
    /// Structural inconsistency not covered by the variants above.
    Corrupt(&'static str),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io error: {e}"),
            StoreError::Codec(e) => write!(f, "lossless codec error: {e}"),
            StoreError::Wire(e) => write!(f, "tensor record error: {e}"),
            StoreError::BadMagic => write!(f, "not a .dza container (bad magic)"),
            StoreError::BadVersion(v) => write!(f, "unsupported .dza version {v}"),
            StoreError::Truncated => write!(f, "container truncated"),
            StoreError::ChecksumMismatch { tensor: Some(t) } => {
                write!(f, "checksum mismatch in tensor `{t}`")
            }
            StoreError::ChecksumMismatch { tensor: None } => {
                write!(f, "manifest checksum mismatch")
            }
            StoreError::UnknownTensor(t) => write!(f, "unknown tensor `{t}`"),
            StoreError::UnknownArtifact(a) => write!(f, "unknown artifact `{a}`"),
            StoreError::BaseMismatch { expected, found } => {
                write!(
                    f,
                    "base lineage mismatch: expected {expected}, found {found}"
                )
            }
            StoreError::InvalidName(n) => write!(f, "invalid name `{n}`"),
            StoreError::Corrupt(what) => write!(f, "corrupt container: {what}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Codec(e) => Some(e),
            StoreError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Codec(e)
    }
}

impl From<WireError> for StoreError {
    fn from(e: WireError) -> Self {
        // Wire-level truncation inside the container means the container
        // framing lied about a record's extent.
        match e {
            WireError::Truncated => StoreError::Truncated,
            other => StoreError::Wire(other),
        }
    }
}
