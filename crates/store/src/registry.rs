//! Content-addressed on-disk artifact registry (the "delta zoo").
//!
//! Every published artifact is stored once under
//! `<root>/<sha256-of-bytes>.dza`, so identical deltas deduplicate and any
//! file can be integrity-audited by rehashing. Human-readable variant names
//! are kept separately in `<root>/refs.tsv` (git-style refs), rewritten
//! atomically on every change.
//!
//! Concurrency: artifact publishes are safe from any number of threads
//! (unique temp names, atomic rename into a content-addressed home). Ref
//! updates are serialized among clones of one [`Registry`] via a shared
//! lock; across *processes* the refs file is last-writer-wins.

use crate::dza::{self, ArtifactReader};
use crate::error::StoreError;
use crate::hash::{sha256, Digest, Sha256};
use dz_compress::pipeline::CompressedDelta;
use std::fs::{self, File};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Handle to one stored artifact: the hash of its bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArtifactId(pub Digest);

impl ArtifactId {
    /// Hex rendering (the on-disk file stem).
    pub fn hex(&self) -> String {
        self.0.hex()
    }
}

impl std::fmt::Display for ArtifactId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A content-addressed `.dza` registry rooted at one directory.
#[derive(Debug, Clone)]
pub struct Registry {
    root: PathBuf,
    /// Serializes read-modify-write cycles on the refs file among clones.
    refs_lock: Arc<Mutex<()>>,
}

const REFS_FILE: &str = "refs.tsv";
const LINEAGE_FILE: &str = "lineage.tsv";

/// Process-wide counter making temp file names collision-free.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

impl Registry {
    /// Opens (creating if needed) a registry directory.
    pub fn open(root: impl AsRef<Path>) -> Result<Registry, StoreError> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        Ok(Registry {
            root,
            refs_lock: Arc::new(Mutex::new(())),
        })
    }

    /// The registry root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// On-disk path of an artifact (whether or not it exists).
    pub fn path_of(&self, id: &ArtifactId) -> PathBuf {
        self.root.join(format!("{}.dza", id.hex()))
    }

    /// Whether an artifact is present.
    pub fn contains(&self, id: &ArtifactId) -> bool {
        self.path_of(id).is_file()
    }

    /// Stored size of an artifact in bytes.
    pub fn size_of(&self, id: &ArtifactId) -> Result<u64, StoreError> {
        match fs::metadata(self.path_of(id)) {
            Ok(m) => Ok(m.len()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(StoreError::UnknownArtifact(id.hex()))
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Publishes a compressed delta under `name`: streams a `.dza` to a
    /// temporary file, content-hashes it, moves it to its hash-named home,
    /// and points the `name` ref at it. Returns the artifact id.
    pub fn publish_delta(
        &self,
        name: &str,
        base_hash: Digest,
        delta: &CompressedDelta,
    ) -> Result<ArtifactId, StoreError> {
        validate_ref_name(name)?;
        let tmp = self.root.join(format!(
            ".tmp-{}-{}.dza",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let result = (|| {
            // Hash the bytes as they stream through, so publishing never
            // re-reads the artifact from disk.
            let sink = HashingWriter::new(BufWriter::new(File::create(&tmp)?));
            let (digest, writer) = dza::write_delta(sink, name, base_hash, delta)?.finish();
            writer
                .into_inner()
                .map_err(|e| StoreError::Io(e.into_error()))?
                .sync_all()?;
            let id = ArtifactId(digest);
            let home = self.path_of(&id);
            if home.is_file() {
                // Content-addressed: the artifact already exists; the temp
                // copy is redundant.
                fs::remove_file(&tmp)?;
            } else {
                fs::rename(&tmp, &home)?;
            }
            self.tag(name, &id)?;
            Ok(id)
        })();
        if result.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        result
    }

    /// Opens an artifact for random-access reads.
    pub fn open_artifact(
        &self,
        id: &ArtifactId,
    ) -> Result<ArtifactReader<BufReader<File>>, StoreError> {
        let path = self.path_of(id);
        let file = File::open(&path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                StoreError::UnknownArtifact(id.hex())
            } else {
                StoreError::Io(e)
            }
        })?;
        ArtifactReader::open(BufReader::new(file))
    }

    /// Reads an artifact's raw file bytes (what crosses the disk link).
    pub fn read_bytes(&self, id: &ArtifactId) -> Result<Vec<u8>, StoreError> {
        match fs::read(self.path_of(id)) {
            Ok(b) => Ok(b),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(StoreError::UnknownArtifact(id.hex()))
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Loads and reassembles a whole delta.
    pub fn load_delta(&self, id: &ArtifactId) -> Result<CompressedDelta, StoreError> {
        self.open_artifact(id)?.read_delta()
    }

    /// Re-hashes an artifact's bytes and compares with its name; detects
    /// on-disk rot or tampering.
    pub fn verify(&self, id: &ArtifactId) -> Result<(), StoreError> {
        let path = self.path_of(id);
        if !path.is_file() {
            return Err(StoreError::UnknownArtifact(id.hex()));
        }
        if hash_file(&path)? != id.0 {
            return Err(StoreError::ChecksumMismatch { tensor: None });
        }
        Ok(())
    }

    /// Every artifact currently stored, sorted by id.
    pub fn list(&self) -> Result<Vec<ArtifactId>, StoreError> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let path = entry?.path();
            let (Some(stem), Some(ext)) = (
                path.file_stem().and_then(|s| s.to_str()),
                path.extension().and_then(|s| s.to_str()),
            ) else {
                continue;
            };
            if ext != "dza" {
                continue;
            }
            if let Some(d) = Digest::from_hex(stem) {
                out.push(ArtifactId(d));
            }
        }
        out.sort();
        Ok(out)
    }

    /// Points a human-readable ref at an artifact.
    pub fn tag(&self, name: &str, id: &ArtifactId) -> Result<(), StoreError> {
        validate_ref_name(name)?;
        let _guard = self.refs_lock.lock().expect("refs lock poisoned");
        let mut refs = self.read_refs()?;
        refs.retain(|(n, _)| n != name);
        refs.push((name.to_string(), *id));
        refs.sort();
        let tmp = self.root.join(format!(
            ".refs-{}-{}.tmp",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        {
            let mut f = BufWriter::new(File::create(&tmp)?);
            for (n, i) in &refs {
                writeln!(f, "{n}\t{}", i.hex())?;
            }
            f.into_inner()
                .map_err(|e| StoreError::Io(e.into_error()))?
                .sync_all()?;
        }
        fs::rename(&tmp, self.root.join(REFS_FILE))?;
        Ok(())
    }

    /// Resolves a ref name to an artifact id.
    pub fn resolve(&self, name: &str) -> Result<ArtifactId, StoreError> {
        self.read_refs()?
            .into_iter()
            .find(|(n, _)| n == name)
            .map(|(_, id)| id)
            .ok_or_else(|| StoreError::UnknownArtifact(name.to_string()))
    }

    /// All refs, sorted by name.
    pub fn refs(&self) -> Result<Vec<(String, ArtifactId)>, StoreError> {
        self.read_refs()
    }

    /// Re-points `name` at `new_id`, recording the ref's previous target
    /// (if any) as `new_id`'s lineage parent — the bookkeeping behind a
    /// rolling delta-version rollout ("v2 of this variant replaces v1").
    /// Returns the superseded artifact id.
    pub fn supersede(
        &self,
        name: &str,
        new_id: &ArtifactId,
    ) -> Result<Option<ArtifactId>, StoreError> {
        let previous = match self.resolve(name) {
            Ok(id) => Some(id),
            Err(StoreError::UnknownArtifact(_)) => None,
            Err(e) => return Err(e),
        };
        if let Some(prev) = previous.filter(|p| p != new_id) {
            self.record_lineage(new_id, &prev)?;
        }
        self.tag(name, new_id)?;
        Ok(previous)
    }

    /// Records that `child` supersedes `parent` in the version lineage.
    /// A child has at most one parent; re-recording replaces it.
    pub fn record_lineage(
        &self,
        child: &ArtifactId,
        parent: &ArtifactId,
    ) -> Result<(), StoreError> {
        let _guard = self.refs_lock.lock().expect("refs lock poisoned");
        let mut lineage = self.read_lineage()?;
        lineage.retain(|(c, _)| c != child);
        lineage.push((*child, *parent));
        lineage.sort();
        let tmp = self.root.join(format!(
            ".lineage-{}-{}.tmp",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        {
            let mut f = BufWriter::new(File::create(&tmp)?);
            for (c, p) in &lineage {
                writeln!(f, "{}\t{}", c.hex(), p.hex())?;
            }
            f.into_inner()
                .map_err(|e| StoreError::Io(e.into_error()))?
                .sync_all()?;
        }
        fs::rename(&tmp, self.root.join(LINEAGE_FILE))?;
        Ok(())
    }

    /// The artifact this one directly supersedes, if recorded.
    pub fn parent_of(&self, id: &ArtifactId) -> Result<Option<ArtifactId>, StoreError> {
        Ok(self
            .read_lineage()?
            .into_iter()
            .find(|(c, _)| c == id)
            .map(|(_, p)| p))
    }

    /// The full ancestor chain of an artifact, nearest parent first.
    /// Cycles (only possible via hand-edited lineage files) terminate
    /// the walk instead of looping.
    pub fn lineage_of(&self, id: &ArtifactId) -> Result<Vec<ArtifactId>, StoreError> {
        let lineage = self.read_lineage()?;
        let mut out = Vec::new();
        let mut cur = *id;
        while let Some((_, p)) = lineage.iter().find(|(c, _)| *c == cur) {
            if out.contains(p) || *p == *id {
                break;
            }
            out.push(*p);
            cur = *p;
        }
        Ok(out)
    }

    fn read_lineage(&self) -> Result<Vec<(ArtifactId, ArtifactId)>, StoreError> {
        let path = self.root.join(LINEAGE_FILE);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e.into()),
        };
        let mut out = Vec::new();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let Some((child, parent)) = line.split_once('\t') else {
                return Err(StoreError::Corrupt("malformed lineage line"));
            };
            let (Some(c), Some(p)) = (Digest::from_hex(child), Digest::from_hex(parent)) else {
                return Err(StoreError::Corrupt("malformed lineage hash"));
            };
            out.push((ArtifactId(c), ArtifactId(p)));
        }
        Ok(out)
    }

    fn read_refs(&self) -> Result<Vec<(String, ArtifactId)>, StoreError> {
        let path = self.root.join(REFS_FILE);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e.into()),
        };
        let mut out = Vec::new();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let Some((name, hex)) = line.split_once('\t') else {
                return Err(StoreError::Corrupt("malformed refs line"));
            };
            let Some(d) = Digest::from_hex(hex) else {
                return Err(StoreError::Corrupt("malformed ref hash"));
            };
            out.push((name.to_string(), ArtifactId(d)));
        }
        Ok(out)
    }
}

fn validate_ref_name(name: &str) -> Result<(), StoreError> {
    if name.is_empty()
        || name.len() > 512
        || name.contains(['\t', '\n', '\r', '/', '\\'])
        || name.starts_with('.')
    {
        return Err(StoreError::InvalidName(name.to_string()));
    }
    Ok(())
}

/// An `io::Write` adapter hashing everything written through it.
struct HashingWriter<W: Write> {
    inner: W,
    hasher: Sha256,
}

impl<W: Write> HashingWriter<W> {
    fn new(inner: W) -> Self {
        HashingWriter {
            inner,
            hasher: Sha256::new(),
        }
    }

    fn finish(self) -> (Digest, W) {
        (self.hasher.finalize(), self.inner)
    }
}

impl<W: Write> Write for HashingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.hasher.update(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// Streaming SHA-256 of a file's bytes.
fn hash_file(path: &Path) -> Result<Digest, StoreError> {
    let mut f = BufReader::new(File::open(path)?);
    let mut hasher = Sha256::new();
    let mut buf = [0u8; 64 * 1024];
    loop {
        let n = f.read(&mut buf)?;
        if n == 0 {
            break;
        }
        hasher.update(&buf[..n]);
    }
    Ok(hasher.finalize())
}

/// One-shot content hash of in-memory artifact bytes.
pub fn hash_bytes(bytes: &[u8]) -> Digest {
    sha256(bytes)
}
