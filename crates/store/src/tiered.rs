//! Tiered delta storage: disk registry under a byte-budget host cache.
//!
//! The paper's hierarchical delta management (§5.4) keeps hot compressed
//! deltas in host DRAM and spills cold ones to disk. [`TieredDeltaStore`]
//! models exactly that: artifact bytes are fetched from the
//! content-addressed [`Registry`] on a miss and cached in memory under a
//! least-recently-used byte budget, with per-artifact load accounting so
//! the serving engine can charge real transfer sizes.

use crate::dza::{ArtifactReader, DecodeStats};
use crate::error::StoreError;
use crate::registry::{ArtifactId, Registry};
use dz_compress::pipeline::CompressedDelta;
use std::collections::{BTreeMap, BTreeSet};
use std::io::Cursor;
use std::sync::Arc;

/// Which tier satisfied a fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchTier {
    /// Served from the host DRAM cache: only the host→device hop remains.
    HostHit,
    /// Read from disk (and now cached): disk + host→device hops.
    DiskMiss,
}

/// How warm an artifact currently is — the three-level residency signal a
/// cluster router scores. Unlike [`FetchTier`] (which tier *served* a
/// fetch) this distinguishes a host hit whose **decoded** copy is also
/// resident (a decode-free swap-in) from one that still has to run the
/// decode pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Warmth {
    /// Not host-resident: a fetch would read disk.
    Disk,
    /// Compressed bytes are host-resident; a fetch decodes them.
    Host,
    /// Compressed bytes *and* the decoded delta are host-resident: a
    /// decode-free hit.
    HostDecoded,
}

impl Warmth {
    /// The tier a fetch would be served from at this warmth level.
    pub fn tier(self) -> FetchTier {
        match self {
            Warmth::Disk => FetchTier::DiskMiss,
            Warmth::Host | Warmth::HostDecoded => FetchTier::HostHit,
        }
    }
}

/// The result of one [`TieredDeltaStore::prefetch`] call.
#[derive(Debug, Clone, Default)]
pub struct PrefetchOutcome {
    /// Artifacts actually read from disk and admitted, in request order.
    pub fetched: Vec<ArtifactId>,
    /// Total bytes prefetched (sums the `fetched` artifact sizes).
    pub bytes: u64,
    /// Ids skipped because they were already host-resident.
    pub skipped_resident: usize,
    /// Ids skipped because they did not fit the byte budget.
    pub skipped_budget: usize,
}

/// A shared object-store tier **below** every node's disk: the fleet's
/// source of truth for delta artifacts (S3-style). An artifact marked
/// *remote* is not yet on this node's edge disk, so its first disk miss
/// additionally pays one object-store fetch (`latency_s + bytes/gbps`),
/// after which the artifact is edge-disk-resident and later misses pay
/// only the local disk read — the CDN-style replication of popular
/// deltas to the edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectStoreConfig {
    /// Object-store fetch bandwidth in GB/s (shared backbone, well below
    /// local NVMe).
    pub gbps: f64,
    /// Per-fetch latency floor in seconds (request + first byte).
    pub latency_s: f64,
}

impl Default for ObjectStoreConfig {
    fn default() -> Self {
        // S3-like: ~2.5 GB/s effective single-stream, ~80 ms first byte.
        ObjectStoreConfig {
            gbps: 2.5,
            latency_s: 0.08,
        }
    }
}

impl ObjectStoreConfig {
    /// Simulated wall time to pull `bytes` from the object store.
    pub fn fetch_time_s(&self, bytes: u64) -> f64 {
        self.latency_s + bytes as f64 / (self.gbps * 1e9)
    }
}

/// The result of one fetch.
#[derive(Debug, Clone)]
pub struct FetchOutcome {
    /// Which tier served the request.
    pub tier: FetchTier,
    /// Artifact size in bytes (what the interconnect moves).
    pub bytes: u64,
    /// Simulated object-store wait paid by this fetch: nonzero only on
    /// the first disk miss of an artifact marked remote (it is
    /// edge-replicated afterwards).
    pub object_wait_s: f64,
    /// The artifact's raw `.dza` bytes.
    pub data: Arc<Vec<u8>>,
}

/// Per-artifact (and aggregate) load accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadStats {
    /// Fetches served from the host cache.
    pub host_hits: u64,
    /// Fetches that had to read disk.
    pub disk_loads: u64,
    /// Total bytes served from the host cache.
    pub host_bytes: u64,
    /// Total bytes read from disk.
    pub disk_bytes: u64,
    /// Artifacts prewarmed disk→host by [`TieredDeltaStore::prefetch`].
    pub prefetch_loads: u64,
    /// Total bytes prewarmed disk→host by prefetch.
    pub prefetch_bytes: u64,
    /// Host hits whose residency was established by a prefetch (each
    /// prefetched artifact counts at most once, on its first demand hit).
    pub prefetch_hits: u64,
    /// Fetches that had to go all the way to the shared object store
    /// (the artifact was not yet edge-disk-resident).
    pub object_fetches: u64,
    /// Total bytes pulled from the object store.
    pub object_bytes: u64,
}

impl LoadStats {
    /// The accounting accumulated since an `earlier` snapshot of the same
    /// counters (field-wise saturating difference) — turns the store's
    /// cumulative totals into per-interval stats.
    pub fn since(&self, earlier: &LoadStats) -> LoadStats {
        LoadStats {
            host_hits: self.host_hits.saturating_sub(earlier.host_hits),
            disk_loads: self.disk_loads.saturating_sub(earlier.disk_loads),
            host_bytes: self.host_bytes.saturating_sub(earlier.host_bytes),
            disk_bytes: self.disk_bytes.saturating_sub(earlier.disk_bytes),
            prefetch_loads: self.prefetch_loads.saturating_sub(earlier.prefetch_loads),
            prefetch_bytes: self.prefetch_bytes.saturating_sub(earlier.prefetch_bytes),
            prefetch_hits: self.prefetch_hits.saturating_sub(earlier.prefetch_hits),
            object_fetches: self.object_fetches.saturating_sub(earlier.object_fetches),
            object_bytes: self.object_bytes.saturating_sub(earlier.object_bytes),
        }
    }

    fn record(&mut self, tier: FetchTier, bytes: u64) {
        match tier {
            FetchTier::HostHit => {
                self.host_hits += 1;
                self.host_bytes += bytes;
            }
            FetchTier::DiskMiss => {
                self.disk_loads += 1;
                self.disk_bytes += bytes;
            }
        }
    }
}

/// The result of one decoded fetch: tier and bytes as in [`FetchOutcome`],
/// plus the reassembled delta and — when this fetch actually ran the
/// decode pipeline — its measured statistics.
#[derive(Debug, Clone)]
pub struct DecodedFetch {
    /// Which tier served the request.
    pub tier: FetchTier,
    /// Artifact size in bytes (what the interconnect moves).
    pub bytes: u64,
    /// Simulated object-store wait paid by this fetch (see
    /// [`FetchOutcome::object_wait_s`]).
    pub object_wait_s: f64,
    /// Raw (decompressed) size of the delta in bytes — what a
    /// decode-free swap-in of the cached decoded copy would move.
    pub raw_bytes: u64,
    /// The decoded delta.
    pub delta: Arc<CompressedDelta>,
    /// Measured pipeline statistics; `None` when the decoded delta was
    /// already host-resident and no decode ran.
    pub decode: Option<DecodeStats>,
}

/// Cumulative measured decode throughput across every load that ran the
/// pipeline. This is what replaces the serving cost model's static
/// bytes-per-second deserialization constant.
#[derive(Debug, Clone, Copy, Default)]
pub struct DecodeThroughput {
    /// Loads that ran the decode pipeline.
    pub loads: u64,
    /// Cumulative per-load statistics.
    pub stats: DecodeStats,
}

impl DecodeThroughput {
    /// Measured end-to-end compressed GB/s across all loads; `None` until
    /// the first decode has been timed.
    pub fn effective_gbps(&self) -> Option<f64> {
        (self.loads > 0)
            .then_some(())
            .and(self.stats.effective_gbps())
    }
}

struct Resident {
    data: Arc<Vec<u8>>,
    /// Decoded form, populated lazily by [`TieredDeltaStore::fetch_decoded`]
    /// and dropped with the entry on eviction.
    decoded: Option<Arc<CompressedDelta>>,
    /// Raw (decompressed) bytes held by `decoded`, charged against the
    /// host byte budget alongside the compressed bytes.
    decoded_bytes: u64,
    stamp: u64,
}

impl Resident {
    fn footprint(&self) -> u64 {
        self.data.len() as u64 + self.decoded_bytes
    }
}

/// A disk→host tiered store with an LRU host cache bounded in bytes.
///
/// # Examples
///
/// ```no_run
/// use dz_store::{FetchTier, Registry, TieredDeltaStore, Warmth};
/// # fn demo() -> Result<(), dz_store::StoreError> {
/// let registry = Registry::open("zoo")?;
/// let id = registry.resolve("my-variant")?;
/// let mut store = TieredDeltaStore::new(registry, 512 << 20);
/// assert_eq!(store.warmth(&id), Warmth::Disk); // nothing cached yet
/// let first = store.fetch(&id)?; // reads disk, admits into the host cache
/// assert_eq!(first.tier, FetchTier::DiskMiss);
/// assert_eq!(store.warmth(&id), Warmth::Host); // compressed bytes resident
/// let _ = store.fetch_decoded(&id)?; // decodes and caches the delta
/// assert_eq!(store.warmth(&id), Warmth::HostDecoded); // decode-free hit
/// assert!(store.occupancy() > 0.0 && store.resident_count() == 1);
/// # Ok(()) }
/// ```
pub struct TieredDeltaStore {
    registry: Registry,
    budget_bytes: u64,
    resident: BTreeMap<ArtifactId, Resident>,
    resident_bytes: u64,
    clock: u64,
    per_artifact: BTreeMap<ArtifactId, LoadStats>,
    total: LoadStats,
    decode: DecodeThroughput,
    /// Artifacts whose host residency came from [`prefetch`]
    /// (cleared on the first demand hit, which counts as a prefetch hit).
    ///
    /// [`prefetch`]: Self::prefetch
    prefetched: BTreeSet<ArtifactId>,
    /// The shared object-store tier, when modeled.
    object_store: Option<ObjectStoreConfig>,
    /// Artifacts not yet replicated to this node's edge disk: their next
    /// disk miss pays an object-store fetch, then leaves this set.
    remote_only: BTreeSet<ArtifactId>,
    /// Cumulative simulated object-store wait across all demand fetches.
    object_wait_total_s: f64,
}

impl TieredDeltaStore {
    /// Wraps a registry with a host cache of `budget_bytes`.
    pub fn new(registry: Registry, budget_bytes: u64) -> Self {
        TieredDeltaStore {
            registry,
            budget_bytes,
            resident: BTreeMap::new(),
            resident_bytes: 0,
            clock: 0,
            per_artifact: BTreeMap::new(),
            total: LoadStats::default(),
            decode: DecodeThroughput::default(),
            prefetched: BTreeSet::new(),
            object_store: None,
            remote_only: BTreeSet::new(),
            object_wait_total_s: 0.0,
        }
    }

    /// Models a shared object-store tier below this node's disk: the
    /// listed artifacts start *remote* (their first disk miss pays an
    /// object-store fetch before becoming edge-disk-resident).
    pub fn with_object_store(
        mut self,
        config: ObjectStoreConfig,
        remote: impl IntoIterator<Item = ArtifactId>,
    ) -> Self {
        self.object_store = Some(config);
        self.remote_only = remote.into_iter().collect();
        self
    }

    /// The object-store tier configuration, when modeled.
    pub fn object_store_config(&self) -> Option<ObjectStoreConfig> {
        self.object_store
    }

    /// Marks an artifact as evicted from this node's edge disk (back to
    /// object-store only) — the inverse of the replication a fetch
    /// performs. No-op unless an object store is configured.
    pub fn mark_remote(&mut self, id: ArtifactId) {
        if self.object_store.is_some() {
            self.remote_only.insert(id);
        }
    }

    /// Whether the artifact is on this node's edge disk (true whenever no
    /// object store is modeled).
    pub fn is_edge_resident(&self, id: &ArtifactId) -> bool {
        !self.remote_only.contains(id)
    }

    /// Cumulative simulated object-store wait across all demand fetches.
    pub fn object_wait_total_s(&self) -> f64 {
        self.object_wait_total_s
    }

    /// The underlying registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The host cache budget in bytes.
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// Bytes currently resident in the host cache: compressed artifact
    /// bytes plus any decoded copies cached beside them.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }

    /// Whether an artifact is currently host-resident.
    pub fn is_resident(&self, id: &ArtifactId) -> bool {
        self.resident.contains_key(id)
    }

    /// How warm `id` is *right now* — the three-level signal a cluster
    /// router uses to score replicas ([`Warmth::HostDecoded`] beats
    /// [`Warmth::Host`] beats [`Warmth::Disk`]). Unlike
    /// [`fetch`](Self::fetch) this neither moves bytes nor touches LRU
    /// stamps or load accounting.
    pub fn warmth(&self, id: &ArtifactId) -> Warmth {
        if self.is_decoded_resident(id) {
            Warmth::HostDecoded
        } else if self.is_resident(id) {
            Warmth::Host
        } else {
            Warmth::Disk
        }
    }

    /// Whether the artifact's **decoded** delta is host-resident (a fetch
    /// would be a decode-free hit).
    pub fn is_decoded_resident(&self, id: &ArtifactId) -> bool {
        self.resident.get(id).is_some_and(|r| r.decoded.is_some())
    }

    /// Number of artifacts currently host-resident.
    pub fn resident_count(&self) -> usize {
        self.resident.len()
    }

    /// Ids of the host-resident artifacts in sorted (deterministic)
    /// order — lets a router seed its predicted warm set from real
    /// residency.
    pub fn resident_ids(&self) -> impl Iterator<Item = &ArtifactId> {
        self.resident.keys()
    }

    /// Fraction of the host byte budget in use (`0.0` when the budget is
    /// zero): the occupancy signal for placement decisions.
    pub fn occupancy(&self) -> f64 {
        if self.budget_bytes == 0 {
            0.0
        } else {
            self.resident_bytes as f64 / self.budget_bytes as f64
        }
    }

    /// Fetches an artifact's bytes, reading disk only on a host miss.
    pub fn fetch(&mut self, id: &ArtifactId) -> Result<FetchOutcome, StoreError> {
        self.clock += 1;
        if let Some(r) = self.resident.get_mut(id) {
            r.stamp = self.clock;
            let outcome = FetchOutcome {
                tier: FetchTier::HostHit,
                bytes: r.data.len() as u64,
                object_wait_s: 0.0,
                data: Arc::clone(&r.data),
            };
            self.record(id, FetchTier::HostHit, outcome.bytes);
            if self.prefetched.remove(id) {
                self.per_artifact.entry(*id).or_default().prefetch_hits += 1;
                self.total.prefetch_hits += 1;
            }
            return Ok(outcome);
        }
        let data = Arc::new(self.registry.read_bytes(id)?);
        let bytes = data.len() as u64;
        let object_wait_s = self.pull_from_object_store(id, bytes);
        self.object_wait_total_s += object_wait_s;
        self.admit(*id, Arc::clone(&data));
        self.record(id, FetchTier::DiskMiss, bytes);
        Ok(FetchOutcome {
            tier: FetchTier::DiskMiss,
            bytes,
            object_wait_s,
            data,
        })
    }

    /// Fetches an artifact **decoded**: the compressed bytes move through
    /// the usual tiering (disk on a miss, host cache on a hit), then the
    /// pipelined `.dza` read path reassembles the delta — tensors decoded
    /// concurrently, reads overlapped with decode — and the measured
    /// throughput is folded into [`decode_throughput`](Self::decode_throughput).
    /// A host hit whose decoded delta is still resident skips the decode
    /// entirely (`decode: None`). The decoded copy's raw bytes count
    /// against the host byte budget alongside the compressed bytes, with
    /// LRU eviction restoring the bound.
    pub fn fetch_decoded(&mut self, id: &ArtifactId) -> Result<DecodedFetch, StoreError> {
        let outcome = self.fetch(id)?;
        if let Some(resident) = self.resident.get(id) {
            if let Some(delta) = &resident.decoded {
                return Ok(DecodedFetch {
                    tier: outcome.tier,
                    bytes: outcome.bytes,
                    object_wait_s: outcome.object_wait_s,
                    raw_bytes: resident.decoded_bytes,
                    delta: Arc::clone(delta),
                    decode: None,
                });
            }
        }
        let mut reader = ArtifactReader::open(Cursor::new(&outcome.data[..]))?;
        let (delta, stats) = reader.read_delta_with_stats()?;
        let delta = Arc::new(delta);
        if let Some(resident) = self.resident.get_mut(id) {
            resident.decoded = Some(Arc::clone(&delta));
            resident.decoded_bytes = stats.raw_bytes;
            self.resident_bytes += stats.raw_bytes;
            // The decoded copy counts against the host budget too; shed
            // LRU entries (never the one just fetched) until it fits.
            while self.resident_bytes > self.budget_bytes {
                let victim = self
                    .resident
                    .iter()
                    .filter(|(v, _)| *v != id)
                    .min_by_key(|(_, r)| r.stamp)
                    .map(|(&v, _)| v);
                match victim {
                    Some(v) => self.evict(&v),
                    None => break,
                }
            }
            // Compressed + decoded alone overflow the whole cache: serve
            // this load uncached rather than pinning an over-budget entry
            // (mirrors `admit`'s oversized-artifact rule).
            if self.resident_bytes > self.budget_bytes {
                self.evict(id);
            }
        }
        self.decode.loads += 1;
        self.decode.stats.accumulate(&stats);
        Ok(DecodedFetch {
            tier: outcome.tier,
            bytes: outcome.bytes,
            object_wait_s: outcome.object_wait_s,
            raw_bytes: stats.raw_bytes,
            delta,
            decode: Some(stats),
        })
    }

    /// Prewarms artifacts disk→host under a **byte budget** without
    /// touching demand-load accounting: each non-resident id is read from
    /// disk and admitted into the host cache (compressed bytes only — the
    /// decode still runs at swap-in) while the cumulative prefetched bytes
    /// stay within `budget_bytes`. Ids are taken in order, so callers pass
    /// them highest-priority first; an id that would overflow the budget is
    /// skipped (later, smaller ids may still fit). Prefetched artifacts are
    /// tracked, and their first demand hit counts as a
    /// [`LoadStats::prefetch_hits`].
    pub fn prefetch(
        &mut self,
        ids: &[ArtifactId],
        budget_bytes: u64,
    ) -> Result<PrefetchOutcome, StoreError> {
        let mut outcome = PrefetchOutcome::default();
        for id in ids {
            if self.is_resident(id) {
                outcome.skipped_resident += 1;
                continue;
            }
            let size = self.registry.size_of(id)?;
            if outcome.bytes.saturating_add(size) > budget_bytes || size > self.budget_bytes {
                // Over the caller's budget, or larger than the whole host
                // cache (admit would refuse it anyway): skip.
                outcome.skipped_budget += 1;
                continue;
            }
            self.clock += 1;
            let data = Arc::new(self.registry.read_bytes(id)?);
            let bytes = data.len() as u64;
            // A remote artifact prefetched ahead of demand still pulls
            // from the object store (and edge-replicates), but off the
            // critical path: the wait is accounted, not charged.
            let _ = self.pull_from_object_store(id, bytes);
            self.admit(*id, data);
            let per = self.per_artifact.entry(*id).or_default();
            per.prefetch_loads += 1;
            per.prefetch_bytes += bytes;
            self.total.prefetch_loads += 1;
            self.total.prefetch_bytes += bytes;
            self.prefetched.insert(*id);
            outcome.bytes += bytes;
            outcome.fetched.push(*id);
        }
        Ok(outcome)
    }

    /// Cumulative measured decode throughput across decoded loads.
    pub fn decode_throughput(&self) -> DecodeThroughput {
        self.decode
    }

    /// Refreshes an artifact's LRU stamp without fetching (used when the
    /// artifact is consumed from a copy further up the hierarchy, e.g.
    /// GPU-resident, and should stay warm in host memory too). Returns
    /// whether the artifact was host-resident.
    pub fn touch(&mut self, id: &ArtifactId) -> bool {
        self.clock += 1;
        match self.resident.get_mut(id) {
            Some(r) => {
                r.stamp = self.clock;
                true
            }
            None => false,
        }
    }

    /// Drops one artifact from the host cache (it stays on disk).
    pub fn evict(&mut self, id: &ArtifactId) {
        if let Some(r) = self.resident.remove(id) {
            self.resident_bytes -= r.footprint();
            self.prefetched.remove(id);
        }
    }

    /// Drops the *entire* host cache — the warm-set loss a replica crash
    /// inflicts. Artifacts stay on disk and load accounting is kept (the
    /// re-warming fetches after the restart are exactly the cost a crash
    /// is supposed to charge). Returns how many artifacts were dropped.
    pub fn invalidate_resident(&mut self) -> usize {
        let n = self.resident.len();
        self.resident.clear();
        self.prefetched.clear();
        self.resident_bytes = 0;
        n
    }

    /// Load accounting for one artifact.
    pub fn stats(&self, id: &ArtifactId) -> LoadStats {
        self.per_artifact.get(id).copied().unwrap_or_default()
    }

    /// Aggregate load accounting.
    pub fn total_stats(&self) -> LoadStats {
        self.total
    }

    /// If `id` is still object-store-only, records the object fetch,
    /// replicates it to the edge disk, and returns the simulated wait;
    /// returns `0.0` for edge-resident artifacts.
    fn pull_from_object_store(&mut self, id: &ArtifactId, bytes: u64) -> f64 {
        let Some(config) = self.object_store else {
            return 0.0;
        };
        if !self.remote_only.remove(id) {
            return 0.0;
        }
        let per = self.per_artifact.entry(*id).or_default();
        per.object_fetches += 1;
        per.object_bytes += bytes;
        self.total.object_fetches += 1;
        self.total.object_bytes += bytes;
        config.fetch_time_s(bytes)
    }

    fn record(&mut self, id: &ArtifactId, tier: FetchTier, bytes: u64) {
        self.per_artifact
            .entry(*id)
            .or_default()
            .record(tier, bytes);
        self.total.record(tier, bytes);
    }

    fn admit(&mut self, id: ArtifactId, data: Arc<Vec<u8>>) {
        let len = data.len() as u64;
        if len > self.budget_bytes {
            // Larger than the whole cache: serve it uncached rather than
            // flushing everything for one artifact.
            return;
        }
        while self.resident_bytes + len > self.budget_bytes {
            let victim = self
                .resident
                .iter()
                .min_by_key(|(_, r)| r.stamp)
                .map(|(id, _)| *id);
            match victim {
                Some(v) => self.evict(&v),
                None => break,
            }
        }
        self.resident_bytes += len;
        self.resident.insert(
            id,
            Resident {
                data,
                decoded: None,
                decoded_bytes: 0,
                stamp: self.clock,
            },
        );
    }
}
