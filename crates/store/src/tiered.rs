//! Tiered delta storage: disk registry under a byte-budget host cache.
//!
//! The paper's hierarchical delta management (§5.4) keeps hot compressed
//! deltas in host DRAM and spills cold ones to disk. [`TieredDeltaStore`]
//! models exactly that: artifact bytes are fetched from the
//! content-addressed [`Registry`] on a miss and cached in memory under a
//! least-recently-used byte budget, with per-artifact load accounting so
//! the serving engine can charge real transfer sizes.

use crate::error::StoreError;
use crate::registry::{ArtifactId, Registry};
use std::collections::HashMap;
use std::sync::Arc;

/// Which tier satisfied a fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchTier {
    /// Served from the host DRAM cache: only the host→device hop remains.
    HostHit,
    /// Read from disk (and now cached): disk + host→device hops.
    DiskMiss,
}

/// The result of one fetch.
#[derive(Debug, Clone)]
pub struct FetchOutcome {
    /// Which tier served the request.
    pub tier: FetchTier,
    /// Artifact size in bytes (what the interconnect moves).
    pub bytes: u64,
    /// The artifact's raw `.dza` bytes.
    pub data: Arc<Vec<u8>>,
}

/// Per-artifact (and aggregate) load accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadStats {
    /// Fetches served from the host cache.
    pub host_hits: u64,
    /// Fetches that had to read disk.
    pub disk_loads: u64,
    /// Total bytes served from the host cache.
    pub host_bytes: u64,
    /// Total bytes read from disk.
    pub disk_bytes: u64,
}

impl LoadStats {
    fn record(&mut self, tier: FetchTier, bytes: u64) {
        match tier {
            FetchTier::HostHit => {
                self.host_hits += 1;
                self.host_bytes += bytes;
            }
            FetchTier::DiskMiss => {
                self.disk_loads += 1;
                self.disk_bytes += bytes;
            }
        }
    }
}

struct Resident {
    data: Arc<Vec<u8>>,
    stamp: u64,
}

/// A disk→host tiered store with an LRU host cache bounded in bytes.
pub struct TieredDeltaStore {
    registry: Registry,
    budget_bytes: u64,
    resident: HashMap<ArtifactId, Resident>,
    resident_bytes: u64,
    clock: u64,
    per_artifact: HashMap<ArtifactId, LoadStats>,
    total: LoadStats,
}

impl TieredDeltaStore {
    /// Wraps a registry with a host cache of `budget_bytes`.
    pub fn new(registry: Registry, budget_bytes: u64) -> Self {
        TieredDeltaStore {
            registry,
            budget_bytes,
            resident: HashMap::new(),
            resident_bytes: 0,
            clock: 0,
            per_artifact: HashMap::new(),
            total: LoadStats::default(),
        }
    }

    /// The underlying registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The host cache budget in bytes.
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// Bytes currently resident in the host cache.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }

    /// Whether an artifact is currently host-resident.
    pub fn is_resident(&self, id: &ArtifactId) -> bool {
        self.resident.contains_key(id)
    }

    /// Fetches an artifact's bytes, reading disk only on a host miss.
    pub fn fetch(&mut self, id: &ArtifactId) -> Result<FetchOutcome, StoreError> {
        self.clock += 1;
        if let Some(r) = self.resident.get_mut(id) {
            r.stamp = self.clock;
            let outcome = FetchOutcome {
                tier: FetchTier::HostHit,
                bytes: r.data.len() as u64,
                data: Arc::clone(&r.data),
            };
            self.record(id, FetchTier::HostHit, outcome.bytes);
            return Ok(outcome);
        }
        let data = Arc::new(self.registry.read_bytes(id)?);
        let bytes = data.len() as u64;
        self.admit(*id, Arc::clone(&data));
        self.record(id, FetchTier::DiskMiss, bytes);
        Ok(FetchOutcome {
            tier: FetchTier::DiskMiss,
            bytes,
            data,
        })
    }

    /// Refreshes an artifact's LRU stamp without fetching (used when the
    /// artifact is consumed from a copy further up the hierarchy, e.g.
    /// GPU-resident, and should stay warm in host memory too). Returns
    /// whether the artifact was host-resident.
    pub fn touch(&mut self, id: &ArtifactId) -> bool {
        self.clock += 1;
        match self.resident.get_mut(id) {
            Some(r) => {
                r.stamp = self.clock;
                true
            }
            None => false,
        }
    }

    /// Drops one artifact from the host cache (it stays on disk).
    pub fn evict(&mut self, id: &ArtifactId) {
        if let Some(r) = self.resident.remove(id) {
            self.resident_bytes -= r.data.len() as u64;
        }
    }

    /// Load accounting for one artifact.
    pub fn stats(&self, id: &ArtifactId) -> LoadStats {
        self.per_artifact.get(id).copied().unwrap_or_default()
    }

    /// Aggregate load accounting.
    pub fn total_stats(&self) -> LoadStats {
        self.total
    }

    fn record(&mut self, id: &ArtifactId, tier: FetchTier, bytes: u64) {
        self.per_artifact
            .entry(*id)
            .or_default()
            .record(tier, bytes);
        self.total.record(tier, bytes);
    }

    fn admit(&mut self, id: ArtifactId, data: Arc<Vec<u8>>) {
        let len = data.len() as u64;
        if len > self.budget_bytes {
            // Larger than the whole cache: serve it uncached rather than
            // flushing everything for one artifact.
            return;
        }
        while self.resident_bytes + len > self.budget_bytes {
            let victim = self
                .resident
                .iter()
                .min_by_key(|(_, r)| r.stamp)
                .map(|(id, _)| *id);
            match victim {
                Some(v) => self.evict(&v),
                None => break,
            }
        }
        self.resident_bytes += len;
        self.resident.insert(
            id,
            Resident {
                data,
                stamp: self.clock,
            },
        );
    }
}
