//! Delta artifact storage for DeltaZip: the `.dza` container, a
//! content-addressed registry, and a tiered disk→host cache.
//!
//! DeltaZip's economics (§5.4 of the paper) come from compressed deltas
//! living on cheap storage and streaming disk→host→GPU on demand. This
//! crate is that storage layer:
//!
//! * [`dza`] — the versioned little-endian `.dza` container: a manifest
//!   (name, base-model lineage hash, quantization recipe, per-tensor
//!   index) over per-tensor pages compressed with the `dz-lossless` paged
//!   codec and double-checksummed (page CRC + manifest CRC of the raw
//!   bytes). Written streaming, read with random access per tensor; whole
//!   deltas load through a pipelined path that decodes tensors
//!   concurrently while the next tensor streams off the source, and
//!   reports measured throughput ([`DecodeStats`]).
//! * [`registry`] — a content-addressed on-disk zoo: artifacts live under
//!   `<root>/<sha256>.dza`, identical deltas deduplicate, named refs map
//!   variant names to hashes, and any file can be integrity-audited.
//! * [`tiered`] — [`TieredDeltaStore`]: a byte-budget LRU host cache over
//!   the registry with per-artifact load accounting, so serving engines
//!   charge real transfer bytes for host hits vs disk misses.
//! * [`hash`] — SHA-256 (from the FIPS 180-4 spec) for content addresses
//!   and base-model lineage.
//!
//! # Example
//!
//! ```no_run
//! use dz_store::{Registry, TieredDeltaStore};
//! # fn demo(delta: &dz_compress::CompressedDelta, base_hash: dz_store::Digest)
//! # -> Result<(), dz_store::StoreError> {
//! let registry = Registry::open("zoo")?;
//! let id = registry.publish_delta("vicuna-7b", base_hash, delta)?;
//! let mut store = TieredDeltaStore::new(registry, 512 << 20);
//! let first = store.fetch(&id)?;   // disk miss
//! let second = store.fetch(&id)?;  // host hit, no disk I/O
//! assert_eq!(first.bytes, second.bytes);
//! # Ok(()) }
//! ```

#![warn(missing_docs)]

pub mod dza;
pub mod error;
pub mod hash;
pub mod registry;
pub mod tiered;

pub use dza::{ArtifactReader, ArtifactWriter, DecodeStats, Manifest, TensorEntry, TensorKind};
pub use error::StoreError;
pub use hash::{sha256, Digest, Sha256};
pub use registry::{ArtifactId, Registry};
pub use tiered::{
    DecodeThroughput, DecodedFetch, FetchOutcome, FetchTier, LoadStats, ObjectStoreConfig,
    PrefetchOutcome, TieredDeltaStore, Warmth,
};
