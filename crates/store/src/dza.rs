//! The `.dza` (DeltaZip Artifact) container format.
//!
//! A `.dza` file holds one compressed model delta: its lineage (the hash of
//! the base model it patches), the quantization configuration that produced
//! it, and every tensor as an independently readable, losslessly compressed
//! page. All integers are little-endian.
//!
//! ```text
//! +--------------------------------------------------------------+
//! | head:    magic "DZA1" | version u16                          |
//! +--------------------------------------------------------------+
//! | tensor pages, back to back                                   |
//! |   each page = dz_lossless::compress(wire bytes of tensor)    |
//! +--------------------------------------------------------------+
//! | manifest: name | base_hash[32] | config | size report        |
//! |           n_tensors u32                                      |
//! |           { name | kind u8 | offset u64 | comp_len u64       |
//! |             raw_len u64 | crc32 u32 } x n_tensors            |
//! +--------------------------------------------------------------+
//! | footer:  manifest_offset u64 | manifest_len u64              |
//! |          manifest_crc u32 | magic "DZAE"                     |
//! +--------------------------------------------------------------+
//! ```
//!
//! The manifest sits *after* the payload (zip-style central directory) so
//! [`ArtifactWriter`] can stream to any `io::Write` without seeking, while
//! [`ArtifactReader`] seeks to the fixed-size footer and then random-reads
//! individual tensors. Every tensor page carries the paged codec's own
//! checksum plus a manifest-recorded CRC32 of the raw bytes, so corruption
//! anywhere — header, page, or directory — surfaces as a typed
//! [`StoreError`], never as silently wrong weights.

use crate::error::StoreError;
use crate::hash::Digest;
use dz_compress::pipeline::{CompressedDelta, DeltaCompressConfig, SizeReport};
use dz_compress::wire::{self, put_name, Reader as WireReader};
use dz_compress::CompressedMatrix;
use dz_lossless::crc::crc32;
use dz_tensor::Matrix;
use std::collections::BTreeMap;
use std::io::{Read, Seek, SeekFrom, Write};

/// Leading container magic.
pub const DZA_MAGIC: &[u8; 4] = b"DZA1";
/// Container format version.
pub const DZA_VERSION: u16 = 1;
/// Trailing footer magic.
const FOOTER_MAGIC: &[u8; 4] = b"DZAE";
/// Head size: magic + version.
const HEAD_LEN: u64 = 6;
/// Footer size: manifest offset + length + crc + magic.
const FOOTER_LEN: u64 = 24;

/// What a tensor page decodes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TensorKind {
    /// A ΔCompressed linear layer ([`CompressedMatrix`] wire record).
    PackedLinear,
    /// An uncompressed FP32 rest tensor (dense wire record).
    DenseRest,
}

/// One tensor's location and integrity data.
#[derive(Debug, Clone, PartialEq)]
pub struct TensorEntry {
    /// Stable parameter name.
    pub name: String,
    /// Page payload type.
    pub kind: TensorKind,
    /// Byte offset of the page within the file.
    pub offset: u64,
    /// Compressed page length in bytes.
    pub comp_len: u64,
    /// Decompressed (wire record) length in bytes.
    pub raw_len: u64,
    /// CRC32 of the decompressed wire record.
    pub crc32: u32,
}

/// The artifact directory: lineage, quantization recipe, tensor index.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Variant name the artifact was published under.
    pub name: String,
    /// Content hash of the base model this delta patches.
    pub base_hash: Digest,
    /// The ΔCompress configuration that produced the delta.
    pub config: DeltaCompressConfig,
    /// Byte accounting of the compressed delta.
    pub report: SizeReport,
    /// Per-tensor index in file order.
    pub tensors: Vec<TensorEntry>,
}

impl Manifest {
    /// Looks a tensor up by name.
    pub fn entry(&self, name: &str) -> Option<&TensorEntry> {
        self.tensors.iter().find(|t| t.name == name)
    }

    /// Total compressed payload bytes across all tensor pages.
    pub fn payload_bytes(&self) -> u64 {
        self.tensors.iter().map(|t| t.comp_len).sum()
    }

    /// Checks the recorded lineage against the base model the caller
    /// intends to patch.
    pub fn verify_base(&self, expected: &Digest) -> Result<(), StoreError> {
        if self.base_hash != *expected {
            return Err(StoreError::BaseMismatch {
                expected: expected.hex(),
                found: self.base_hash.hex(),
            });
        }
        Ok(())
    }

    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_name(&mut out, &self.name);
        out.extend_from_slice(&self.base_hash.0);
        wire::encode_config(&self.config, &mut out);
        wire::encode_report(&self.report, &mut out);
        out.extend_from_slice(&(self.tensors.len() as u32).to_le_bytes());
        for t in &self.tensors {
            put_name(&mut out, &t.name);
            out.push(match t.kind {
                TensorKind::PackedLinear => 0,
                TensorKind::DenseRest => 1,
            });
            out.extend_from_slice(&t.offset.to_le_bytes());
            out.extend_from_slice(&t.comp_len.to_le_bytes());
            out.extend_from_slice(&t.raw_len.to_le_bytes());
            out.extend_from_slice(&t.crc32.to_le_bytes());
        }
        out
    }

    fn decode(bytes: &[u8]) -> Result<Manifest, StoreError> {
        let mut r = WireReader::new(bytes);
        let name = r.name()?;
        let mut hash = [0u8; 32];
        for b in hash.iter_mut() {
            *b = r.u8()?;
        }
        let config = wire::decode_config(&mut r)?;
        let report = wire::decode_report(&mut r)?;
        let n = r.u32()? as usize;
        let mut tensors = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let tname = r.name()?;
            let kind = match r.u8()? {
                0 => TensorKind::PackedLinear,
                1 => TensorKind::DenseRest,
                _ => return Err(StoreError::Corrupt("unknown tensor kind")),
            };
            tensors.push(TensorEntry {
                name: tname,
                kind,
                offset: r.u64()?,
                comp_len: r.u64()?,
                raw_len: r.u64()?,
                crc32: r.u32()?,
            });
        }
        if !r.is_done() {
            return Err(StoreError::Corrupt("trailing bytes in manifest"));
        }
        Ok(Manifest {
            name,
            base_hash: Digest(hash),
            config,
            report,
            tensors,
        })
    }
}

/// Streaming `.dza` writer over any `io::Write` sink (no seeking needed).
pub struct ArtifactWriter<W: Write> {
    sink: W,
    offset: u64,
    manifest: Manifest,
}

impl<W: Write> ArtifactWriter<W> {
    /// Starts a container: writes the head and records lineage + recipe.
    pub fn new(
        mut sink: W,
        name: &str,
        base_hash: Digest,
        config: DeltaCompressConfig,
        report: SizeReport,
    ) -> Result<Self, StoreError> {
        if name.len() > u16::MAX as usize {
            return Err(StoreError::InvalidName(name.to_string()));
        }
        sink.write_all(DZA_MAGIC)?;
        sink.write_all(&DZA_VERSION.to_le_bytes())?;
        Ok(ArtifactWriter {
            sink,
            offset: HEAD_LEN,
            manifest: Manifest {
                name: name.to_string(),
                base_hash,
                config,
                report,
                tensors: Vec::new(),
            },
        })
    }

    fn add_page(&mut self, name: &str, kind: TensorKind, raw: &[u8]) -> Result<(), StoreError> {
        if name.len() > u16::MAX as usize {
            return Err(StoreError::InvalidName(name.to_string()));
        }
        if self.manifest.entry(name).is_some() {
            return Err(StoreError::InvalidName(format!(
                "duplicate tensor `{name}`"
            )));
        }
        let page = dz_lossless::compress(raw);
        self.sink.write_all(&page)?;
        self.manifest.tensors.push(TensorEntry {
            name: name.to_string(),
            kind,
            offset: self.offset,
            comp_len: page.len() as u64,
            raw_len: raw.len() as u64,
            crc32: crc32(raw),
        });
        self.offset += page.len() as u64;
        Ok(())
    }

    /// Appends one ΔCompressed linear layer.
    pub fn add_packed(&mut self, name: &str, cm: &CompressedMatrix) -> Result<(), StoreError> {
        self.add_page(name, TensorKind::PackedLinear, &wire::matrix_to_bytes(cm))
    }

    /// Appends one uncompressed FP32 rest tensor.
    pub fn add_dense(&mut self, name: &str, m: &Matrix) -> Result<(), StoreError> {
        let mut raw = Vec::new();
        wire::encode_dense(m, &mut raw);
        self.add_page(name, TensorKind::DenseRest, &raw)
    }

    /// Writes the manifest and footer, returning the sink.
    pub fn finish(mut self) -> Result<W, StoreError> {
        let manifest_bytes = self.manifest.encode();
        self.sink.write_all(&manifest_bytes)?;
        self.sink.write_all(&self.offset.to_le_bytes())?;
        self.sink
            .write_all(&(manifest_bytes.len() as u64).to_le_bytes())?;
        self.sink.write_all(&crc32(&manifest_bytes).to_le_bytes())?;
        self.sink.write_all(FOOTER_MAGIC)?;
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Writes a whole [`CompressedDelta`] as one `.dza` container.
pub fn write_delta<W: Write>(
    sink: W,
    name: &str,
    base_hash: Digest,
    delta: &CompressedDelta,
) -> Result<W, StoreError> {
    let mut w = ArtifactWriter::new(sink, name, base_hash, delta.config, delta.report)?;
    for (tensor, cm) in &delta.layers {
        w.add_packed(tensor, cm)?;
    }
    for (tensor, m) in &delta.rest {
        w.add_dense(tensor, m)?;
    }
    w.finish()
}

/// Random-access `.dza` reader over any `Read + Seek` source.
pub struct ArtifactReader<R: Read + Seek> {
    source: R,
    manifest: Manifest,
}

impl<R: Read + Seek> ArtifactReader<R> {
    /// Opens a container: validates head and footer, loads the manifest.
    pub fn open(mut source: R) -> Result<Self, StoreError> {
        let file_len = source.seek(SeekFrom::End(0))?;
        if file_len < HEAD_LEN + FOOTER_LEN {
            return Err(StoreError::Truncated);
        }
        source.seek(SeekFrom::Start(0))?;
        let mut head = [0u8; HEAD_LEN as usize];
        source.read_exact(&mut head)?;
        if &head[..4] != DZA_MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = u16::from_le_bytes([head[4], head[5]]);
        if version != DZA_VERSION {
            return Err(StoreError::BadVersion(version));
        }
        source.seek(SeekFrom::End(-(FOOTER_LEN as i64)))?;
        let mut footer = [0u8; FOOTER_LEN as usize];
        source.read_exact(&mut footer)?;
        if &footer[20..24] != FOOTER_MAGIC {
            return Err(StoreError::Truncated);
        }
        let manifest_offset = u64::from_le_bytes(footer[0..8].try_into().unwrap());
        let manifest_len = u64::from_le_bytes(footer[8..16].try_into().unwrap());
        let manifest_crc = u32::from_le_bytes(footer[16..20].try_into().unwrap());
        let manifest_end = manifest_offset
            .checked_add(manifest_len)
            .ok_or(StoreError::Corrupt("manifest extent overflows"))?;
        if manifest_offset < HEAD_LEN || manifest_end != file_len - FOOTER_LEN {
            return Err(StoreError::Corrupt("manifest extent out of bounds"));
        }
        source.seek(SeekFrom::Start(manifest_offset))?;
        let mut manifest_bytes = vec![0u8; manifest_len as usize];
        source.read_exact(&mut manifest_bytes)?;
        if crc32(&manifest_bytes) != manifest_crc {
            return Err(StoreError::ChecksumMismatch { tensor: None });
        }
        let manifest = Manifest::decode(&manifest_bytes)?;
        for t in &manifest.tensors {
            let end = t
                .offset
                .checked_add(t.comp_len)
                .ok_or(StoreError::Corrupt("tensor extent overflows"))?;
            if t.offset < HEAD_LEN || end > manifest_offset {
                return Err(StoreError::Corrupt("tensor extent out of bounds"));
            }
        }
        Ok(ArtifactReader { source, manifest })
    }

    /// The parsed directory.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Reads and verifies one tensor's raw wire bytes.
    pub fn read_tensor_bytes(&mut self, name: &str) -> Result<Vec<u8>, StoreError> {
        let entry = self
            .manifest
            .entry(name)
            .ok_or_else(|| StoreError::UnknownTensor(name.to_string()))?
            .clone();
        self.source.seek(SeekFrom::Start(entry.offset))?;
        let mut page = vec![0u8; entry.comp_len as usize];
        self.source.read_exact(&mut page)?;
        let raw = dz_lossless::decompress(&page)?;
        if raw.len() as u64 != entry.raw_len || crc32(&raw) != entry.crc32 {
            return Err(StoreError::ChecksumMismatch {
                tensor: Some(entry.name),
            });
        }
        Ok(raw)
    }

    /// Reads one ΔCompressed linear layer.
    pub fn read_packed(&mut self, name: &str) -> Result<CompressedMatrix, StoreError> {
        let entry = self
            .manifest
            .entry(name)
            .ok_or_else(|| StoreError::UnknownTensor(name.to_string()))?;
        if entry.kind != TensorKind::PackedLinear {
            return Err(StoreError::Corrupt("tensor is not a packed linear"));
        }
        let raw = self.read_tensor_bytes(name)?;
        Ok(wire::matrix_from_bytes(&raw)?)
    }

    /// Reads one dense FP32 rest tensor.
    pub fn read_dense(&mut self, name: &str) -> Result<Matrix, StoreError> {
        let entry = self
            .manifest
            .entry(name)
            .ok_or_else(|| StoreError::UnknownTensor(name.to_string()))?;
        if entry.kind != TensorKind::DenseRest {
            return Err(StoreError::Corrupt("tensor is not a dense rest tensor"));
        }
        let raw = self.read_tensor_bytes(name)?;
        let mut r = WireReader::new(&raw);
        let m = wire::decode_dense(&mut r)?;
        if !r.is_done() {
            return Err(StoreError::Corrupt("trailing bytes in dense tensor"));
        }
        Ok(m)
    }

    /// Reassembles the whole [`CompressedDelta`].
    pub fn read_delta(&mut self) -> Result<CompressedDelta, StoreError> {
        let names: Vec<(String, TensorKind)> = self
            .manifest
            .tensors
            .iter()
            .map(|t| (t.name.clone(), t.kind))
            .collect();
        let mut layers = BTreeMap::new();
        let mut rest = BTreeMap::new();
        for (name, kind) in names {
            match kind {
                TensorKind::PackedLinear => {
                    layers.insert(name.clone(), self.read_packed(&name)?);
                }
                TensorKind::DenseRest => {
                    rest.insert(name.clone(), self.read_dense(&name)?);
                }
            }
        }
        Ok(CompressedDelta {
            layers,
            rest,
            config: self.manifest.config,
            report: self.manifest.report,
        })
    }
}
