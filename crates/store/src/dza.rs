//! The `.dza` (DeltaZip Artifact) container format.
//!
//! A `.dza` file holds one compressed model delta: its lineage (the hash of
//! the base model it patches), the quantization configuration that produced
//! it, and every tensor as an independently readable, losslessly compressed
//! page. All integers are little-endian.
//!
//! ```text
//! +--------------------------------------------------------------+
//! | head:    magic "DZA1" | version u16                          |
//! +--------------------------------------------------------------+
//! | tensor pages, back to back                                   |
//! |   each page = dz_lossless::compress(wire bytes of tensor)    |
//! +--------------------------------------------------------------+
//! | manifest: name | base_hash[32] | config | size report        |
//! |           n_tensors u32                                      |
//! |           { name | kind u8 | offset u64 | comp_len u64       |
//! |             raw_len u64 | crc32 u32 } x n_tensors            |
//! +--------------------------------------------------------------+
//! | footer:  manifest_offset u64 | manifest_len u64              |
//! |          manifest_crc u32 | magic "DZAE"                     |
//! +--------------------------------------------------------------+
//! ```
//!
//! The manifest sits *after* the payload (zip-style central directory) so
//! [`ArtifactWriter`] can stream to any `io::Write` without seeking, while
//! [`ArtifactReader`] seeks to the fixed-size footer and then random-reads
//! individual tensors. Every tensor page carries the paged codec's own
//! checksum plus a manifest-recorded CRC32 of the raw bytes, so corruption
//! anywhere — header, page, or directory — surfaces as a typed
//! [`StoreError`], never as silently wrong weights.

use crate::error::StoreError;
use crate::hash::Digest;
use dz_compress::codec::{CodecId, PackedLayer};
use dz_compress::pipeline::{CompressedDelta, DeltaCompressConfig, SizeReport};
use dz_compress::wire::{self, put_name, Reader as WireReader};
use dz_lossless::crc::crc32;
use dz_tensor::Matrix;
use std::collections::BTreeMap;
use std::io::{Read, Seek, SeekFrom, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

/// Maximum decode worker threads for the pipelined tensor read path.
const MAX_DECODE_WORKERS: usize = 8;
/// Minimum total compressed bytes before the read path spawns workers;
/// below this the spawn cost outweighs the decode work (mirrors the
/// thread-split thresholds in `dz-tensor`'s GEMM and `dz-lossless`'s page
/// decoder).
const PIPELINE_BYTE_THRESHOLD: u64 = 128 * 1024;

/// Leading container magic.
pub const DZA_MAGIC: &[u8; 4] = b"DZA1";
/// Container format version written by [`ArtifactWriter`]. Version 2
/// added method-zoo codec ids to the manifest and every tensor header;
/// version-1 containers (pre-method-zoo, implicitly SparseGPT-starred)
/// still open and read.
pub const DZA_VERSION: u16 = 2;
/// Oldest container version [`ArtifactReader`] still accepts.
pub const DZA_MIN_VERSION: u16 = 1;
/// Tensor-header codec byte meaning "no codec" (dense rest tensors).
const CODEC_NONE: u8 = 0xFF;
/// Trailing footer magic.
const FOOTER_MAGIC: &[u8; 4] = b"DZAE";
/// Head size: magic + version.
const HEAD_LEN: u64 = 6;
/// Footer size: manifest offset + length + crc + magic.
const FOOTER_LEN: u64 = 24;

/// What a tensor page decodes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TensorKind {
    /// A compressed linear-layer delta ([`PackedLayer`] wire record —
    /// any method-zoo format).
    PackedLinear,
    /// An uncompressed FP32 rest tensor (dense wire record).
    DenseRest,
}

/// One tensor's location and integrity data.
#[derive(Debug, Clone, PartialEq)]
pub struct TensorEntry {
    /// Stable parameter name.
    pub name: String,
    /// Page payload type.
    pub kind: TensorKind,
    /// Method-zoo codec that produced the page payload (`None` for dense
    /// rest tensors; version-1 containers report
    /// [`CodecId::SparseGptStar`] for packed linears).
    pub codec: Option<CodecId>,
    /// Byte offset of the page within the file.
    pub offset: u64,
    /// Compressed page length in bytes.
    pub comp_len: u64,
    /// Decompressed (wire record) length in bytes.
    pub raw_len: u64,
    /// CRC32 of the decompressed wire record.
    pub crc32: u32,
}

/// The artifact directory: lineage, quantization recipe, tensor index.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Variant name the artifact was published under.
    pub name: String,
    /// Content hash of the base model this delta patches.
    pub base_hash: Digest,
    /// The method-zoo codec that produced the delta.
    pub codec: CodecId,
    /// The ΔCompress configuration that produced the delta.
    pub config: DeltaCompressConfig,
    /// Byte accounting of the compressed delta.
    pub report: SizeReport,
    /// Per-tensor index in file order.
    pub tensors: Vec<TensorEntry>,
}

impl Manifest {
    /// Looks a tensor up by name.
    pub fn entry(&self, name: &str) -> Option<&TensorEntry> {
        self.tensors.iter().find(|t| t.name == name)
    }

    /// Total compressed payload bytes across all tensor pages.
    pub fn payload_bytes(&self) -> u64 {
        self.tensors.iter().map(|t| t.comp_len).sum()
    }

    /// Checks the recorded lineage against the base model the caller
    /// intends to patch.
    pub fn verify_base(&self, expected: &Digest) -> Result<(), StoreError> {
        if self.base_hash != *expected {
            return Err(StoreError::BaseMismatch {
                expected: expected.hex(),
                found: self.base_hash.hex(),
            });
        }
        Ok(())
    }

    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_name(&mut out, &self.name);
        out.extend_from_slice(&self.base_hash.0);
        out.push(self.codec.as_u8());
        wire::encode_config(&self.config, &mut out);
        wire::encode_report(&self.report, &mut out);
        out.extend_from_slice(&(self.tensors.len() as u32).to_le_bytes());
        for t in &self.tensors {
            put_name(&mut out, &t.name);
            out.push(match t.kind {
                TensorKind::PackedLinear => 0,
                TensorKind::DenseRest => 1,
            });
            out.push(t.codec.map_or(CODEC_NONE, CodecId::as_u8));
            out.extend_from_slice(&t.offset.to_le_bytes());
            out.extend_from_slice(&t.comp_len.to_le_bytes());
            out.extend_from_slice(&t.raw_len.to_le_bytes());
            out.extend_from_slice(&t.crc32.to_le_bytes());
        }
        out
    }

    /// Decodes a manifest of the given container version. Version-1
    /// manifests carry no codec bytes; their packed linears are implicitly
    /// SparseGPT-starred.
    fn decode(bytes: &[u8], version: u16) -> Result<Manifest, StoreError> {
        let mut r = WireReader::new(bytes);
        let name = r.name()?;
        let mut hash = [0u8; 32];
        for b in hash.iter_mut() {
            *b = r.u8()?;
        }
        let codec = if version >= 2 {
            CodecId::from_u8(r.u8()?).ok_or(StoreError::Corrupt("unknown manifest codec id"))?
        } else {
            CodecId::SparseGptStar
        };
        let config = wire::decode_config(&mut r)?;
        let report = wire::decode_report(&mut r)?;
        let n = r.u32()? as usize;
        let mut tensors = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let tname = r.name()?;
            let kind = match r.u8()? {
                0 => TensorKind::PackedLinear,
                1 => TensorKind::DenseRest,
                _ => return Err(StoreError::Corrupt("unknown tensor kind")),
            };
            let tensor_codec = if version >= 2 {
                match r.u8()? {
                    CODEC_NONE => None,
                    v => Some(
                        CodecId::from_u8(v)
                            .ok_or(StoreError::Corrupt("unknown tensor codec id"))?,
                    ),
                }
            } else {
                match kind {
                    TensorKind::PackedLinear => Some(CodecId::SparseGptStar),
                    TensorKind::DenseRest => None,
                }
            };
            tensors.push(TensorEntry {
                name: tname,
                kind,
                codec: tensor_codec,
                offset: r.u64()?,
                comp_len: r.u64()?,
                raw_len: r.u64()?,
                crc32: r.u32()?,
            });
        }
        if !r.is_done() {
            return Err(StoreError::Corrupt("trailing bytes in manifest"));
        }
        Ok(Manifest {
            name,
            base_hash: Digest(hash),
            codec,
            config,
            report,
            tensors,
        })
    }
}

/// Streaming `.dza` writer over any `io::Write` sink (no seeking needed).
pub struct ArtifactWriter<W: Write> {
    sink: W,
    offset: u64,
    manifest: Manifest,
}

impl<W: Write> ArtifactWriter<W> {
    /// Starts a container: writes the head and records lineage + recipe
    /// (including which method-zoo codec produced the delta).
    pub fn new(
        mut sink: W,
        name: &str,
        base_hash: Digest,
        codec: CodecId,
        config: DeltaCompressConfig,
        report: SizeReport,
    ) -> Result<Self, StoreError> {
        if name.len() > u16::MAX as usize {
            return Err(StoreError::InvalidName(name.to_string()));
        }
        sink.write_all(DZA_MAGIC)?;
        sink.write_all(&DZA_VERSION.to_le_bytes())?;
        Ok(ArtifactWriter {
            sink,
            offset: HEAD_LEN,
            manifest: Manifest {
                name: name.to_string(),
                base_hash,
                codec,
                config,
                report,
                tensors: Vec::new(),
            },
        })
    }

    fn add_page(
        &mut self,
        name: &str,
        kind: TensorKind,
        codec: Option<CodecId>,
        raw: &[u8],
    ) -> Result<(), StoreError> {
        if name.len() > u16::MAX as usize {
            return Err(StoreError::InvalidName(name.to_string()));
        }
        if self.manifest.entry(name).is_some() {
            return Err(StoreError::InvalidName(format!(
                "duplicate tensor `{name}`"
            )));
        }
        let page = dz_lossless::compress(raw);
        self.sink.write_all(&page)?;
        self.manifest.tensors.push(TensorEntry {
            name: name.to_string(),
            kind,
            codec,
            offset: self.offset,
            comp_len: page.len() as u64,
            raw_len: raw.len() as u64,
            crc32: crc32(raw),
        });
        self.offset += page.len() as u64;
        Ok(())
    }

    /// Appends one packed linear-layer delta (any method-zoo format). The
    /// tensor header records the codec family of the layer's own format,
    /// so mixed-format artifacts stay inspectable per tensor.
    pub fn add_packed(&mut self, name: &str, layer: &PackedLayer) -> Result<(), StoreError> {
        self.add_page(
            name,
            TensorKind::PackedLinear,
            Some(layer.codec_id()),
            &wire::layer_to_bytes(layer),
        )
    }

    /// Appends one uncompressed FP32 rest tensor.
    pub fn add_dense(&mut self, name: &str, m: &Matrix) -> Result<(), StoreError> {
        let mut raw = Vec::new();
        wire::encode_dense(m, &mut raw);
        self.add_page(name, TensorKind::DenseRest, None, &raw)
    }

    /// Writes the manifest and footer, returning the sink.
    pub fn finish(mut self) -> Result<W, StoreError> {
        let manifest_bytes = self.manifest.encode();
        self.sink.write_all(&manifest_bytes)?;
        self.sink.write_all(&self.offset.to_le_bytes())?;
        self.sink
            .write_all(&(manifest_bytes.len() as u64).to_le_bytes())?;
        self.sink.write_all(&crc32(&manifest_bytes).to_le_bytes())?;
        self.sink.write_all(FOOTER_MAGIC)?;
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Writes a whole [`CompressedDelta`] as one `.dza` container.
pub fn write_delta<W: Write>(
    sink: W,
    name: &str,
    base_hash: Digest,
    delta: &CompressedDelta,
) -> Result<W, StoreError> {
    let mut w = ArtifactWriter::new(
        sink,
        name,
        base_hash,
        delta.codec,
        delta.config,
        delta.report,
    )?;
    for (tensor, cm) in &delta.layers {
        w.add_packed(tensor, cm)?;
    }
    for (tensor, m) in &delta.rest {
        w.add_dense(tensor, m)?;
    }
    w.finish()
}

/// Measured statistics of one pipelined delta load.
///
/// `wall_s` spans the whole read+decode pipeline, so
/// [`effective_gbps`](Self::effective_gbps) is the end-to-end rate at
/// which compressed artifact bytes became usable tensors — the number the
/// serving cost model consumes in place of its static deserialization
/// constant.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DecodeStats {
    /// Tensors decoded.
    pub tensors: usize,
    /// Compressed page bytes read from the source.
    pub compressed_bytes: u64,
    /// Decompressed wire bytes produced.
    pub raw_bytes: u64,
    /// Wall time spent reading pages from the source (main thread).
    pub read_s: f64,
    /// CPU time spent decoding, summed across workers.
    pub decode_s: f64,
    /// Wall time of the whole pipelined load.
    pub wall_s: f64,
    /// Decode worker threads used (1 = inline serial).
    pub threads: usize,
}

impl DecodeStats {
    /// End-to-end compressed-bytes-per-second of the load, in GB/s.
    /// `None` when the load was too fast to time meaningfully.
    pub fn effective_gbps(&self) -> Option<f64> {
        (self.wall_s > 0.0 && self.compressed_bytes > 0)
            .then(|| self.compressed_bytes as f64 / 1e9 / self.wall_s)
    }

    /// Decompression core rate: raw bytes produced per decode-CPU-second,
    /// in GB/s (per-thread figure; independent of read overlap).
    pub fn decode_core_gbps(&self) -> Option<f64> {
        (self.decode_s > 0.0 && self.raw_bytes > 0)
            .then(|| self.raw_bytes as f64 / 1e9 / self.decode_s)
    }

    /// Folds another load's stats into cumulative totals.
    pub fn accumulate(&mut self, other: &DecodeStats) {
        self.tensors += other.tensors;
        self.compressed_bytes += other.compressed_bytes;
        self.raw_bytes += other.raw_bytes;
        self.read_s += other.read_s;
        self.decode_s += other.decode_s;
        self.wall_s += other.wall_s;
        self.threads = self.threads.max(other.threads);
    }
}

/// One decoded tensor payload.
enum DecodedTensor {
    Packed(PackedLayer),
    Dense(Matrix),
}

/// Decompresses, CRC-checks, and wire-decodes one tensor page. Workers
/// decode single-threaded (parallelism comes from tensor fan-out); the
/// inline path lets the page codec fan out itself.
fn decode_tensor(
    entry: &TensorEntry,
    page: &[u8],
    single_thread: bool,
) -> Result<DecodedTensor, StoreError> {
    let raw = if single_thread {
        dz_lossless::decompress_with_threads(page, 1)?
    } else {
        dz_lossless::decompress(page)?
    };
    if raw.len() as u64 != entry.raw_len || crc32(&raw) != entry.crc32 {
        return Err(StoreError::ChecksumMismatch {
            tensor: Some(entry.name.clone()),
        });
    }
    match entry.kind {
        TensorKind::PackedLinear => Ok(DecodedTensor::Packed(wire::layer_from_bytes(&raw)?)),
        TensorKind::DenseRest => {
            let mut r = WireReader::new(&raw);
            let m = wire::decode_dense(&mut r)?;
            if !r.is_done() {
                return Err(StoreError::Corrupt("trailing bytes in dense tensor"));
            }
            Ok(DecodedTensor::Dense(m))
        }
    }
}

/// Random-access `.dza` reader over any `Read + Seek` source.
pub struct ArtifactReader<R: Read + Seek> {
    source: R,
    manifest: Manifest,
}

impl<R: Read + Seek> ArtifactReader<R> {
    /// Opens a container: validates head and footer, loads the manifest.
    pub fn open(mut source: R) -> Result<Self, StoreError> {
        let file_len = source.seek(SeekFrom::End(0))?;
        if file_len < HEAD_LEN + FOOTER_LEN {
            return Err(StoreError::Truncated);
        }
        source.seek(SeekFrom::Start(0))?;
        let mut head = [0u8; HEAD_LEN as usize];
        source.read_exact(&mut head)?;
        if &head[..4] != DZA_MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = u16::from_le_bytes([head[4], head[5]]);
        if !(DZA_MIN_VERSION..=DZA_VERSION).contains(&version) {
            return Err(StoreError::BadVersion(version));
        }
        source.seek(SeekFrom::End(-(FOOTER_LEN as i64)))?;
        let mut footer = [0u8; FOOTER_LEN as usize];
        source.read_exact(&mut footer)?;
        if &footer[20..24] != FOOTER_MAGIC {
            return Err(StoreError::Truncated);
        }
        let manifest_offset = u64::from_le_bytes(footer[0..8].try_into().unwrap());
        let manifest_len = u64::from_le_bytes(footer[8..16].try_into().unwrap());
        let manifest_crc = u32::from_le_bytes(footer[16..20].try_into().unwrap());
        let manifest_end = manifest_offset
            .checked_add(manifest_len)
            .ok_or(StoreError::Corrupt("manifest extent overflows"))?;
        if manifest_offset < HEAD_LEN || manifest_end != file_len - FOOTER_LEN {
            return Err(StoreError::Corrupt("manifest extent out of bounds"));
        }
        source.seek(SeekFrom::Start(manifest_offset))?;
        let mut manifest_bytes = vec![0u8; manifest_len as usize];
        source.read_exact(&mut manifest_bytes)?;
        if crc32(&manifest_bytes) != manifest_crc {
            return Err(StoreError::ChecksumMismatch { tensor: None });
        }
        let manifest = Manifest::decode(&manifest_bytes, version)?;
        for t in &manifest.tensors {
            let end = t
                .offset
                .checked_add(t.comp_len)
                .ok_or(StoreError::Corrupt("tensor extent overflows"))?;
            if t.offset < HEAD_LEN || end > manifest_offset {
                return Err(StoreError::Corrupt("tensor extent out of bounds"));
            }
        }
        Ok(ArtifactReader { source, manifest })
    }

    /// The parsed directory.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Reads and verifies one tensor's raw wire bytes.
    pub fn read_tensor_bytes(&mut self, name: &str) -> Result<Vec<u8>, StoreError> {
        let entry = self
            .manifest
            .entry(name)
            .ok_or_else(|| StoreError::UnknownTensor(name.to_string()))?
            .clone();
        self.source.seek(SeekFrom::Start(entry.offset))?;
        let mut page = vec![0u8; entry.comp_len as usize];
        self.source.read_exact(&mut page)?;
        let raw = dz_lossless::decompress(&page)?;
        if raw.len() as u64 != entry.raw_len || crc32(&raw) != entry.crc32 {
            return Err(StoreError::ChecksumMismatch {
                tensor: Some(entry.name),
            });
        }
        Ok(raw)
    }

    /// Reads one packed linear-layer delta (any method-zoo format).
    pub fn read_packed(&mut self, name: &str) -> Result<PackedLayer, StoreError> {
        let entry = self
            .manifest
            .entry(name)
            .ok_or_else(|| StoreError::UnknownTensor(name.to_string()))?;
        if entry.kind != TensorKind::PackedLinear {
            return Err(StoreError::Corrupt("tensor is not a packed linear"));
        }
        let raw = self.read_tensor_bytes(name)?;
        Ok(wire::layer_from_bytes(&raw)?)
    }

    /// Reads one dense FP32 rest tensor.
    pub fn read_dense(&mut self, name: &str) -> Result<Matrix, StoreError> {
        let entry = self
            .manifest
            .entry(name)
            .ok_or_else(|| StoreError::UnknownTensor(name.to_string()))?;
        if entry.kind != TensorKind::DenseRest {
            return Err(StoreError::Corrupt("tensor is not a dense rest tensor"));
        }
        let raw = self.read_tensor_bytes(name)?;
        let mut r = WireReader::new(&raw);
        let m = wire::decode_dense(&mut r)?;
        if !r.is_done() {
            return Err(StoreError::Corrupt("trailing bytes in dense tensor"));
        }
        Ok(m)
    }

    /// Reassembles the whole [`CompressedDelta`].
    pub fn read_delta(&mut self) -> Result<CompressedDelta, StoreError> {
        self.read_delta_with_stats().map(|(delta, _)| delta)
    }

    /// Reassembles the whole [`CompressedDelta`] through the pipelined
    /// fast path, reporting measured decode throughput.
    ///
    /// Large artifacts decode tensors concurrently on a small worker pool
    /// while the main thread streams the *next* tensor's compressed pages
    /// from the source — so disk reads overlap decompression and the load
    /// wait is `max(read, decode)` rather than their sum. Small artifacts
    /// decode inline (the page codec may still fan pages out for a single
    /// large tensor). Output is byte-identical to the serial per-tensor
    /// path either way.
    pub fn read_delta_with_stats(&mut self) -> Result<(CompressedDelta, DecodeStats), StoreError> {
        // dz-lint: allow(wall-clock, "decode wall time IS the measured quantity, reported as DecodeStats")
        let t_start = Instant::now();
        let entries: &[TensorEntry] = &self.manifest.tensors;
        let total_comp: u64 = entries.iter().map(|t| t.comp_len).sum();
        let workers = if total_comp >= PIPELINE_BYTE_THRESHOLD && entries.len() >= 2 {
            MAX_DECODE_WORKERS
                .min(entries.len())
                .min(std::thread::available_parallelism().map_or(1, |p| p.get()))
        } else {
            0
        };
        let mut read_s = 0.0f64;
        let decode_ns = AtomicU64::new(0);
        let mut decoded: Vec<Option<Result<DecodedTensor, StoreError>>> =
            (0..entries.len()).map(|_| None).collect();

        if workers == 0 {
            for (slot, entry) in decoded.iter_mut().zip(entries.iter()) {
                // dz-lint: allow(wall-clock, "measures real disk-read time for DecodeStats")
                let t0 = Instant::now();
                self.source.seek(SeekFrom::Start(entry.offset))?;
                let mut page = vec![0u8; entry.comp_len as usize];
                self.source.read_exact(&mut page)?;
                read_s += t0.elapsed().as_secs_f64();
                // dz-lint: allow(wall-clock, "measures real decode time for DecodeStats")
                let t1 = Instant::now();
                let result = decode_tensor(entry, &page, false);
                decode_ns.fetch_add(t1.elapsed().as_nanos() as u64, Ordering::Relaxed);
                *slot = Some(result);
            }
        } else {
            let results: Mutex<Vec<(usize, Result<DecodedTensor, StoreError>)>> =
                Mutex::new(Vec::with_capacity(entries.len()));
            let source = &mut self.source;
            std::thread::scope(|scope| -> Result<(), StoreError> {
                // Bounded channel: at most ~one tensor in flight per worker,
                // so the reader gets backpressure instead of buffering the
                // whole artifact ahead of the decoders — that bound is what
                // makes this a pipeline (read i+1 while decoding i) rather
                // than a read-everything-then-decode pass.
                let (tx, rx) = mpsc::sync_channel::<(usize, Vec<u8>)>(workers);
                let rx = Arc::new(Mutex::new(rx));
                for _ in 0..workers {
                    let rx = Arc::clone(&rx);
                    let results = &results;
                    let decode_ns = &decode_ns;
                    scope.spawn(move || loop {
                        let job = rx.lock().expect("rx lock").recv();
                        let Ok((i, page)) = job else { break };
                        // dz-lint: allow(wall-clock, "measures real worker decode time for DecodeStats")
                        let t0 = Instant::now();
                        let result = decode_tensor(&entries[i], &page, true);
                        decode_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        results.lock().expect("results lock").push((i, result));
                    });
                }
                // Main thread: stream tensor i+1's pages off the source
                // while the workers are still decoding tensor i.
                for (i, entry) in entries.iter().enumerate() {
                    // dz-lint: allow(wall-clock, "measures real streaming-read time for DecodeStats")
                    let t0 = Instant::now();
                    source.seek(SeekFrom::Start(entry.offset))?;
                    let mut page = vec![0u8; entry.comp_len as usize];
                    source.read_exact(&mut page)?;
                    read_s += t0.elapsed().as_secs_f64();
                    tx.send((i, page)).expect("decode workers alive");
                }
                drop(tx);
                Ok(())
            })?;
            for (i, result) in results.into_inner().expect("results lock") {
                decoded[i] = Some(result);
            }
        }

        let mut layers = BTreeMap::new();
        let mut rest = BTreeMap::new();
        for (entry, slot) in entries.iter().zip(decoded) {
            // Surface errors in tensor order so failures are deterministic
            // regardless of worker interleaving.
            match slot.expect("every tensor decoded or the read failed")? {
                DecodedTensor::Packed(cm) => {
                    layers.insert(entry.name.clone(), cm);
                }
                DecodedTensor::Dense(m) => {
                    rest.insert(entry.name.clone(), m);
                }
            }
        }
        let raw_bytes: u64 = entries.iter().map(|t| t.raw_len).sum();
        let stats = DecodeStats {
            tensors: entries.len(),
            compressed_bytes: total_comp,
            raw_bytes,
            read_s,
            decode_s: decode_ns.load(Ordering::Relaxed) as f64 / 1e9,
            wall_s: t_start.elapsed().as_secs_f64(),
            threads: workers.max(1),
        };
        Ok((
            CompressedDelta {
                layers,
                rest,
                codec: self.manifest.codec,
                config: self.manifest.config,
                report: self.manifest.report,
            },
            stats,
        ))
    }
}
