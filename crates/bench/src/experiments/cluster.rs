//! Cluster-scale serving sweep: replica count × routing policy ×
//! popularity skew.
//!
//! `bench-cluster` drives [`dz_serve::ClusterSim`] over Zipfian traces
//! with all three routing policies and reports cluster-level percentile
//! latency, warm-routing fraction, and (in an overloaded configuration
//! with SLO-aware admission control) goodput and shed counts. Alongside
//! the rendered markdown it emits a machine-readable
//! `BENCH_cluster.json`; the headline number is placement-aware routing
//! beating round-robin p99 latency under skewed delta popularity.

use super::{json_provenance, md_table, Report, Scale};
use dz_gpusim::shapes::ModelShape;
use dz_gpusim::spec::NodeSpec;
use dz_serve::cluster::{
    AdmissionConfig, ClusterConfig, ClusterReport, ClusterSim, LeastLoadedRouter,
    PlacementAwareRouter, PlacementPlan, RoundRobinRouter, Router,
};
use dz_serve::{
    CauseBreakdown, CostModel, DeltaZipConfig, SloClass, SloPolicy, TraceConfig, TraceTrack,
};
use dz_workload::{PopularityDist, Trace, TraceSpec};
use serde::Serialize;

const N_MODELS: usize = 24;
/// Routing policy ids swept by the experiment.
pub const POLICIES: [&str; 3] = ["round-robin", "least-loaded", "placement-aware"];

fn router_for(policy: &str, popularity: PopularityDist, n_replicas: usize) -> Box<dyn Router> {
    match policy {
        "round-robin" => Box::new(RoundRobinRouter::new()),
        "least-loaded" => Box::new(LeastLoadedRouter::new()),
        "placement-aware" => Box::new(PlacementAwareRouter::new(PlacementPlan::from_popularity(
            popularity, N_MODELS, n_replicas,
        ))),
        other => panic!("unknown policy {other}"),
    }
}

fn engine_config() -> DeltaZipConfig {
    DeltaZipConfig {
        max_concurrent_deltas: 4,
        max_batch: 32,
        host_capacity_deltas: Some(6),
        ..DeltaZipConfig::default()
    }
}

/// Runs one cluster cell (also reused by the `bench-smoke` perf gate).
pub fn run_cluster(
    policy: &str,
    n_replicas: usize,
    alpha: f64,
    rate_per_replica: f64,
    duration_s: f64,
    admission: Option<AdmissionConfig>,
) -> ClusterReport {
    run_cluster_traced(
        policy,
        n_replicas,
        alpha,
        rate_per_replica,
        duration_s,
        admission,
        None,
    )
    .0
}

/// [`run_cluster`] with optional event tracing: when `trace_cfg` is set
/// the front-end and every replica engine record trace lanes, returned
/// alongside the report.
#[allow(clippy::too_many_arguments)]
pub fn run_cluster_traced(
    policy: &str,
    n_replicas: usize,
    alpha: f64,
    rate_per_replica: f64,
    duration_s: f64,
    admission: Option<AdmissionConfig>,
    trace_cfg: Option<TraceConfig>,
) -> (ClusterReport, Vec<TraceTrack>) {
    let popularity = PopularityDist::Zipf { alpha };
    let trace = Trace::generate(TraceSpec {
        n_models: N_MODELS,
        arrival_rate: rate_per_replica * n_replicas as f64,
        duration_s,
        popularity,
        seed: 0xC105,
    });
    // The small node: GPU + host tiers hold only a fraction of the 24
    // deltas, so routing decides how often each replica re-loads from
    // disk (on the big A800 node every delta stays GPU-resident and all
    // policies converge).
    let cost = CostModel::new(NodeSpec::rtx3090_node(1), ModelShape::llama7b());
    let config = ClusterConfig {
        n_replicas,
        engine: engine_config(),
        admission,
        ..ClusterConfig::default()
    };
    let mut sim = ClusterSim::new(
        vec![cost; n_replicas],
        config,
        router_for(policy, popularity, n_replicas),
    );
    if let Some(cfg) = trace_cfg {
        sim = sim.with_tracing(cfg);
    }
    let report = sim.run(&trace);
    (report, sim.take_trace())
}

struct SweepRow {
    policy: &'static str,
    replicas: usize,
    alpha: f64,
    requests: usize,
    mean_e2e_s: f64,
    p50_e2e_s: f64,
    p99_e2e_s: f64,
    p99_ttft_s: f64,
    warm_frac: f64,
}

struct OverloadRow {
    policy: &'static str,
    offered: usize,
    served: usize,
    shed: usize,
    goodput: f64,
    interactive_p99_ttft_s: f64,
    attribution: CauseBreakdown,
}

/// The `bench-cluster` experiment. When `trace` is given, the most
/// interesting sweep cell (placement-aware, 4 replicas, zipf-1.5) runs
/// traced and its front-end + replica lanes land there as `cluster/*`.
pub fn bench_cluster(
    scale: Scale,
    out_dir: &std::path::Path,
    mut trace: Option<&mut Vec<TraceTrack>>,
) -> Report {
    let duration_s = match scale {
        Scale::Full => 150.0,
        Scale::Quick => 60.0,
    };
    let replica_counts = [2usize, 4];
    let alphas = [1.0f64, 1.5];

    let mut sweep = Vec::new();
    for &replicas in &replica_counts {
        for &alpha in &alphas {
            for policy in POLICIES {
                let traced_cell =
                    trace.is_some() && policy == "placement-aware" && replicas == 4 && alpha == 1.5;
                let cfg = traced_cell.then(TraceConfig::default);
                let (report, tracks) =
                    run_cluster_traced(policy, replicas, alpha, 0.6, duration_s, None, cfg);
                if let Some(sink) = trace.as_deref_mut() {
                    for mut track in tracks {
                        track.name = format!("cluster/{}", track.name);
                        sink.push(track);
                    }
                }
                let m = &report.merged;
                sweep.push(SweepRow {
                    policy,
                    replicas,
                    alpha,
                    requests: m.len(),
                    mean_e2e_s: m.mean_e2e(),
                    p50_e2e_s: m.e2e_percentile(0.5),
                    p99_e2e_s: m.e2e_percentile(0.99),
                    p99_ttft_s: m.ttft_percentile(0.99),
                    warm_frac: report.routing.warm_fraction(),
                });
            }
        }
    }

    // Overload arm: 3x the sustainable rate with SLO-aware admission
    // control — goodput and who gets shed, per policy.
    let slo = SloPolicy::tiered(N_MODELS, 4);
    let mut overload = Vec::new();
    for policy in POLICIES {
        let report = run_cluster(
            policy,
            4,
            1.5,
            3.0,
            duration_s,
            Some(AdmissionConfig::new(slo.clone())),
        );
        let served = report.merged.len();
        let shed = report.shed.len();
        let interactive = report.merged.subset("interactive".into(), |r| {
            slo.class_of(r.model) == SloClass::Interactive
        });
        overload.push(OverloadRow {
            policy,
            offered: served + shed,
            served,
            shed,
            goodput: report.goodput(),
            interactive_p99_ttft_s: interactive.ttft_percentile(0.99),
            attribution: report.merged.attribution(0.99),
        });
    }

    let mut body = String::from("Latency sweep (rate 0.6 req/s per replica):\n\n");
    body.push_str(&md_table(
        &[
            "router",
            "replicas",
            "zipf α",
            "requests",
            "mean E2E (s)",
            "p50 E2E (s)",
            "p99 E2E (s)",
            "p99 TTFT (s)",
            "warm-routed",
        ],
        &sweep
            .iter()
            .map(|r| {
                vec![
                    r.policy.to_string(),
                    r.replicas.to_string(),
                    format!("{:.1}", r.alpha),
                    r.requests.to_string(),
                    format!("{:.1}", r.mean_e2e_s),
                    format!("{:.1}", r.p50_e2e_s),
                    format!("{:.1}", r.p99_e2e_s),
                    format!("{:.1}", r.p99_ttft_s),
                    format!("{:.0}%", r.warm_frac * 100.0),
                ]
            })
            .collect::<Vec<_>>(),
    ));
    body.push_str(
        "\nOverload arm (3.0 req/s per replica, 4 replicas, zipf-1.5, SLO admission):\n\n",
    );
    body.push_str(&md_table(
        &[
            "router",
            "offered",
            "served",
            "shed",
            "goodput",
            "interactive p99 TTFT (s)",
        ],
        &overload
            .iter()
            .map(|r| {
                vec![
                    r.policy.to_string(),
                    r.offered.to_string(),
                    r.served.to_string(),
                    r.shed.to_string(),
                    format!("{:.2}", r.goodput),
                    format!("{:.1}", r.interactive_p99_ttft_s),
                ]
            })
            .collect::<Vec<_>>(),
    ));
    body.push_str("\nOverload p99 attribution (share of tail-request e2e per cause):\n\n");
    let mut attr_header = vec!["router"];
    attr_header.extend(dz_serve::CAUSE_NAMES);
    body.push_str(&md_table(
        &attr_header,
        &overload
            .iter()
            .map(|r| {
                let mut row = vec![r.policy.to_string()];
                for share in r.attribution.tail_share() {
                    row.push(format!("{:.0}%", share * 100.0));
                }
                row
            })
            .collect::<Vec<_>>(),
    ));
    match write_json(&sweep, &overload, duration_s, out_dir) {
        Ok(path) => body.push_str(&format!("\njson: {path}\n")),
        Err(e) => body.push_str(&format!("\njson write failed: {e}\n")),
    }
    Report {
        id: "bench-cluster",
        title: "Cluster routing: replicas x policy x popularity skew",
        body,
    }
}

/// Hand-rolled JSON (matching the other emitters' style).
fn write_json(
    sweep: &[SweepRow],
    overload: &[OverloadRow],
    duration_s: f64,
    dir: &std::path::Path,
) -> std::io::Result<String> {
    std::fs::create_dir_all(dir)?;
    let mut json = String::from("{\n");
    json.push_str(&json_provenance(
        "bench-cluster",
        &[
            ("n_models", N_MODELS.to_string()),
            ("duration_s", format!("{duration_s:.1}")),
            ("sweep_rate_per_replica", "0.6".into()),
            ("overload_rate_per_replica", "3.0".into()),
            ("seed", "49413".into()),
        ],
    ));
    json.push_str("  \"sweep\": [\n");
    for (i, r) in sweep.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"router\": \"{}\", \"replicas\": {}, \"zipf_alpha\": {:.1}, \
             \"requests\": {}, \"mean_e2e_s\": {:.3}, \"p50_e2e_s\": {:.3}, \
             \"p99_e2e_s\": {:.3}, \"p99_ttft_s\": {:.3}, \"warm_routed_frac\": {:.4}}}{}\n",
            r.policy,
            r.replicas,
            r.alpha,
            r.requests,
            r.mean_e2e_s,
            r.p50_e2e_s,
            r.p99_e2e_s,
            r.p99_ttft_s,
            r.warm_frac,
            if i + 1 == sweep.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n  \"overload\": [\n");
    for (i, r) in overload.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"router\": \"{}\", \"replicas\": 4, \"zipf_alpha\": 1.5, \
             \"offered\": {}, \"served\": {}, \"shed\": {}, \"goodput\": {:.4}, \
             \"interactive_p99_ttft_s\": {:.3}, \"p99_attribution\": {}}}{}\n",
            r.policy,
            r.offered,
            r.served,
            r.shed,
            r.goodput,
            r.interactive_p99_ttft_s,
            r.attribution.to_value().to_json(),
            if i + 1 == overload.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = dir.join("BENCH_cluster.json");
    std::fs::write(&path, json)?;
    Ok(path.display().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_aware_beats_round_robin_p99_under_skew() {
        // The acceptance gate: on Zipf >= 1.0 popularity, placement-aware
        // routing must beat round-robin tail latency at every replica
        // count the sweep covers.
        for replicas in [2usize, 4] {
            for alpha in [1.0f64, 1.5] {
                let rr = run_cluster("round-robin", replicas, alpha, 0.6, 60.0, None);
                let pa = run_cluster("placement-aware", replicas, alpha, 0.6, 60.0, None);
                assert_eq!(rr.merged.len(), pa.merged.len());
                let (p99_rr, p99_pa) = (
                    rr.merged.e2e_percentile(0.99),
                    pa.merged.e2e_percentile(0.99),
                );
                assert!(
                    p99_pa < p99_rr,
                    "placement-aware p99 {p99_pa} must beat round-robin {p99_rr} \
                     (replicas={replicas}, alpha={alpha})"
                );
            }
        }
    }

    #[test]
    fn overload_admission_keeps_goodput_meaningful() {
        let slo = SloPolicy::tiered(N_MODELS, 4);
        let admission = AdmissionConfig {
            defer_depth: 8,
            defer_s: 5.0,
            max_defers: 2,
            shed_depth: 16,
            ..AdmissionConfig::new(slo)
        };
        let report = run_cluster("least-loaded", 2, 1.5, 3.0, 40.0, Some(admission));
        // Overdriven 3x: something must be shed, but most load is served.
        assert!(report.goodput() < 1.0, "overload must shed");
        assert!(report.goodput() > 0.5, "admission must not collapse");
    }
}
