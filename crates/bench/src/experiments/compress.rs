//! The delta-compression method-zoo sweep: codec × bit budget →
//! quality / ratio / serving-cost cells.
//!
//! `bench-compress` trains one model-zoo family (base + FMT mixture),
//! compresses the delta with every codec in
//! [`dz_compress::codec::codec_zoo`] (each at two bit budgets), and
//! measures per cell:
//!
//! * mean task accuracy on the family's three tasks and the drop vs the
//!   FP16 fine-tune, plus perplexity on the shared corpus,
//! * compression ratio three ways — whole-model (raw), delta-only
//!   (packed), and packed-plus-lossless,
//! * simulated serving cost on the capacity-constrained RTX-3090 / 7B
//!   node: the measured packed ratio is projected to 7B-scale artifact
//!   bytes via [`CostModel::with_delta_bytes`], and a fixed trace is
//!   replayed so per-request load-wait p99 (the cold-load tail) and TTFT
//!   p99 reflect each codec's real swap-in bytes.
//!
//! Alongside the rendered markdown it emits `BENCH_compress.json`.

use super::quality::{family_tasks, Zoo};
use super::{json_provenance, md_table, Report, Scale};
use dz_compress::calib::calibration_set;
use dz_compress::codec::{BitDeltaCodec, DeltaCodec, DeltaComeCodec, SparseGptCodec};
use dz_gpusim::shapes::ModelShape;
use dz_gpusim::spec::NodeSpec;
use dz_model::eval::{perplexity, task_accuracy};
use dz_model::tasks::Corpus;
use dz_model::transformer::Params;
use dz_model::zoo::preset;
use dz_serve::{CostModel, DeltaZipConfig, DeltaZipEngine, Engine};
use dz_tensor::Rng;
use dz_workload::{PopularityDist, Trace, TraceSpec};
use std::path::Path;

/// The family the sweep runs on (d_model 64: wide enough that 1-bit
/// packing clears 8x even with per-row scales).
const FAMILY: &str = "llama-tiny-m";

/// One sweep cell.
pub struct CompressCell {
    /// Codec id name (`sparsegpt-star`, `bitdelta`, `delta-come`).
    pub codec: &'static str,
    /// Budget-bearing label, e.g. `bitdelta-1bit/row`.
    pub label: String,
    /// Mean accuracy over the family's tasks.
    pub acc_mean: f64,
    /// Accuracy drop vs the FP16 fine-tune (positive = worse).
    pub acc_drop: f64,
    /// Perplexity on the shared corpus.
    pub ppl: f64,
    /// Whole-model compression ratio (packed linears + FP16 rest).
    pub raw_ratio: f64,
    /// Delta-only packed ratio (what swap bytes scale with).
    pub packed_ratio: f64,
    /// Packed ratio after the lossless stage.
    pub lossless_ratio: f64,
    /// Projected artifact bytes at 7B scale.
    pub bytes_7b: f64,
    /// p99 of per-request load waits on the 3090/7B replay (cold-load
    /// tail).
    pub load_p99_s: f64,
    /// p99 TTFT on the same replay.
    pub ttft_p99_s: f64,
}

/// The codec zoo with the lossless stage enabled (so the sweep reports
/// post-lossless ratios): every codec at two bit budgets.
fn lossless_zoo() -> Vec<Box<dyn DeltaCodec>> {
    let mut sg4 = SparseGptCodec::starred(4);
    sg4.config.lossless = true;
    let mut sg2 = SparseGptCodec::starred(2);
    sg2.config.lossless = true;
    let mut bd_matrix = BitDeltaCodec::per_matrix();
    bd_matrix.lossless = true;
    let mut bd_row = BitDeltaCodec::per_row();
    bd_row.lossless = true;
    let mut dc_low = DeltaComeCodec::low_budget();
    dc_low.lossless = true;
    let mut dc_high = DeltaComeCodec::high_budget();
    dc_high.lossless = true;
    vec![
        Box::new(sg4),
        Box::new(sg2),
        Box::new(bd_matrix),
        Box::new(bd_row),
        Box::new(dc_low),
        Box::new(dc_high),
    ]
}

/// Replays a fixed trace on the RTX-3090 / 7B node with the given
/// per-delta artifact bytes; host capacity is tight so the tail of the
/// load waits is dominated by disk (cold) swap-ins.
fn simulate_swaps(bytes_7b: f64, scale: Scale) -> (f64, f64) {
    let duration_s = match scale {
        Scale::Full => 120.0,
        Scale::Quick => 60.0,
    };
    let trace = Trace::generate(TraceSpec {
        n_models: 12,
        arrival_rate: 0.5,
        duration_s,
        popularity: PopularityDist::Zipf { alpha: 1.2 },
        seed: 0xC0DEC,
    });
    let cost =
        CostModel::new(NodeSpec::rtx3090_node(1), ModelShape::llama7b()).with_delta_bytes(bytes_7b);
    let config = DeltaZipConfig {
        max_concurrent_deltas: 4,
        max_batch: 32,
        host_capacity_deltas: Some(4),
        ..DeltaZipConfig::default()
    };
    let metrics = DeltaZipEngine::new(cost, config).run(&trace);
    (metrics.load_percentile(0.99), metrics.ttft_percentile(0.99))
}

/// Runs the sweep and returns its cells (shared by the experiment and the
/// acceptance tests).
pub fn sweep_cells(zoo: &mut Zoo, scale: Scale) -> (Vec<CompressCell>, f64, f64) {
    let p = preset(FAMILY).expect("preset exists");
    let base = zoo.base(&p);
    let tuned = zoo.fmt_mixture(&p);
    let task_list = family_tasks(FAMILY);
    let corpus = Corpus::new(p.config.max_seq);
    let calib = calibration_set(&corpus, 12, 0xCA11B);
    let n_eval = 200;
    let mut eval_rng = Rng::seeded(0xE7A1);
    let ppl_seqs: Vec<Vec<usize>> = (0..20).map(|_| corpus.sample(&mut eval_rng)).collect();
    let acc_of = |m: &Params| -> f64 {
        task_list
            .iter()
            .map(|t| task_accuracy(m, t.as_ref(), n_eval, &mut Rng::seeded(0xE7A1)))
            .sum::<f64>()
            / task_list.len() as f64
    };
    let fp16_acc = acc_of(&tuned);
    let fp16_ppl = perplexity(&tuned, &ppl_seqs);

    let linear_bytes_7b = ModelShape::llama7b().fp16_bytes();
    let mut cells = Vec::new();
    for codec in lossless_zoo() {
        let (cd, rec) = codec.compress(&base, &tuned, &calib);
        let acc = acc_of(&rec);
        let packed_ratio = cd.report.delta_ratio();
        let lossless_ratio = cd.report.lossless_delta_ratio().unwrap_or(packed_ratio);
        // Projection to 7B: at scale nearly all bytes are linear-layer
        // deltas, so the artifact shrinks by the measured packed ratio.
        let bytes_7b = linear_bytes_7b / packed_ratio;
        let (load_p99_s, ttft_p99_s) = simulate_swaps(bytes_7b, scale);
        cells.push(CompressCell {
            codec: cd.codec.name(),
            label: codec.label(),
            acc_mean: acc,
            acc_drop: fp16_acc - acc,
            ppl: perplexity(&rec, &ppl_seqs),
            raw_ratio: cd.report.model_ratio(),
            packed_ratio,
            lossless_ratio,
            bytes_7b,
            load_p99_s,
            ttft_p99_s,
        });
    }
    (cells, fp16_acc, fp16_ppl)
}

/// The `bench-compress` experiment.
pub fn bench_compress(zoo: &mut Zoo, scale: Scale, out_dir: &Path) -> Report {
    let (cells, fp16_acc, fp16_ppl) = sweep_cells(zoo, scale);
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.label.clone(),
                format!("{:.1}", c.acc_mean * 100.0),
                format!("{:+.1}", -c.acc_drop * 100.0),
                format!("{:.2}", c.ppl),
                format!("{:.1}x", c.raw_ratio),
                format!("{:.1}x", c.packed_ratio),
                format!("{:.1}x", c.lossless_ratio),
                format!("{:.1}", c.load_p99_s),
                format!("{:.1}", c.ttft_p99_s),
            ]
        })
        .collect();
    let mut body = format!(
        "Family {FAMILY}; FP16 fine-tune: accuracy {:.1}%, ppl {:.2}. \
         Cold-load figures: fixed 12-model Zipf-1.2 replay on one RTX-3090 \
         serving 7B, artifact bytes projected from each codec's packed \
         ratio.\n\n",
        fp16_acc * 100.0,
        fp16_ppl
    );
    body.push_str(&md_table(
        &[
            "codec@budget",
            "acc %",
            "Δacc pts",
            "ppl",
            "raw",
            "packed",
            "+lossless",
            "load p99 (s)",
            "TTFT p99 (s)",
        ],
        &rows,
    ));
    match write_json(&cells, fp16_acc, fp16_ppl, out_dir) {
        Ok(path) => body.push_str(&format!("\njson: {path}\n")),
        Err(e) => body.push_str(&format!("\njson write failed: {e}\n")),
    }
    Report {
        id: "bench-compress",
        title: "Delta-compression method zoo: quality x ratio x swap latency",
        body,
    }
}

/// Hand-rolled JSON (matching the other BENCH_* artifacts).
fn write_json(
    cells: &[CompressCell],
    fp16_acc: f64,
    fp16_ppl: f64,
    dir: &Path,
) -> std::io::Result<String> {
    std::fs::create_dir_all(dir)?;
    let mut json = String::from("{\n");
    json.push_str(&json_provenance(
        "bench-compress",
        &[("family", format!("\"{FAMILY}\""))],
    ));
    json.push_str(&format!(
        "  \"family\": \"{FAMILY}\",\n  \"fp16_acc\": {fp16_acc:.4},\n  \
         \"fp16_ppl\": {fp16_ppl:.4},\n  \"cells\": [\n"
    ));
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"codec\": \"{}\", \"budget\": \"{}\", \"acc\": {:.4}, \
             \"acc_drop\": {:.4}, \"ppl\": {:.4}, \"raw_ratio\": {:.3}, \
             \"packed_ratio\": {:.3}, \"lossless_ratio\": {:.3}, \
             \"bytes_7b\": {:.0}, \"cold_load_p99_s\": {:.4}, \
             \"ttft_p99_s\": {:.4}}}{}\n",
            c.codec,
            c.label,
            c.acc_mean,
            c.acc_drop,
            c.ppl,
            c.raw_ratio,
            c.packed_ratio,
            c.lossless_ratio,
            c.bytes_7b,
            c.load_p99_s,
            c.ttft_p99_s,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = dir.join("BENCH_compress.json");
    std::fs::write(&path, json)?;
    Ok(path.display().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_meets_the_acceptance_gate() {
        // ≥3 codecs x ≥2 budgets, BitDelta ≥8x packed with bounded drop
        // vs the 4-bit starred pipeline, and smaller artifacts must load
        // no slower.
        let mut zoo = Zoo::new(Scale::Quick);
        let (cells, fp16_acc, _) = sweep_cells(&mut zoo, Scale::Quick);
        assert!(fp16_acc > 0.5, "fine-tune must learn: {fp16_acc}");
        let codecs: std::collections::BTreeSet<&str> = cells.iter().map(|c| c.codec).collect();
        assert!(codecs.len() >= 3, "{codecs:?}");
        for codec in &codecs {
            let budgets = cells.iter().filter(|c| &c.codec == codec).count();
            assert!(budgets >= 2, "{codec} swept at {budgets} budget(s)");
        }
        let sgpt4 = cells
            .iter()
            .find(|c| c.label == "sparsegpt-4bit*")
            .expect("4-bit starred cell");
        for bit in cells.iter().filter(|c| c.codec == "bitdelta") {
            assert!(
                bit.packed_ratio >= 8.0,
                "{}: {}",
                bit.label,
                bit.packed_ratio
            );
            assert!(
                bit.acc_mean >= sgpt4.acc_mean - 0.25,
                "{}: acc {} vs 4bit* {}",
                bit.label,
                bit.acc_mean,
                sgpt4.acc_mean
            );
            // ~8x fewer bytes must not load slower on the same replay.
            assert!(
                bit.load_p99_s <= sgpt4.load_p99_s,
                "{}: load p99 {} vs 4bit* {}",
                bit.label,
                bit.load_p99_s,
                sgpt4.load_p99_s
            );
        }
    }

    #[test]
    fn simulated_swap_tail_grows_with_artifact_bytes() {
        let (small_load, small_ttft) = simulate_swaps(1e8, Scale::Quick);
        let (big_load, big_ttft) = simulate_swaps(2e9, Scale::Quick);
        assert!(small_load < big_load, "{small_load} vs {big_load}");
        assert!(small_ttft <= big_ttft, "{small_ttft} vs {big_ttft}");
    }
}
