//! The CI perf-regression smoke run: small, seeded, fast (<60 s).
//!
//! `bench-smoke` measures one representative number from each
//! performance-critical subsystem:
//!
//! * `decode_mb_s` — single-threaded LUT decode throughput on the shared
//!   packed-delta corpus (wall-clock; the baseline bound is generous to
//!   absorb runner variance),
//! * `cluster_p99_e2e_s` — placement-aware cluster p99 on a fixed-seed
//!   trace (simulated time: bit-for-bit deterministic),
//! * `swap_overlap_frac`, `swap_warm_ttft_p99_s`, `swap_stall_ratio` —
//!   the overlapped-swap pipeline on a fixed-seed churn trace: how much
//!   load time hides behind decode, the warm-request TTFT tail, and the
//!   overlapped-vs-serialized total-stall ratio (simulated:
//!   deterministic),
//! * `chaos_recovery_s`, `chaos_churn_p99_inflation` — the chaos
//!   recovery cell: how fast a placement-aware fleet re-attains its SLO
//!   after a scripted replica crash and how far the churn-window p99
//!   inflates over the healthy baseline (simulated: deterministic),
//! * `fleet_1000_replica_wall_s`, `fleet_p2c_p99_s` — the fleet-scale
//!   event core: wall clock of a 1000-replica 100k-request p2c cell
//!   (generous bound) and its simulated p99 (deterministic, tight
//!   bounds),
//! * `toppings_mixed_goodput`, `toppings_mixed_ttft_p99_s` — the
//!   mixed-kind toppings pool on the interleaved variant catalog:
//!   SLO-attaining requests per second of makespan and the TTFT tail
//!   (simulated: deterministic),
//! * `*_packed_ratio` — delta-only packed compression ratio of each
//!   method-zoo codec on a fixed-seed synthetic model pair (pure
//!   arithmetic: deterministic).
//!
//! It emits `BENCH_smoke.json`, and `exp bench-smoke --check
//! ci/perf-baseline.json` compares the fresh numbers against the
//! checked-in per-metric bounds, exiting nonzero on any regression — the
//! CI perf gate.

use super::cluster::run_cluster_traced;
use super::codec::packed_delta_like;
use super::swap::{run_swap, run_swap_traced, warm_ttft_p99};
use super::toppings::{goodput, run_toppings_traced};
use super::{json_provenance, md_table, Report, BENCH_SCHEMA_VERSION};
use dz_compress::codec::{BitDeltaCodec, DeltaCodec, DeltaComeCodec, SparseGptCodec};
use dz_model::tasks::Corpus;
use dz_model::transformer::{test_config, Params};
use dz_serve::{TraceConfig, TraceTrack};
use dz_tensor::{Matrix, Rng};
use serde::value::Value;
use std::path::Path;
use std::time::Instant;

/// The smoke run's measurements, in report order.
pub struct SmokeMetrics {
    /// `(name, value)` pairs.
    pub entries: Vec<(&'static str, f64)>,
}

impl SmokeMetrics {
    /// Looks a metric up by name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.entries
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }
}

/// Fixed-seed synthetic `(base, finetuned)` pair: an initialized tiny
/// transformer plus a small delta-like perturbation. No training — the
/// ratio metrics depend only on tensor shapes and value distributions, so
/// this keeps the smoke run fast and bit-deterministic.
fn synthetic_pair() -> (Params, Params) {
    let cfg = test_config();
    let mut rng = Rng::seeded(0x50_0E);
    let base = Params::init(cfg, &mut rng);
    let mut tuned = base.clone();
    for m in tuned.tensors_mut() {
        let bump = Matrix::randn(m.rows(), m.cols(), 0.005, &mut rng);
        m.add_assign(&bump);
    }
    (base, tuned)
}

/// Runs the smoke measurements.
pub fn measure() -> SmokeMetrics {
    measure_traced(None)
}

/// [`measure`] with optional event tracing: when `trace` is given, the
/// cluster cell's lanes and the overlapped swap run's lane land there as
/// `smoke/*`. Tracing never perturbs the measured numbers (the
/// instrumentation is a no-op on the metrics path — pinned by a test in
/// `dz-serve`).
pub fn measure_traced(mut trace: Option<&mut Vec<TraceTrack>>) -> SmokeMetrics {
    // 1. Decode throughput: 2 MiB packed-delta corpus, LUT single-thread,
    //    best of 3.
    let corpus = packed_delta_like(2 << 20, 7);
    let compressed = dz_lossless::compress(&corpus);
    let mut best = f64::MAX;
    for _ in 0..3 {
        let t0 = Instant::now();
        dz_lossless::decompress_with_threads(&compressed, 1).expect("decode");
        best = best.min(t0.elapsed().as_secs_f64());
    }
    let decode_mb_s = corpus.len() as f64 / best / 1e6;

    // 2. Cluster tail latency: one placement-aware cell, fixed seed.
    let trace_cfg = trace.as_ref().map(|_| TraceConfig::default());
    let (report, tracks) =
        run_cluster_traced("placement-aware", 2, 1.5, 0.6, 40.0, None, trace_cfg);
    if let Some(sink) = trace.as_deref_mut() {
        for mut track in tracks {
            track.name = format!("smoke/{}", track.name);
            sink.push(track);
        }
    }
    let cluster_p99 = report.merged.e2e_percentile(0.99);

    // 3. Swap pipeline: overlapped vs serialized on the fixed-seed churn
    //    trace (simulated time: deterministic).
    let (overlapped, swap_log) = run_swap_traced("overlapped", 40.0, trace_cfg);
    if let (Some(sink), Some(log)) = (trace.as_deref_mut(), swap_log) {
        sink.push(TraceTrack {
            name: "smoke/swap-overlapped".into(),
            log,
        });
    }
    let serialized = run_swap("serialized", 40.0);
    let swap_overlap_frac = overlapped.swap.overlap_fraction();
    let swap_warm_ttft = warm_ttft_p99(&overlapped);
    let swap_stall_ratio = if serialized.swap.stall_s > 0.0 {
        overlapped.swap.stall_s / serialized.swap.stall_s
    } else {
        0.0
    };

    // 4. Toppings pool: the mixed-kind batch on the interleaved variant
    //    catalog (simulated time: deterministic).
    let (mixed, toppings_log) = run_toppings_traced("mixed", 40.0, trace_cfg);
    if let (Some(sink), Some(log)) = (trace, toppings_log) {
        sink.push(TraceTrack {
            name: "smoke/toppings-mixed".into(),
            log,
        });
    }
    let toppings_goodput = goodput(&mixed);
    let toppings_ttft = mixed.ttft_percentile(0.99);

    // 5. Chaos recovery: placement-aware fleet after a scripted replica
    //    crash (simulated time: deterministic). Recovery seconds and
    //    churn-window p99 inflation over the healthy baseline.
    let (chaos_recovery_s, chaos_inflation) = super::chaos::smoke_chaos_metrics();

    // 6. Fleet-scale routing: 1000-replica p2c cell at quick scale. The
    //    p99 is simulated (deterministic, tight bounds); the wall is the
    //    event core's real cost and bounded generously.
    let (fleet_wall_s, fleet_p2c_p99) = super::fleet::smoke_fleet_metrics();

    // 7. Codec packed ratios on the synthetic pair.
    let (base, tuned) = synthetic_pair();
    let calib = dz_compress::calib::calibration_set(&Corpus::new(base.config.max_seq), 4, 0xCA11B);
    let ratio_of = |codec: &dyn DeltaCodec| -> f64 {
        let (cd, _) = codec.compress(&base, &tuned, &calib);
        cd.report.delta_ratio()
    };
    let sgpt4 = ratio_of(&SparseGptCodec::starred(4));
    let bitdelta = ratio_of(&BitDeltaCodec::per_row());
    let deltacome = ratio_of(&DeltaComeCodec::low_budget());

    SmokeMetrics {
        entries: vec![
            ("decode_mb_s", decode_mb_s),
            ("cluster_p99_e2e_s", cluster_p99),
            ("swap_overlap_frac", swap_overlap_frac),
            ("swap_warm_ttft_p99_s", swap_warm_ttft),
            ("swap_stall_ratio", swap_stall_ratio),
            ("chaos_recovery_s", chaos_recovery_s),
            ("chaos_churn_p99_inflation", chaos_inflation),
            ("fleet_1000_replica_wall_s", fleet_wall_s),
            ("fleet_p2c_p99_s", fleet_p2c_p99),
            ("toppings_mixed_goodput", toppings_goodput),
            ("toppings_mixed_ttft_p99_s", toppings_ttft),
            ("sparsegpt4_packed_ratio", sgpt4),
            ("bitdelta_packed_ratio", bitdelta),
            ("deltacome_packed_ratio", deltacome),
        ],
    }
}

/// The `bench-smoke` experiment: measures, renders, and writes
/// `BENCH_smoke.json`.
pub fn bench_smoke(out_dir: &Path, trace: Option<&mut Vec<TraceTrack>>) -> (Report, SmokeMetrics) {
    let metrics = measure_traced(trace);
    let rows: Vec<Vec<String>> = metrics
        .entries
        .iter()
        .map(|(n, v)| vec![n.to_string(), format!("{v:.3}")])
        .collect();
    let mut body = md_table(&["metric", "value"], &rows);
    match write_json(&metrics, out_dir) {
        Ok(path) => body.push_str(&format!("\njson: {path}\n")),
        Err(e) => body.push_str(&format!("\njson write failed: {e}\n")),
    }
    (
        Report {
            id: "bench-smoke",
            title: "CI perf smoke: decode throughput, cluster p99, codec ratios",
            body,
        },
        metrics,
    )
}

fn write_json(metrics: &SmokeMetrics, dir: &Path) -> std::io::Result<String> {
    std::fs::create_dir_all(dir)?;
    let mut json = String::from("{\n");
    json.push_str(&json_provenance(
        "bench-smoke",
        &[
            ("corpus_bytes", (2u64 << 20).to_string()),
            ("cluster", "\"placement-aware x2, zipf-1.5, 40s\"".into()),
            ("swap", "\"overlapped vs serialized, 40s\"".into()),
            (
                "chaos",
                format!(
                    "\"placement-aware recovery, quick scenario, seed {}\"",
                    super::chaos::CHAOS_SEED
                ),
            ),
            (
                "fleet",
                format!(
                    "\"1000-replica p2c, quick scale, seed {}\"",
                    super::fleet::FLEET_SEED
                ),
            ),
            (
                "toppings",
                "\"mixed pool, interleaved catalog, 40s\"".into(),
            ),
        ],
    ));
    json.push_str("  \"metrics\": {\n");
    for (i, (name, value)) in metrics.entries.iter().enumerate() {
        json.push_str(&format!(
            "    \"{name}\": {value:.4}{}\n",
            if i + 1 == metrics.entries.len() {
                ""
            } else {
                ","
            }
        ));
    }
    json.push_str("  }\n}\n");
    let path = dir.join("BENCH_smoke.json");
    std::fs::write(&path, json)?;
    Ok(path.display().to_string())
}

/// The `schema_version` a baseline file declares, if any (`None` for
/// pre-versioned baselines, which [`check_baseline`] still accepts).
pub fn baseline_schema_version(baseline_json: &str) -> Option<u64> {
    Value::parse_json(baseline_json)
        .ok()?
        .get("schema_version")?
        .as_f64()
        .map(|v| v as u64)
}

/// Compares measured metrics against a checked-in baseline file.
///
/// The baseline is a JSON object `{"schema_version": 1?, "metrics":
/// {"<name>": {"min": x?, "max": y?}, ...}}`: a metric regresses when it
/// falls below its `min` (throughput/ratio-style metrics) or above its
/// `max` (latency-style metrics). A missing `schema_version` is
/// tolerated (pre-versioned baselines); a version newer than
/// [`BENCH_SCHEMA_VERSION`] is an error, since the bounds may not mean
/// what this binary thinks they mean. Returns the list of violations
/// (empty = gate passes).
pub fn check_baseline(metrics: &SmokeMetrics, baseline_json: &str) -> Result<Vec<String>, String> {
    let root = Value::parse_json(baseline_json).map_err(|e| format!("baseline parse: {e}"))?;
    if let Some(v) = root.get("schema_version").and_then(Value::as_f64) {
        let v = v as u64;
        if v > BENCH_SCHEMA_VERSION {
            return Err(format!(
                "baseline schema_version {v} is newer than supported {BENCH_SCHEMA_VERSION}"
            ));
        }
    }
    let Some(Value::Object(entries)) = root.get("metrics") else {
        return Err("baseline has no `metrics` object".into());
    };
    let mut failures = Vec::new();
    for (name, bounds) in entries {
        let Some(measured) = metrics.get(name) else {
            failures.push(format!("metric `{name}` missing from smoke run"));
            continue;
        };
        let min = bounds.get("min").and_then(Value::as_f64);
        let max = bounds.get("max").and_then(Value::as_f64);
        if min.is_none() && max.is_none() {
            return Err(format!("baseline metric `{name}` has neither min nor max"));
        }
        if let Some(lo) = min {
            if measured < lo {
                failures.push(format!("{name}: {measured:.3} below baseline min {lo:.3}"));
            }
        }
        if let Some(hi) = max {
            if measured > hi {
                failures.push(format!("{name}: {measured:.3} above baseline max {hi:.3}"));
            }
        }
    }
    Ok(failures)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixed_metrics() -> SmokeMetrics {
        SmokeMetrics {
            entries: vec![("decode_mb_s", 100.0), ("cluster_p99_e2e_s", 50.0)],
        }
    }

    #[test]
    fn baseline_within_bounds_passes() {
        let baseline = r#"{"metrics": {
            "decode_mb_s": {"min": 50.0},
            "cluster_p99_e2e_s": {"max": 60.0}
        }}"#;
        assert!(check_baseline(&fixed_metrics(), baseline)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn regressions_are_reported_per_metric() {
        let baseline = r#"{"metrics": {
            "decode_mb_s": {"min": 200.0},
            "cluster_p99_e2e_s": {"max": 10.0},
            "missing_metric": {"min": 1.0}
        }}"#;
        let failures = check_baseline(&fixed_metrics(), baseline).unwrap();
        assert_eq!(failures.len(), 3, "{failures:?}");
        assert!(failures.iter().any(|f| f.contains("below baseline min")));
        assert!(failures.iter().any(|f| f.contains("above baseline max")));
        assert!(failures
            .iter()
            .any(|f| f.contains("missing from smoke run")));
    }

    #[test]
    fn malformed_baseline_is_an_error_not_a_pass() {
        assert!(check_baseline(&fixed_metrics(), "not json").is_err());
        assert!(check_baseline(&fixed_metrics(), r#"{"no_metrics": 1}"#).is_err());
        let no_bounds = r#"{"metrics": {"decode_mb_s": {}}}"#;
        assert!(check_baseline(&fixed_metrics(), no_bounds).is_err());
    }

    #[test]
    fn baseline_schema_version_is_tolerated_and_gated() {
        // Current and pre-versioned baselines both pass.
        let current = r#"{"schema_version": 1, "metrics": {"decode_mb_s": {"min": 50.0}}}"#;
        assert!(check_baseline(&fixed_metrics(), current)
            .unwrap()
            .is_empty());
        assert_eq!(baseline_schema_version(current), Some(1));
        let unversioned = r#"{"metrics": {"decode_mb_s": {"min": 50.0}}}"#;
        assert!(check_baseline(&fixed_metrics(), unversioned)
            .unwrap()
            .is_empty());
        assert_eq!(baseline_schema_version(unversioned), None);
        // A future schema is an error, not a silent pass.
        let future = r#"{"schema_version": 99, "metrics": {"decode_mb_s": {"min": 50.0}}}"#;
        let err = check_baseline(&fixed_metrics(), future).unwrap_err();
        assert!(err.contains("schema_version 99"), "{err}");
    }

    #[test]
    fn synthetic_ratio_metrics_are_deterministic() {
        // The gate only works if re-running produces identical ratios.
        let a = measure_ratios_only();
        let b = measure_ratios_only();
        assert_eq!(a, b);
        // And the ratios are in sane ranges.
        assert!(a.iter().all(|&r| r > 2.0 && r < 64.0), "{a:?}");
    }

    fn measure_ratios_only() -> Vec<f64> {
        let (base, tuned) = synthetic_pair();
        let calib =
            dz_compress::calib::calibration_set(&Corpus::new(base.config.max_seq), 4, 0xCA11B);
        [
            &SparseGptCodec::starred(4) as &dyn DeltaCodec,
            &BitDeltaCodec::per_row(),
            &DeltaComeCodec::low_budget(),
        ]
        .into_iter()
        .map(|c| c.compress(&base, &tuned, &calib).0.report.delta_ratio())
        .collect()
    }
}
