//! Figure 1: the bursty multi-variant invocation pattern.

use super::Report;
use dz_workload::stats::{idle_fraction, invocation_matrix, render_heatmap};
use dz_workload::{PopularityDist, Trace, TraceSpec};

/// Figure 1: invocation counts per 5-minute window for 20 variants over a
/// week-long Azure-like trace.
pub fn fig1() -> Report {
    let trace = Trace::generate(TraceSpec {
        n_models: 20,
        arrival_rate: 0.4,
        duration_s: 7.0 * 24.0 * 3600.0 / 100.0, // Scaled week (keeps output readable).
        popularity: PopularityDist::AzureLike,
        seed: 0xF161,
    });
    let matrix = invocation_matrix(&trace, 300.0 / 100.0 * 15.0); // Scaled 5-min windows.
    let idle = idle_fraction(&matrix);
    let mut body = String::new();
    body.push_str("Per-model request heat map (rows = models, columns = time windows):\n\n```\n");
    body.push_str(&render_heatmap(&matrix));
    body.push_str("```\n");
    body.push_str(&format!(
        "\nIdle (model, window) cells: {:.1}% — the dedicated-GPU waste the paper motivates with.\n",
        idle * 100.0
    ));
    Report {
        id: "fig1",
        title: "Invocation counts per window, 20 variants (Azure-like trace)",
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_has_20_rows_and_idle_cells() {
        let r = fig1();
        assert_eq!(
            r.body.lines().filter(|l| l.starts_with("model")).count(),
            20
        );
        let idle_line = r.body.lines().find(|l| l.contains("Idle")).unwrap();
        let pct: f64 = idle_line
            .split_whitespace()
            .find_map(|w| w.trim_end_matches('%').parse().ok())
            .unwrap();
        assert!(
            pct > 10.0,
            "trace should have substantial idle area: {pct}%"
        );
    }
}
