//! End-to-end serving figures: 10-16, 18, 19.

use super::{md_table, Report};
use dz_gpusim::shapes::ModelShape;
use dz_gpusim::spec::NodeSpec;
use dz_serve::{
    CostModel, DeltaZipConfig, DeltaZipEngine, Engine, EngineBuilder, LoraEngine,
    LoraServingConfig, Metrics, PreemptionPolicy, VllmScbConfig, VllmScbEngine,
};
use dz_workload::{PopularityDist, Trace, TraceSpec};

fn a800_13b() -> CostModel {
    CostModel::new(NodeSpec::a800_node(4), ModelShape::llama13b())
}

fn trace_13b(rate: f64, pop: PopularityDist, seed: u64) -> Trace {
    Trace::generate(TraceSpec {
        n_models: 32,
        arrival_rate: rate,
        duration_s: 300.0,
        popularity: pop,
        seed,
    })
}

fn dz_engine(cost: CostModel, n: usize) -> DeltaZipEngine {
    DeltaZipEngine::new(
        cost,
        DeltaZipConfig {
            max_concurrent_deltas: n,
            ..DeltaZipConfig::default()
        },
    )
}

fn lora_engine(cost: CostModel, config: LoraServingConfig) -> LoraEngine {
    EngineBuilder::new(cost)
        .adapters(config)
        .build_adapter_only()
}

fn dist_name(pop: PopularityDist) -> &'static str {
    match pop {
        PopularityDist::Uniform => "uniform",
        PopularityDist::Zipf { .. } => "zipf-1.5",
        PopularityDist::AzureLike => "azure",
    }
}

/// Figure 10: mean time per token vs `N`, several (rate, skew) settings.
pub fn fig10() -> Report {
    let cost = CostModel::new(NodeSpec::rtx3090_node(2), ModelShape::llama7b());
    let mut rows = Vec::new();
    let configs: Vec<(f64, f64)> = vec![
        (3.0, 4.0),
        (3.5, 4.0),
        (4.0, 3.0),
        (4.0, 4.0),
        (4.0, 5.0),
        (5.0, 4.0),
    ];
    for n in 1..=6usize {
        let mut row = vec![format!("{n}")];
        for &(rate, alpha) in &configs {
            let trace = Trace::generate(TraceSpec {
                n_models: 12,
                arrival_rate: rate,
                duration_s: 25.0,
                popularity: PopularityDist::Zipf { alpha },
                seed: 0x10 + (rate * 10.0) as u64 + alpha as u64,
            });
            let m = dz_engine(cost, n).run(&trace);
            row.push(format!("{:.3}", m.mean_time_per_token()));
        }
        rows.push(row);
    }
    let header: Vec<String> = std::iter::once("N".to_string())
        .chain(configs.iter().map(|(r, a)| format!("ar={r},zipf:{a}")))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    Report {
        id: "fig10",
        title: "Mean time per token (s) vs number of concurrent deltas N",
        body: md_table(&header_refs, &rows),
    }
}

fn grid() -> Vec<(f64, PopularityDist)> {
    let dists = [
        PopularityDist::AzureLike,
        PopularityDist::Uniform,
        PopularityDist::Zipf { alpha: 1.5 },
    ];
    let mut out = Vec::new();
    for pop in dists {
        for rate in [0.5, 1.0] {
            out.push((rate, pop));
        }
    }
    out
}

fn run_three(rate: f64, pop: PopularityDist, seed: u64) -> (Metrics, Metrics, Metrics) {
    let cost = a800_13b();
    let trace = trace_13b(rate, pop, seed);
    let vllm = VllmScbEngine::new(cost, VllmScbConfig::default()).run(&trace);
    let dz8 = dz_engine(cost, 8).run(&trace);
    let dz12 = dz_engine(cost, 12).run(&trace);
    (vllm, dz8, dz12)
}

/// Figure 11: throughput (requests/s) across the (rate, distribution) grid.
pub fn fig11() -> Report {
    let mut rows = Vec::new();
    for (rate, pop) in grid() {
        let (vllm, dz8, dz12) = run_three(rate, pop, 0x11);
        rows.push(vec![
            dist_name(pop).to_string(),
            format!("{rate}"),
            format!("{:.2}", vllm.throughput_rps()),
            format!("{:.2}", dz8.throughput_rps()),
            format!("{:.2}", dz12.throughput_rps()),
            format!(
                "{:.1}x",
                dz8.throughput_rps() / vllm.throughput_rps().max(1e-9)
            ),
        ]);
    }
    Report {
        id: "fig11",
        title: "Throughput (req/s): vLLM+SCB vs DeltaZip (N=8, N=12), 13B",
        body: md_table(
            &[
                "distribution",
                "rate",
                "vLLM+SCB",
                "DeltaZip N=8",
                "DeltaZip N=12",
                "speedup(N=8)",
            ],
            &rows,
        ),
    }
}

/// Figure 12: mean E2E latency and TTFT across the same grid.
pub fn fig12() -> Report {
    let mut rows = Vec::new();
    for (rate, pop) in grid() {
        let (vllm, dz8, dz12) = run_three(rate, pop, 0x12);
        rows.push(vec![
            dist_name(pop).to_string(),
            format!("{rate}"),
            format!("{:.1} / {:.1}", vllm.mean_e2e(), vllm.mean_ttft()),
            format!("{:.1} / {:.1}", dz8.mean_e2e(), dz8.mean_ttft()),
            format!("{:.1} / {:.1}", dz12.mean_e2e(), dz12.mean_ttft()),
        ]);
    }
    Report {
        id: "fig12",
        title: "Mean E2E latency / TTFT (s) across rates and distributions, 13B",
        body: md_table(
            &[
                "distribution",
                "rate",
                "vLLM+SCB",
                "DeltaZip N=8",
                "DeltaZip N=12",
            ],
            &rows,
        ),
    }
}

/// Figure 13: SLO attainment curves (E2E and TTFT), Azure distribution.
pub fn fig13() -> Report {
    let mut body = String::new();
    for rate in [0.5, 1.0] {
        let (vllm, dz8, dz12) = run_three(rate, PopularityDist::AzureLike, 0x13);
        for (metric, ttft) in [("E2E", false), ("TTFT", true)] {
            let thresholds: Vec<f64> = vec![1.0, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0, 900.0];
            let mut rows = Vec::new();
            for &thr in &thresholds {
                let grab = |m: &Metrics| {
                    if ttft {
                        m.slo_attainment_ttft(thr)
                    } else {
                        m.slo_attainment_e2e(thr)
                    }
                };
                rows.push(vec![
                    format!("{thr}"),
                    format!("{:.2}", grab(&vllm)),
                    format!("{:.2}", grab(&dz8)),
                    format!("{:.2}", grab(&dz12)),
                ]);
            }
            body.push_str(&format!("\n### rate={rate}, {metric} SLO\n\n"));
            body.push_str(&md_table(
                &["SLO (s)", "vLLM+SCB", "DeltaZip N=8", "DeltaZip N=12"],
                &rows,
            ));
        }
    }
    Report {
        id: "fig13",
        title: "SLO attainment, Azure-like distribution, 13B",
        body,
    }
}

/// Figure 14: serving LoRA vs FMT variants on both systems.
pub fn fig14() -> Report {
    let cost = a800_13b();
    let trace = trace_13b(0.75, PopularityDist::Zipf { alpha: 1.5 }, 0x14);
    // LoRA node: both systems use the Punica path (DeltaZip inherits it).
    let lora = lora_engine(cost, LoraServingConfig::default()).run(&trace);
    // FMT node: baseline swaps full models, DeltaZip serves deltas.
    let fmt_vllm = VllmScbEngine::new(cost, VllmScbConfig::default()).run(&trace);
    let fmt_dz = dz_engine(cost, 8).run(&trace);
    let rows = vec![
        vec![
            "LoRA".into(),
            format!("{:.1}", lora.mean_e2e()),
            format!("{:.2}", lora.mean_ttft()),
            format!("{:.1}", lora.mean_e2e()),
            format!("{:.2}", lora.mean_ttft()),
        ],
        vec![
            "FMT".into(),
            format!("{:.1}", fmt_vllm.mean_e2e()),
            format!("{:.2}", fmt_vllm.mean_ttft()),
            format!("{:.1}", fmt_dz.mean_e2e()),
            format!("{:.2}", fmt_dz.mean_ttft()),
        ],
    ];
    Report {
        id: "fig14",
        title: "E2E / TTFT serving LoRA and FMT variants (s)",
        body: md_table(
            &[
                "workload",
                "vLLM E2E",
                "vLLM TTFT",
                "DeltaZip E2E",
                "DeltaZip TTFT",
            ],
            &rows,
        ),
    }
}

/// Figure 15: latency vs arrival rate for delta / full-model / LoRA serving.
pub fn fig15() -> Report {
    let cost = a800_13b();
    let mut rows = Vec::new();
    for rate in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let trace = trace_13b(rate, PopularityDist::Uniform, 0x15);
        let dz = dz_engine(cost, 8).run(&trace);
        let full = VllmScbEngine::new(cost, VllmScbConfig::default()).run(&trace);
        let l16 = lora_engine(
            cost,
            LoraServingConfig {
                rank: 16,
                ..LoraServingConfig::default()
            },
        )
        .run(&trace);
        let l64 = lora_engine(
            cost,
            LoraServingConfig {
                rank: 64,
                ..LoraServingConfig::default()
            },
        )
        .run(&trace);
        rows.push(vec![
            format!("{rate}"),
            format!("{:.1} / {:.2}", dz.mean_e2e(), dz.mean_ttft()),
            format!("{:.1} / {:.2}", full.mean_e2e(), full.mean_ttft()),
            format!("{:.1} / {:.2}", l16.mean_e2e(), l16.mean_ttft()),
            format!("{:.1} / {:.2}", l64.mean_e2e(), l64.mean_ttft()),
        ]);
    }
    Report {
        id: "fig15",
        title: "Mean E2E / TTFT (s) vs arrival rate",
        body: md_table(
            &[
                "rate",
                "Compressed Delta",
                "Full Model",
                "LoRA r=16",
                "LoRA r=64",
            ],
            &rows,
        ),
    }
}

/// Figure 16: per-request latency breakdown timeline (12 models, 60 s).
pub fn fig16() -> Report {
    let cost = CostModel::new(NodeSpec::rtx3090_node(2), ModelShape::llama7b());
    let trace = Trace::generate(TraceSpec {
        n_models: 12,
        arrival_rate: 0.5,
        duration_s: 60.0,
        popularity: PopularityDist::Uniform,
        seed: 0x16,
    });
    let vllm = VllmScbEngine::new(cost, VllmScbConfig::default()).run(&trace);
    let dz = dz_engine(cost, 6).run(&trace);
    let mut body = String::new();
    for m in [&vllm, &dz] {
        let (q, l, i) = m.breakdown();
        body.push_str(&format!(
            "\n### {} — mean queuing {q:.1}s, loading {l:.1}s, inference {i:.1}s (makespan {:.0}s)\n\n",
            m.engine, m.makespan_s
        ));
        let mut rows = Vec::new();
        for r in m.records.iter().take(15) {
            rows.push(vec![
                format!("#{}", r.model),
                format!("{:.1}", r.arrival),
                format!("{:.1}", r.queue_s),
                format!("{:.1}", r.load_s),
                format!("{:.1}", (r.e2e_s - r.queue_s - r.load_s).max(0.0)),
            ]);
        }
        body.push_str(&md_table(
            &["model", "arrival", "queuing", "loading", "inference"],
            &rows,
        ));
    }
    Report {
        id: "fig16",
        title: "Serving latency breakdown (s), 12 models on 2x RTX 3090",
        body,
    }
}

/// Figure 18: tensor-parallel scaling on both platforms.
pub fn fig18() -> Report {
    let mut rows = Vec::new();
    let cases: Vec<(&str, CostModel)> = vec![
        (
            "7B, 1x3090",
            CostModel::new(NodeSpec::rtx3090_node(1), ModelShape::llama7b()),
        ),
        (
            "7B, 2x3090",
            CostModel::new(NodeSpec::rtx3090_node(2), ModelShape::llama7b()),
        ),
        (
            "13B, 2xA800",
            CostModel::new(NodeSpec::a800_node(2), ModelShape::llama13b()),
        ),
        (
            "13B, 4xA800",
            CostModel::new(NodeSpec::a800_node(4), ModelShape::llama13b()),
        ),
    ];
    for (label, cost) in cases {
        let trace = Trace::generate(TraceSpec {
            n_models: 16,
            arrival_rate: 0.6,
            duration_s: 120.0,
            popularity: PopularityDist::Zipf { alpha: 1.5 },
            seed: 0x18,
        });
        let m = dz_engine(cost, 6).run(&trace);
        rows.push(vec![
            label.to_string(),
            format!("{:.1}", m.mean_e2e()),
            format!("{:.1}", m.mean_ttft()),
        ]);
    }
    Report {
        id: "fig18",
        title: "DeltaZip E2E / TTFT (s) vs number of GPUs (tensor parallelism)",
        body: md_table(&["platform", "E2E", "TTFT"], &rows),
    }
}

/// Figure 19: starvation-handling (preemption) ablation.
///
/// Preemption pays off when line-skippers for hot deltas keep slots away
/// from queued cold-delta requests: few concurrent deltas (N=3), a heavy
/// head (zipf-1.5), and an overdriven arrival rate. In mild regimes the
/// mechanism is neutral (the engine only preempts when someone is actually
/// starving).
pub fn fig19() -> Report {
    let cost = a800_13b();
    let trace = Trace::generate(TraceSpec {
        n_models: 32,
        arrival_rate: 4.0,
        duration_s: 180.0,
        popularity: PopularityDist::Zipf { alpha: 1.5 },
        seed: 0x19,
    });
    let mut with = dz_engine(cost, 3);
    with.config.max_batch = 32;
    let mut without = dz_engine(cost, 3);
    without.config.max_batch = 32;
    without.config.preemption = PreemptionPolicy::Never;
    let mw = with.run(&trace);
    let mo = without.run(&trace);
    let mut rows = Vec::new();
    for q in [0.5, 0.9, 0.99] {
        rows.push(vec![
            format!("p{}", (q * 100.0) as usize),
            format!("{:.1} / {:.1}", mo.e2e_percentile(q), mw.e2e_percentile(q)),
            format!(
                "{:.1} / {:.1}",
                mo.ttft_percentile(q),
                mw.ttft_percentile(q)
            ),
        ]);
    }
    let gain = |no: f64, yes: f64| (no - yes) / no.max(1e-9) * 100.0;
    let p90_ttft = gain(mo.ttft_percentile(0.9), mw.ttft_percentile(0.9));
    let p90_e2e = gain(mo.e2e_percentile(0.9), mw.e2e_percentile(0.9));
    let mut body = md_table(
        &[
            "percentile",
            "E2E no-preempt / preempt",
            "TTFT no-preempt / preempt",
        ],
        &rows,
    );
    body.push_str(&format!(
        "\nImproved P90 TTFT by preemption: {p90_ttft:.1}% (paper: 49.0%)\n\
         Improved P90 E2E by preemption: {p90_e2e:.1}% (paper: 18.8%)\n"
    ));
    Report {
        id: "fig19",
        title: "Starvation handling: FCFS+skip-the-line vs with preemption (s)",
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_deltazip_wins_throughput() {
        let r = fig11();
        for line in r.body.lines().filter(|l| l.contains("x |")) {
            let speedup: f64 = line
                .split('|')
                .rev()
                .nth(1)
                .and_then(|c| c.trim().trim_end_matches('x').parse().ok())
                .unwrap();
            assert!(speedup >= 1.0, "speedup below 1 in: {line}");
        }
    }

    #[test]
    fn fig15_lora_never_slower_than_full_model() {
        let r = fig15();
        for line in r.body.lines().filter(|l| {
            l.starts_with("| 0")
                || l.starts_with("| 1")
                || l.starts_with("| 2")
                || l.starts_with("| 4")
        }) {
            let cols: Vec<&str> = line.split('|').map(|c| c.trim()).collect();
            let full: f64 = cols[3].split('/').next().unwrap().trim().parse().unwrap();
            let lora: f64 = cols[4].split('/').next().unwrap().trim().parse().unwrap();
            assert!(lora <= full, "{line}");
        }
    }

    #[test]
    fn fig10_table_has_six_n_values() {
        let r = fig10();
        assert_eq!(
            r.body
                .lines()
                .filter(|l| l.starts_with("| ") && !l.starts_with("| N"))
                .count(),
            6
        );
    }
}
