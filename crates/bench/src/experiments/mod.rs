//! Experiment drivers regenerating every table and figure in the paper.
//!
//! Each `figN`/`tableN` function reproduces the corresponding artifact of
//! the evaluation section and returns a text [`Report`] (printed by the
//! `exp` binary and archived under `target/experiments/`). The experiment
//! index lives in `DESIGN.md`; expected-vs-measured notes in
//! `EXPERIMENTS.md`.

pub mod ablations;
pub mod chaos;
pub mod cluster;
pub mod codec;
pub mod compress;
pub mod extensions;
pub mod fleet;
pub mod kernels;
pub mod quality;
pub mod serving;
pub mod smoke;
pub mod swap;
pub mod toppings;
pub mod workloads;

/// A rendered experiment artifact.
#[derive(Debug, Clone)]
pub struct Report {
    /// Stable id, e.g. `"table1"` or `"fig11"`.
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Pre-rendered text body (markdown-ish).
    pub body: String,
}

impl Report {
    /// Renders with a header.
    pub fn render(&self) -> String {
        format!("## {} — {}\n\n{}\n", self.id, self.title, self.body)
    }
}

/// Global experiment scale (quality experiments train real models; `Quick`
/// divides step counts by 4 for smoke runs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Full runs, used for the committed EXPERIMENTS.md numbers.
    Full,
    /// 4x fewer training steps; shapes hold, absolute accuracy dips.
    Quick,
}

impl Scale {
    /// Scales a step count.
    pub fn steps(&self, full: usize) -> usize {
        match self {
            Scale::Full => full,
            Scale::Quick => (full / 4).max(50),
        }
    }
}

/// Schema version stamped into every `BENCH_*.json` artifact. Bump when
/// an emitter changes field names or meanings; `exp bench-smoke --check`
/// refuses baselines written for a newer schema.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// Renders the provenance preamble shared by every `BENCH_*.json`
/// emitter: schema version, experiment id, and the run configuration
/// that produced the numbers. Returns indented `"key": value,` lines
/// ready to splice directly after the opening `{`. Config values must
/// already be rendered as JSON (quote strings yourself).
pub fn json_provenance(experiment: &str, config: &[(&str, String)]) -> String {
    let mut s = format!(
        "  \"schema_version\": {BENCH_SCHEMA_VERSION},\n  \"experiment\": \"{experiment}\",\n  \"config\": {{"
    );
    for (i, (key, value)) in config.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!("\"{key}\": {value}"));
    }
    s.push_str("},\n");
    s
}

/// Formats a markdown table from a header and rows.
pub fn md_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&format!("| {} |\n", header.join(" | ")));
    out.push_str(&format!(
        "|{}\n",
        header.iter().map(|_| "---|").collect::<String>()
    ));
    for row in rows {
        out.push_str(&format!("| {} |\n", row.join(" | ")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn md_table_renders() {
        let t = md_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert!(t.contains("| a | b |"));
        assert!(t.contains("| 1 | 2 |"));
        assert_eq!(t.lines().count(), 3);
    }

    #[test]
    fn scale_quick_divides() {
        assert_eq!(Scale::Quick.steps(1200), 300);
        assert_eq!(Scale::Full.steps(1200), 1200);
        assert_eq!(Scale::Quick.steps(100), 50);
    }

    #[test]
    fn provenance_is_valid_json_when_spliced() {
        let pre = json_provenance(
            "bench-x",
            &[("duration_s", "60".into()), ("mode", "\"fast\"".into())],
        );
        let doc = format!("{{\n{pre}  \"rows\": []\n}}\n");
        let v = serde::value::Value::parse_json(&doc).expect("splices into valid JSON");
        assert_eq!(
            v.get("schema_version").and_then(|x| x.as_f64()),
            Some(BENCH_SCHEMA_VERSION as f64)
        );
        assert!(v.get("config").is_some());
    }

    #[test]
    fn report_renders_with_header() {
        let r = Report {
            id: "figX",
            title: "Test",
            body: "body".into(),
        };
        assert!(r.render().starts_with("## figX — Test"));
    }
}
