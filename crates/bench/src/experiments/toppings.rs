//! Heterogeneous "toppings" batches: mixed-kind serving vs the
//! segregated-pool baseline.
//!
//! `bench-toppings` drives the unified engine over a fixed-seed Zipf
//! trace on the capacity-constrained 3090/7B node with an interleaved
//! variant catalog — base, LoRA, delta, and stacked delta+LoRA models all
//! receive traffic — and compares three modes:
//!
//! * `mixed` — one pool: delta-backed and pure-LoRA toppings co-batch
//!   under the `max_toppings_per_batch` cap; adapters fill batch slots
//!   while deltas swap in,
//! * `mixed-uncapped` — the same pool without the toppings cap (the SGMV
//!   grouping cost then grows with every co-batched adapter),
//! * `segregated` — delta-backed and pure-LoRA toppings never share an
//!   iteration (the paper's §8 coarse-grained co-serving baseline).
//!
//! The headline numbers are goodput (SLO-attaining requests per second of
//! makespan) and TTFT p99. Emits `BENCH_toppings.json`; two smoke metrics
//! feed the CI perf gate.

use super::{json_provenance, md_table, Report, Scale};
use dz_gpusim::shapes::ModelShape;
use dz_gpusim::spec::NodeSpec;
use dz_serve::{
    CostModel, DeltaZipConfig, Engine, EngineBuilder, Metrics, TraceConfig, TraceLog, TraceTrack,
    VariantCatalog,
};
use dz_workload::{PopularityDist, Trace, TraceSpec};

const N_MODELS: usize = 24;
const ADAPTER_RANK: usize = 16;
/// Distinct non-base toppings allowed per iteration in the capped modes.
pub const TOPPINGS_CAP: usize = 4;
/// The goodput SLO: a request attains service when its E2E stays under
/// this bound.
pub const GOODPUT_SLO_E2E_S: f64 = 40.0;
/// Mode ids swept by the experiment.
pub const MODES: [&str; 3] = ["mixed", "mixed-uncapped", "segregated"];

fn toppings_trace(duration_s: f64) -> Trace {
    Trace::generate(TraceSpec {
        n_models: N_MODELS,
        arrival_rate: 1.5,
        duration_s,
        popularity: PopularityDist::Zipf { alpha: 1.2 },
        seed: 0x7019,
    })
}

/// Runs one toppings-bench mode (also reused by the `bench-smoke` perf
/// gate). The catalog interleaves all four variant kinds across
/// `N_MODELS` models; only the pool policy differs between modes.
pub fn run_toppings(mode: &str, duration_s: f64) -> Metrics {
    run_toppings_traced(mode, duration_s, None).0
}

/// [`run_toppings`] with optional event tracing: when `trace_cfg` is set
/// the engine records its event log, returned alongside the metrics.
pub fn run_toppings_traced(
    mode: &str,
    duration_s: f64,
    trace_cfg: Option<TraceConfig>,
) -> (Metrics, Option<TraceLog>) {
    // The small node: GPU holds only a few deltas next to the base, so
    // delta-backed toppings churn while adapters are always resident.
    let cost = CostModel::new(NodeSpec::rtx3090_node(1), ModelShape::llama7b());
    let trace = toppings_trace(duration_s);
    let cap = match mode {
        "mixed" | "segregated" => Some(TOPPINGS_CAP),
        "mixed-uncapped" => None,
        other => panic!("unknown toppings mode {other}"),
    };
    let mut builder = EngineBuilder::new(cost)
        .scheduler(DeltaZipConfig {
            max_concurrent_deltas: 2,
            max_batch: 32,
            host_capacity_deltas: Some(6),
            max_toppings_per_batch: cap,
            segregate_kinds: mode == "segregated",
            ..DeltaZipConfig::default()
        })
        .catalog(VariantCatalog::interleaved(N_MODELS, ADAPTER_RANK));
    if let Some(cfg) = trace_cfg {
        builder = builder.tracing(cfg);
    }
    let mut engine = builder.build();
    let m = engine.run(&trace);
    let log = engine.tracer.take_log();
    (m, log)
}

/// SLO-attaining requests per second of makespan.
pub fn goodput(m: &Metrics) -> f64 {
    if m.makespan_s > 0.0 {
        m.len() as f64 * m.slo_attainment_e2e(GOODPUT_SLO_E2E_S) / m.makespan_s
    } else {
        0.0
    }
}

struct Row {
    mode: &'static str,
    requests: usize,
    goodput_rps: f64,
    ttft_p99_s: f64,
    e2e_p99_s: f64,
    batches: usize,
    mixed_batches: usize,
    max_toppings: usize,
    sbmm_s: f64,
    sgmv_s: f64,
    base_gemm_s: f64,
}

fn measure(
    mode: &'static str,
    duration_s: f64,
    trace_cfg: Option<TraceConfig>,
) -> (Row, Option<TraceLog>) {
    let (m, log) = run_toppings_traced(mode, duration_s, trace_cfg);
    let row = Row {
        mode,
        requests: m.len(),
        goodput_rps: goodput(&m),
        ttft_p99_s: m.ttft_percentile(0.99),
        e2e_p99_s: m.e2e_percentile(0.99),
        batches: m.toppings.batches,
        mixed_batches: m.toppings.mixed_batches,
        max_toppings: m.toppings.max_toppings_in_batch,
        sbmm_s: m.toppings.sbmm_s,
        sgmv_s: m.toppings.sgmv_s,
        base_gemm_s: m.toppings.base_gemm_s,
    };
    (row, log)
}

/// The `bench-toppings` experiment. When `trace` is given, each mode's
/// engine event log lands there as a `toppings/<mode>` lane.
pub fn bench_toppings(
    scale: Scale,
    out_dir: &std::path::Path,
    mut trace: Option<&mut Vec<TraceTrack>>,
) -> Report {
    let duration_s = match scale {
        Scale::Full => 150.0,
        Scale::Quick => 60.0,
    };
    let trace_cfg = trace.as_ref().map(|_| TraceConfig::default());
    let rows: Vec<Row> = MODES
        .iter()
        .map(|m| {
            let (row, log) = measure(m, duration_s, trace_cfg);
            if let (Some(tracks), Some(log)) = (trace.as_deref_mut(), log) {
                tracks.push(TraceTrack {
                    name: format!("toppings/{m}"),
                    log,
                });
            }
            row
        })
        .collect();
    let mut body = format!(
        "Toppings pools on the 3090/7B node (Zipf-1.2, {N_MODELS} models, interleaved\n\
         base/LoRA/delta/stacked catalog, rank {ADAPTER_RANK}). Goodput counts requests\n\
         finishing under the {GOODPUT_SLO_E2E_S:.0} s E2E SLO per second of makespan:\n\n"
    );
    body.push_str(&md_table(
        &[
            "mode",
            "requests",
            "goodput (req/s)",
            "TTFT p99 (s)",
            "E2E p99 (s)",
            "batches",
            "mixed",
            "max toppings",
            "base GEMM (s)",
            "SBMM (s)",
            "SGMV (s)",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.mode.to_string(),
                    r.requests.to_string(),
                    format!("{:.3}", r.goodput_rps),
                    format!("{:.2}", r.ttft_p99_s),
                    format!("{:.2}", r.e2e_p99_s),
                    r.batches.to_string(),
                    r.mixed_batches.to_string(),
                    r.max_toppings.to_string(),
                    format!("{:.1}", r.base_gemm_s),
                    format!("{:.1}", r.sbmm_s),
                    format!("{:.1}", r.sgmv_s),
                ]
            })
            .collect::<Vec<_>>(),
    ));
    body.push_str(
        "\nThe mixed pool fills batch slots with resident adapters while\n\
         delta-backed toppings swap in; the segregated baseline leaves those\n\
         slots empty whenever the other pool holds the iteration.\n",
    );
    match write_json(&rows, duration_s, out_dir) {
        Ok(path) => body.push_str(&format!("\njson: {path}\n")),
        Err(e) => body.push_str(&format!("\njson write failed: {e}\n")),
    }
    Report {
        id: "bench-toppings",
        title: "Mixed-kind toppings batches vs the segregated-pool baseline",
        body,
    }
}

fn write_json(rows: &[Row], duration_s: f64, dir: &std::path::Path) -> std::io::Result<String> {
    std::fs::create_dir_all(dir)?;
    let mut json = String::from("{\n");
    json.push_str(&json_provenance(
        "bench-toppings",
        &[
            ("n_models", N_MODELS.to_string()),
            ("adapter_rank", ADAPTER_RANK.to_string()),
            ("toppings_cap", TOPPINGS_CAP.to_string()),
            ("arrival_rate", "1.5".into()),
            ("duration_s", format!("{duration_s:.1}")),
            ("zipf_alpha", "1.2".into()),
            ("slo_e2e_s", format!("{GOODPUT_SLO_E2E_S:.1}")),
            ("seed", "28697".into()),
        ],
    ));
    json.push_str("  \"modes\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"requests\": {}, \"goodput_rps\": {:.4}, \
             \"ttft_p99_s\": {:.4}, \"e2e_p99_s\": {:.4}, \"batches\": {}, \
             \"mixed_batches\": {}, \"max_toppings_in_batch\": {}, \
             \"base_gemm_s\": {:.4}, \"sbmm_s\": {:.4}, \"sgmv_s\": {:.4}}}{}\n",
            r.mode,
            r.requests,
            r.goodput_rps,
            r.ttft_p99_s,
            r.e2e_p99_s,
            r.batches,
            r.mixed_batches,
            r.max_toppings,
            r.base_gemm_s,
            r.sbmm_s,
            r.sgmv_s,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = dir.join("BENCH_toppings.json");
    std::fs::write(&path, json)?;
    Ok(path.display().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_pool_beats_segregated_on_goodput() {
        // The acceptance gate: co-batching adapters with swapping deltas
        // must not lose goodput against the segregated-pool baseline.
        let mixed = run_toppings("mixed", 60.0);
        let segregated = run_toppings("segregated", 60.0);
        assert_eq!(mixed.len(), segregated.len());
        let (gm, gs) = (goodput(&mixed), goodput(&segregated));
        assert!(
            gm >= gs,
            "mixed goodput {gm} must not lose to segregated {gs}"
        );
        // Segregation really did keep the pools apart, and mixing really
        // did co-batch them.
        assert_eq!(segregated.toppings.mixed_batches, 0);
        assert!(mixed.toppings.mixed_batches > 0);
    }

    #[test]
    fn capped_modes_respect_the_toppings_cap() {
        for mode in ["mixed", "segregated"] {
            let m = run_toppings(mode, 60.0);
            assert!(
                m.toppings.max_toppings_in_batch <= TOPPINGS_CAP,
                "{mode}: {} toppings over cap {TOPPINGS_CAP}",
                m.toppings.max_toppings_in_batch
            );
        }
        // The uncapped pool actually uses the freedom the cap removes.
        let uncapped = run_toppings("mixed-uncapped", 60.0);
        assert!(uncapped.toppings.max_toppings_in_batch > TOPPINGS_CAP);
    }

    #[test]
    fn all_kinds_receive_traffic_and_kernel_charges_split() {
        let m = run_toppings("mixed", 60.0);
        let t = &m.toppings;
        assert_eq!(t.total_reqs(), m.len());
        assert!(t.base_reqs > 0 && t.lora_reqs > 0);
        assert!(t.delta_reqs > 0 && t.stacked_reqs > 0);
        // Every kernel family was charged: shared base work always, SBMM
        // for the delta-backed kinds, SGMV for the adapter-backed ones.
        assert!(t.base_gemm_s > 0.0 && t.sbmm_s > 0.0 && t.sgmv_s > 0.0);
    }
}
