//! Fleet-scale routing bench: where global scoring stops scaling.
//!
//! `bench-fleet` sweeps the event-driven [`FleetSim`] from 10 to 1000
//! replicas on Zipf traces with constant per-replica load (so the
//! 1000-replica cell replays ≥1M requests at full scale) and emits
//! `BENCH_fleet.json`. The comparison the tentpole makes:
//!
//! * **global-least-cost** scores every replica per request — O(R) in the
//!   front end — so its *wall clock* blows up linearly with fleet size
//!   even though its simulated tail is the best achievable,
//! * **p2c** (power-of-two-choices) samples two replicas per request —
//!   O(1) — and holds the p99 line within a small factor of the global
//!   scan at a flat routing cost,
//! * **consistent-hash** is the affinity extreme (every model pinned to
//!   one replica: maximal warm hits, no load awareness),
//! * **round-robin** is the placement-blind floor.
//!
//! Simulated latencies are bit-deterministic (seeded p2c sampling, no
//! wall-clock input); only the `wall_s` column varies across machines.
//! `bench-smoke` re-measures the 1000-replica p2c cell at quick scale as
//! `fleet_1000_replica_wall_s` / `fleet_p2c_p99_s` for the CI perf gate.

use super::{json_provenance, md_table, Report, Scale};
use dz_serve::cluster::PlacementPlan;
use dz_serve::{FleetConfig, FleetRouter, FleetSim, TraceConfig, TraceTrack};
use dz_workload::{PopularityDist, Trace, TraceSpec};
use std::time::Instant;

const N_MODELS: usize = 512;
const ZIPF_ALPHA: f64 = 1.1;
/// Arrivals per second per replica: load scales with the fleet, so every
/// cell runs at the same utilization and tails are comparable.
const RATE_PER_REPLICA: f64 = 2.0;
/// Master seed for the fleet bench (workload + p2c sampling; stamped
/// into `BENCH_fleet.json` provenance).
pub const FLEET_SEED: u64 = 0x000F_1EE7;

fn durations(scale: Scale) -> f64 {
    match scale {
        // 1000 replicas × 2 req/s × 500 s = 1M requests in the big cell.
        Scale::Full => 500.0,
        Scale::Quick => 50.0,
    }
}

fn fleet_sizes() -> [usize; 3] {
    [10, 100, 1000]
}

fn routers() -> Vec<FleetRouter> {
    vec![
        FleetRouter::RoundRobin,
        FleetRouter::ConsistentHash { vnodes: 32 },
        FleetRouter::PowerOfTwo { seed: FLEET_SEED },
        FleetRouter::GlobalLeastCost,
    ]
}

fn sweep_trace(n_replicas: usize, scale: Scale) -> Trace {
    Trace::generate_fast(TraceSpec {
        n_models: N_MODELS,
        arrival_rate: RATE_PER_REPLICA * n_replicas as f64,
        duration_s: durations(scale),
        popularity: PopularityDist::Zipf { alpha: ZIPF_ALPHA },
        seed: FLEET_SEED ^ n_replicas as u64,
    })
}

fn sim_for(n_replicas: usize, router: FleetRouter, trace_cfg: Option<TraceConfig>) -> FleetSim {
    let mut cfg = FleetConfig::new(n_replicas);
    cfg.seed = FLEET_SEED;
    cfg.trace = trace_cfg;
    // The operator provisioned edge disks for the Zipf head only: the
    // long tail starts object-store-only and must pull (then
    // edge-replicate) on first touch — the shared-tier story.
    let weights = PopularityDist::Zipf { alpha: ZIPF_ALPHA }.weights(N_MODELS);
    let plan = PlacementPlan::from_weights(&weights[..N_MODELS / 4], n_replicas);
    FleetSim::new(cfg, plan, router)
}

/// One sweep cell's results.
struct Cell {
    router: String,
    n_replicas: usize,
    requests: usize,
    wall_s: f64,
    p50_e2e_s: f64,
    p99_e2e_s: f64,
    warm_hit_frac: f64,
    object_fetches: u64,
    events: usize,
}

fn run_cell(
    n_replicas: usize,
    router: FleetRouter,
    trace: &Trace,
    trace_cfg: Option<TraceConfig>,
) -> (Cell, Vec<TraceTrack>) {
    let mut sim = sim_for(n_replicas, router, trace_cfg);
    let t0 = Instant::now();
    let rep = sim.run(trace);
    let wall_s = t0.elapsed().as_secs_f64();
    let warm_hit_frac = if rep.served > 0 {
        rep.warm_hits as f64 / rep.served as f64
    } else {
        0.0
    };
    (
        Cell {
            router: rep.router,
            n_replicas,
            requests: rep.served + rep.shed,
            wall_s,
            p50_e2e_s: rep.p50_e2e_s,
            p99_e2e_s: rep.p99_e2e_s,
            warm_hit_frac,
            object_fetches: rep.fetches.object_store,
            events: rep.events,
        },
        rep.tracks,
    )
}

/// The `bench-fleet` experiment. When `trace` is given, the 10-replica
/// p2c cell runs traced and its lane lands there as `fleet/*`.
pub fn bench_fleet(
    scale: Scale,
    out_dir: &std::path::Path,
    trace: Option<&mut Vec<TraceTrack>>,
) -> Report {
    let mut cells: Vec<Cell> = Vec::new();
    let mut trace = trace;
    for n in fleet_sizes() {
        let tr = sweep_trace(n, scale);
        for router in routers() {
            // Trace only the smallest p2c cell: a bounded lane that shows
            // the event taxonomy without dilating the big cells' wall.
            let want_trace = n == fleet_sizes()[0]
                && matches!(router, FleetRouter::PowerOfTwo { .. })
                && trace.is_some();
            let cfg = want_trace.then(TraceConfig::default);
            let (cell, tracks) = run_cell(n, router, &tr, cfg);
            if want_trace {
                if let Some(sink) = trace.as_deref_mut() {
                    for mut track in tracks {
                        track.name = format!("fleet/{}", track.name);
                        sink.push(track);
                    }
                }
            }
            cells.push(cell);
        }
    }

    let mut body = format!(
        "Zipf-{ZIPF_ALPHA} sweep, {N_MODELS} models, {RATE_PER_REPLICA} req/s/replica, \
         {:.0} s traces (load scales with the fleet):\n\n",
        durations(scale)
    );
    body.push_str(&md_table(
        &[
            "router",
            "replicas",
            "requests",
            "wall (s)",
            "p50 E2E (s)",
            "p99 E2E (s)",
            "warm hits",
            "object fetches",
            "events",
        ],
        &cells
            .iter()
            .map(|c| {
                vec![
                    c.router.clone(),
                    c.n_replicas.to_string(),
                    c.requests.to_string(),
                    format!("{:.2}", c.wall_s),
                    format!("{:.3}", c.p50_e2e_s),
                    format!("{:.3}", c.p99_e2e_s),
                    format!("{:.0}%", c.warm_hit_frac * 100.0),
                    c.object_fetches.to_string(),
                    c.events.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    ));
    // The headline comparisons at the largest fleet.
    let big = fleet_sizes()[2];
    let at = |name: &str| {
        cells
            .iter()
            .find(|c| c.router == name && c.n_replicas == big)
            .expect("sweep ran every router at every size")
    };
    let (global, p2c) = (at("global-least-cost"), at("p2c"));
    body.push_str(&format!(
        "\nAt {big} replicas: global scoring walks every replica per request \
         and burns {:.2} s of wall vs p2c's {:.2} s ({:.1}x); p2c holds the \
         p99 line at {:.3} s vs the global scan's {:.3} s ({:.2}x).\n",
        global.wall_s,
        p2c.wall_s,
        global.wall_s / p2c.wall_s.max(1e-9),
        p2c.p99_e2e_s,
        global.p99_e2e_s,
        p2c.p99_e2e_s / global.p99_e2e_s.max(1e-9),
    ));
    match write_json(&cells, scale, out_dir) {
        Ok(path) => body.push_str(&format!("\njson: {path}\n")),
        Err(e) => body.push_str(&format!("\njson write failed: {e}\n")),
    }
    Report {
        id: "bench-fleet",
        title: "Fleet-scale routing: p2c vs global scoring, 10→1000 replicas",
        body,
    }
}

fn write_json(cells: &[Cell], scale: Scale, dir: &std::path::Path) -> std::io::Result<String> {
    std::fs::create_dir_all(dir)?;
    let mut json = String::from("{\n");
    json.push_str(&json_provenance(
        "bench-fleet",
        &[
            ("fleet_seed", FLEET_SEED.to_string()),
            ("n_models", N_MODELS.to_string()),
            ("zipf_alpha", format!("{ZIPF_ALPHA}")),
            ("rate_per_replica", format!("{RATE_PER_REPLICA}")),
            ("duration_s", format!("{:.1}", durations(scale))),
        ],
    ));
    json.push_str("  \"sweep\": [\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"router\": \"{}\", \"n_replicas\": {}, \"requests\": {}, \
             \"wall_s\": {:.4}, \"p50_e2e_s\": {:.4}, \"p99_e2e_s\": {:.4}, \
             \"warm_hit_frac\": {:.4}, \"object_fetches\": {}, \"events\": {}}}{}\n",
            c.router,
            c.n_replicas,
            c.requests,
            c.wall_s,
            c.p50_e2e_s,
            c.p99_e2e_s,
            c.warm_hit_frac,
            c.object_fetches,
            c.events,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = dir.join("BENCH_fleet.json");
    std::fs::write(&path, json)?;
    Ok(path.display().to_string())
}

/// The deterministic fleet cell the `bench-smoke` perf gate measures:
/// `(wall_s, p99_e2e_s)` of the 1000-replica p2c cell at quick scale.
/// The p99 is simulated time (bit-for-bit reproducible; bounded tightly
/// in `ci/perf-baseline.json`); the wall is real and bounded generously.
pub fn smoke_fleet_metrics() -> (f64, f64) {
    let n = fleet_sizes()[2];
    let tr = sweep_trace(n, Scale::Quick);
    let (cell, _) = run_cell(n, FleetRouter::PowerOfTwo { seed: FLEET_SEED }, &tr, None);
    (cell.wall_s, cell.p99_e2e_s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_cells_are_deterministic_in_simulated_time() {
        let tr = sweep_trace(10, Scale::Quick);
        let (a, _) = run_cell(10, FleetRouter::PowerOfTwo { seed: FLEET_SEED }, &tr, None);
        let (b, _) = run_cell(10, FleetRouter::PowerOfTwo { seed: FLEET_SEED }, &tr, None);
        assert_eq!(a.p50_e2e_s.to_bits(), b.p50_e2e_s.to_bits());
        assert_eq!(a.p99_e2e_s.to_bits(), b.p99_e2e_s.to_bits());
        assert_eq!(a.events, b.events);
        assert_eq!(a.requests, tr.len());
    }

    #[test]
    fn p2c_tail_tracks_global_scoring() {
        // The whole point of the bench: on a quick 100-replica cell the
        // O(1) router's p99 stays within a small factor of the O(R)
        // global scan's.
        let tr = sweep_trace(100, Scale::Quick);
        let (p2c, _) = run_cell(100, FleetRouter::PowerOfTwo { seed: FLEET_SEED }, &tr, None);
        let (global, _) = run_cell(100, FleetRouter::GlobalLeastCost, &tr, None);
        assert!(
            p2c.p99_e2e_s <= global.p99_e2e_s * 3.0 + 0.5,
            "p2c p99 {:.3} vs global {:.3}",
            p2c.p99_e2e_s,
            global.p99_e2e_s
        );
    }
}
