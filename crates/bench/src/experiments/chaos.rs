//! Chaos & elasticity bench: recovery after faults, autoscaling under
//! nonstationary load, and rolling rollouts.
//!
//! `bench-chaos` drives [`dz_serve::ClusterSim`] through three unhappy
//! paths and emits `BENCH_chaos.json`:
//!
//! * **recovery** — a scripted replica crash (cold restart later) under
//!   Zipf traffic, round-robin vs placement-aware + prefetch: windowed
//!   SLO attainment, recovery time, total SLO-violation time, and churn
//!   p99 inflation over the healthy baseline. The headline: the
//!   placement-aware fleet re-replicates around the hole and races
//!   prefetch against traffic, so it recovers attainment markedly faster
//!   and keeps tail inflation bounded,
//! * **elasticity** — a diurnal (sinusoidal) workload against an
//!   [`Autoscaler`]: cold spares activate on the morning ramp, drain in
//!   the trough, and the elastic fleet holds attainment close to a
//!   statically-provisioned one,
//! * **flash-rollout** — a cold delta goes viral
//!   ([`Nonstationarity::FlashCrowd`]) while a rolling [`Rollout`]
//!   migrates the viral model's traffic to its v2 delta mid-shock.
//!
//! Every random draw (fault schedule, rollout coin flips, workload) runs
//! off recorded seeds stamped into the JSON provenance, so any run can
//! be reproduced bit-for-bit.

use super::cluster::POLICIES;
use super::{json_provenance, md_table, Report, Scale};
use dz_gpusim::shapes::ModelShape;
use dz_gpusim::spec::NodeSpec;
use dz_serve::cluster::{
    ClusterConfig, ClusterPrefetch, ClusterReport, ClusterSim, LeastLoadedRouter,
    PlacementAwareRouter, PlacementPlan, RoundRobinRouter, Router,
};
use dz_serve::{
    Autoscaler, ChaosConfig, CostModel, DeltaZipConfig, FaultEvent, FaultKind, FaultPlan, Metrics,
    Rollout, TraceConfig, TraceTrack,
};
use dz_workload::{Nonstationarity, PopularityDist, Trace, TraceSpec};

const N_MODELS: usize = 24;
/// Master seed for every chaos bench run (workload seed and chaos seed
/// derive from it; stamped into `BENCH_chaos.json` provenance).
pub const CHAOS_SEED: u64 = 0xC405;
/// Attainment threshold below which a window counts as an SLO violation.
const ATTAIN_THRESHOLD: f64 = 0.9;
/// Windowed-attainment bucket width (s).
const WINDOW_S: f64 = 5.0;

fn cost() -> CostModel {
    CostModel::new(NodeSpec::rtx3090_node(1), ModelShape::llama7b())
}

fn engine_config() -> DeltaZipConfig {
    DeltaZipConfig {
        max_concurrent_deltas: 4,
        max_batch: 32,
        host_capacity_deltas: Some(6),
        ..DeltaZipConfig::default()
    }
}

fn router_for(policy: &str, popularity: PopularityDist, n_replicas: usize) -> Box<dyn Router> {
    match policy {
        "round-robin" => Box::new(RoundRobinRouter::new()),
        "least-loaded" => Box::new(LeastLoadedRouter::new()),
        "placement-aware" => Box::new(PlacementAwareRouter::new(PlacementPlan::from_popularity(
            popularity, N_MODELS, n_replicas,
        ))),
        other => panic!("unknown policy {other}"),
    }
}

/// Runs one chaos cell: `policy` over `trace`, with optional chaos
/// config and tracing. Placement-aware cells get routing-time prefetch
/// (that is the "placement + prefetch beats round-robin" comparison the
/// recovery arm makes).
fn run_cell(
    policy: &str,
    n_replicas: usize,
    trace: &Trace,
    chaos: Option<ChaosConfig>,
    trace_cfg: Option<TraceConfig>,
) -> (ClusterReport, Vec<TraceTrack>) {
    let popularity = trace.spec.popularity;
    let config = ClusterConfig {
        n_replicas,
        engine: engine_config(),
        prefetch: (policy == "placement-aware").then(ClusterPrefetch::default),
        ..ClusterConfig::default()
    };
    let mut sim = ClusterSim::new(
        vec![cost(); n_replicas],
        config,
        router_for(policy, popularity, n_replicas),
    );
    if let Some(c) = chaos {
        sim = sim.with_chaos(c);
    }
    if let Some(cfg) = trace_cfg {
        sim = sim.with_tracing(cfg);
    }
    let report = sim.run(trace);
    let tracks = sim.take_trace();
    (report, tracks)
}

/// Total seconds of SLO-violation intervals at or after `from_s`.
fn violated_after(merged: &Metrics, slo_s: f64, from_s: f64) -> f64 {
    let windows = merged.windowed_attainment(WINDOW_S, slo_s, false);
    let total: f64 = Metrics::violation_intervals(&windows, ATTAIN_THRESHOLD)
        .iter()
        .map(|&(lo, hi)| (hi - lo.max(from_s)).max(0.0))
        .sum();
    if total > 0.0 {
        total
    } else {
        0.0
    }
}

/// One recovery-arm measurement for a policy.
pub struct RecoveryRow {
    /// Routing policy id.
    pub policy: &'static str,
    /// Healthy-run (no chaos) p99 E2E — the steady-state tail.
    pub steady_p99_s: f64,
    /// The service-level E2E SLO this run was judged against.
    pub slo_s: f64,
    /// p99 E2E of requests arriving during the churn window
    /// `[crash, restart + settle]`.
    pub churn_p99_s: f64,
    /// `churn_p99 / steady_p99`.
    pub p99_inflation: f64,
    /// Seconds from the crash until windowed attainment first re-crosses
    /// the threshold (`None` = never within the run).
    pub recovery_s: Option<f64>,
    /// Total SLO-violation seconds at or after the crash.
    pub violated_s: f64,
    /// In-flight requests lost to the crash.
    pub lost_in_flight: usize,
}

/// Parameters of the scripted-crash recovery scenario.
#[derive(Clone, Copy)]
pub struct RecoveryScenario {
    /// Fleet size.
    pub n_replicas: usize,
    /// Arrival rate per replica (req/s).
    pub rate_per_replica: f64,
    /// Trace length (s).
    pub duration_s: f64,
    /// When the replica dies (s).
    pub crash_at_s: f64,
    /// How long it stays down (s).
    pub down_for_s: f64,
}

impl RecoveryScenario {
    /// The bench scenario at a given scale.
    pub fn at(scale: Scale) -> Self {
        match scale {
            Scale::Full => RecoveryScenario {
                n_replicas: 4,
                rate_per_replica: 0.8,
                duration_s: 180.0,
                crash_at_s: 60.0,
                down_for_s: 35.0,
            },
            Scale::Quick => RecoveryScenario {
                n_replicas: 4,
                rate_per_replica: 0.8,
                duration_s: 120.0,
                crash_at_s: 40.0,
                down_for_s: 30.0,
            },
        }
    }
}

/// Runs the recovery arm for one policy: a healthy baseline run
/// establishes the steady-state tail, then the same trace replays with
/// replica 0 crashing. `slo_s` is the service-level E2E SLO every policy
/// is judged against; `None` derives it from this policy's own healthy
/// run (just above its p95 — loose enough that the healthy fleet attains
/// over 90% of every window, tight enough that outage backlog registers).
/// Also reused by the `bench-smoke` perf gate and the acceptance test.
pub fn run_recovery(
    policy: &str,
    sc: RecoveryScenario,
    slo_s: Option<f64>,
    trace_cfg: Option<TraceConfig>,
) -> (RecoveryRow, Vec<TraceTrack>) {
    let trace = Trace::generate(TraceSpec {
        n_models: N_MODELS,
        arrival_rate: sc.rate_per_replica * sc.n_replicas as f64,
        duration_s: sc.duration_s,
        popularity: PopularityDist::Zipf { alpha: 1.5 },
        seed: CHAOS_SEED,
    });
    let (healthy, _) = run_cell(policy, sc.n_replicas, &trace, None, None);
    let steady_p99 = healthy.merged.e2e_percentile(0.99);
    let slo_s = slo_s.unwrap_or_else(|| healthy.merged.e2e_percentile(0.95) * 1.1);

    let plan = FaultPlan::scripted(vec![FaultEvent {
        at: sc.crash_at_s,
        kind: FaultKind::Crash {
            replica: 0,
            restart_after_s: Some(sc.down_for_s),
        },
    }]);
    let (report, tracks) = run_cell(
        policy,
        sc.n_replicas,
        &trace,
        Some(ChaosConfig::faults(plan, CHAOS_SEED)),
        trace_cfg,
    );
    let churn_end = sc.crash_at_s + sc.down_for_s + 15.0;
    let churn = report.merged.subset("churn".into(), |r| {
        (sc.crash_at_s..churn_end).contains(&r.arrival)
    });
    let churn_p99 = churn.e2e_percentile(0.99);
    let windows = report.merged.windowed_attainment(WINDOW_S, slo_s, false);
    let row = RecoveryRow {
        policy: POLICIES
            .iter()
            .copied()
            .find(|p| *p == policy)
            .expect("known policy"),
        steady_p99_s: steady_p99,
        slo_s,
        churn_p99_s: churn_p99,
        p99_inflation: if steady_p99 > 0.0 {
            churn_p99 / steady_p99
        } else {
            0.0
        },
        recovery_s: Metrics::recovery_time_s(&windows, sc.crash_at_s, ATTAIN_THRESHOLD),
        violated_s: violated_after(&report.merged, slo_s, sc.crash_at_s),
        lost_in_flight: report.chaos.as_ref().map_or(0, |c| c.lost_in_flight),
    };
    (row, tracks)
}

struct ElasticityRow {
    label: String,
    requests: usize,
    p99_e2e_s: f64,
    attained_windows_frac: f64,
    scale_ups: usize,
    scale_downs: usize,
    min_live: usize,
    max_live: usize,
}

/// The elasticity arm: a diurnal workload against an autoscaled fleet
/// (2 of 4 slots live at t=0) vs the same 4 slots statically live.
fn run_elasticity(scale: Scale) -> (Vec<ElasticityRow>, f64) {
    let duration_s = match scale {
        Scale::Full => 200.0,
        Scale::Quick => 120.0,
    };
    let spec = TraceSpec {
        n_models: N_MODELS,
        arrival_rate: 2.4,
        duration_s,
        popularity: PopularityDist::Zipf { alpha: 1.5 },
        seed: CHAOS_SEED ^ 1,
    };
    let trace = Trace::generate_shaped(
        spec,
        Nonstationarity::Diurnal {
            period_s: duration_s,
            amplitude: 0.8,
        },
    );
    // The static fleet's p99 is the SLO both fleets are judged by.
    let (static_fleet, _) = run_cell("placement-aware", 4, &trace, None, None);
    let slo_s = static_fleet.merged.e2e_percentile(0.99);
    let elastic_chaos = ChaosConfig {
        autoscaler: Some(Autoscaler::new(1, 4)),
        initial_replicas: Some(2),
        seed: CHAOS_SEED ^ 1,
        ..ChaosConfig::default()
    };
    let (elastic, _) = run_cell("placement-aware", 4, &trace, Some(elastic_chaos), None);
    let row = |label: &str, report: &ClusterReport| {
        let windows = report.merged.windowed_attainment(WINDOW_S, slo_s, false);
        let (attained, counted) = windows
            .iter()
            .filter_map(|w| w.attainment)
            .fold((0usize, 0usize), |(a, n), att| {
                (a + (att >= ATTAIN_THRESHOLD) as usize, n + 1)
            });
        let chaos = report.chaos.as_ref();
        ElasticityRow {
            label: label.to_string(),
            requests: report.merged.len(),
            p99_e2e_s: report.merged.e2e_percentile(0.99),
            attained_windows_frac: attained as f64 / counted.max(1) as f64,
            scale_ups: chaos.map_or(0, |c| c.scale_ups),
            scale_downs: chaos.map_or(0, |c| c.scale_downs),
            min_live: chaos.map_or(4, |c| c.min_live),
            max_live: chaos.map_or(4, |c| c.max_live),
        }
    };
    (
        vec![
            row("static-4", &static_fleet),
            row("autoscaled-1..4", &elastic),
        ],
        slo_s,
    )
}

struct FlashRow {
    viral_model: usize,
    shock_at_s: f64,
    pre_shock_p99_s: f64,
    shock_p99_s: f64,
    rollout_remapped: usize,
    v2_served: usize,
}

/// The flash-rollout arm: a tail delta goes viral while a rolling
/// upgrade migrates its traffic to v2 mid-shock.
fn run_flash_rollout(scale: Scale) -> FlashRow {
    let duration_s = match scale {
        Scale::Full => 150.0,
        Scale::Quick => 90.0,
    };
    let shock_at = duration_s * 0.4;
    let viral = N_MODELS - 4;
    let v2 = N_MODELS - 3;
    let spec = TraceSpec {
        n_models: N_MODELS,
        arrival_rate: 2.0,
        duration_s,
        popularity: PopularityDist::Zipf { alpha: 1.3 },
        seed: CHAOS_SEED ^ 2,
    };
    let trace = Trace::generate_shaped(
        spec,
        Nonstationarity::FlashCrowd {
            model: viral,
            at_s: shock_at,
            boost: 300.0,
            decay_s: duration_s * 0.15,
            rate_surge: 0.5,
        },
    );
    let chaos = ChaosConfig {
        rollouts: vec![Rollout {
            model: viral,
            v2,
            start_s: shock_at + 5.0,
            duration_s: 20.0,
        }],
        seed: CHAOS_SEED ^ 2,
        ..ChaosConfig::default()
    };
    let (report, _) = run_cell("placement-aware", 4, &trace, Some(chaos), None);
    let pre = report.merged.subset("pre".into(), |r| r.arrival < shock_at);
    let shock = report.merged.subset("shock".into(), |r| {
        (shock_at..shock_at + 30.0).contains(&r.arrival)
    });
    FlashRow {
        viral_model: viral,
        shock_at_s: shock_at,
        pre_shock_p99_s: pre.e2e_percentile(0.99),
        shock_p99_s: shock.e2e_percentile(0.99),
        rollout_remapped: report.chaos.as_ref().map_or(0, |c| c.rollout_remapped),
        v2_served: report
            .merged
            .records
            .iter()
            .filter(|r| r.model == v2)
            .count(),
    }
}

/// The `bench-chaos` experiment. When `trace` is given, the
/// placement-aware recovery cell runs traced and its front-end +
/// replica lanes land there as `chaos/*`.
pub fn bench_chaos(
    scale: Scale,
    out_dir: &std::path::Path,
    trace: Option<&mut Vec<TraceTrack>>,
) -> Report {
    let sc = RecoveryScenario::at(scale);
    // Placement-aware runs first: its healthy tail sets the one
    // service-level SLO every policy is judged against (what an operator
    // provisioning this fleet would promise).
    let cfg = trace.is_some().then(TraceConfig::default);
    let (pa_row, tracks) = run_recovery("placement-aware", sc, None, cfg);
    if let Some(sink) = trace {
        for mut track in tracks {
            track.name = format!("chaos/{}", track.name);
            sink.push(track);
        }
    }
    let slo_s = pa_row.slo_s;
    let mut recovery = Vec::new();
    for policy in POLICIES.iter().filter(|p| **p != "placement-aware") {
        let (row, _) = run_recovery(policy, sc, Some(slo_s), None);
        recovery.push(row);
    }
    recovery.push(pa_row);
    let (elasticity, elastic_slo_s) = run_elasticity(scale);
    let flash = run_flash_rollout(scale);

    let mut body = format!(
        "Recovery arm: replica 0 crashes at {:.0} s, cold restart {:.0} s later \
         ({} replicas, zipf-1.5, {:.1} req/s/replica, {:.0} s; one service \
         SLO for all policies, {:.0} s windows, attainment threshold {:.0}%):\n\n",
        sc.crash_at_s,
        sc.down_for_s,
        sc.n_replicas,
        sc.rate_per_replica,
        sc.duration_s,
        WINDOW_S,
        ATTAIN_THRESHOLD * 100.0
    );
    body.push_str(&md_table(
        &[
            "router",
            "steady p99 (s)",
            "churn p99 (s)",
            "p99 inflation",
            "recovery (s)",
            "SLO-violated (s)",
            "lost in-flight",
        ],
        &recovery
            .iter()
            .map(|r| {
                vec![
                    r.policy.to_string(),
                    format!("{:.1}", r.steady_p99_s),
                    format!("{:.1}", r.churn_p99_s),
                    format!("{:.2}x", r.p99_inflation),
                    r.recovery_s
                        .map(|s| format!("{s:.0}"))
                        .unwrap_or_else(|| "never".into()),
                    format!("{:.0}", r.violated_s),
                    r.lost_in_flight.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    ));
    body.push_str(&format!(
        "\nElasticity arm: diurnal load (amplitude 0.8), autoscaled 1..4 vs \
         static 4 replicas (SLO {elastic_slo_s:.1} s = static fleet's p99):\n\n"
    ));
    body.push_str(&md_table(
        &[
            "fleet",
            "requests",
            "p99 E2E (s)",
            "windows attained",
            "scale ups",
            "scale downs",
            "live range",
        ],
        &elasticity
            .iter()
            .map(|r| {
                vec![
                    r.label.clone(),
                    r.requests.to_string(),
                    format!("{:.1}", r.p99_e2e_s),
                    format!("{:.0}%", r.attained_windows_frac * 100.0),
                    r.scale_ups.to_string(),
                    r.scale_downs.to_string(),
                    format!("{}..{}", r.min_live, r.max_live),
                ]
            })
            .collect::<Vec<_>>(),
    ));
    body.push_str(&format!(
        "\nFlash-rollout arm: model {} goes viral at {:.0} s (boost 300x, rate \
         surge 1.5x) while a 20 s rolling upgrade migrates it to v2:\n\n",
        flash.viral_model, flash.shock_at_s
    ));
    body.push_str(&md_table(
        &[
            "pre-shock p99 (s)",
            "shock p99 (s)",
            "remapped to v2",
            "v2 served",
        ],
        &[vec![
            format!("{:.1}", flash.pre_shock_p99_s),
            format!("{:.1}", flash.shock_p99_s),
            flash.rollout_remapped.to_string(),
            flash.v2_served.to_string(),
        ]],
    ));
    match write_json(&recovery, &elasticity, &flash, sc, out_dir) {
        Ok(path) => body.push_str(&format!("\njson: {path}\n")),
        Err(e) => body.push_str(&format!("\njson write failed: {e}\n")),
    }
    Report {
        id: "bench-chaos",
        title: "Chaos & elasticity: crash recovery, autoscaling, rolling rollout",
        body,
    }
}

fn write_json(
    recovery: &[RecoveryRow],
    elasticity: &[ElasticityRow],
    flash: &FlashRow,
    sc: RecoveryScenario,
    dir: &std::path::Path,
) -> std::io::Result<String> {
    std::fs::create_dir_all(dir)?;
    let mut json = String::from("{\n");
    json.push_str(&json_provenance(
        "bench-chaos",
        &[
            ("chaos_seed", CHAOS_SEED.to_string()),
            ("n_models", N_MODELS.to_string()),
            ("recovery_replicas", sc.n_replicas.to_string()),
            ("recovery_duration_s", format!("{:.1}", sc.duration_s)),
            ("crash_at_s", format!("{:.1}", sc.crash_at_s)),
            ("down_for_s", format!("{:.1}", sc.down_for_s)),
            ("window_s", format!("{WINDOW_S:.1}")),
            ("attain_threshold", format!("{ATTAIN_THRESHOLD:.2}")),
        ],
    ));
    json.push_str("  \"recovery\": [\n");
    for (i, r) in recovery.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"router\": \"{}\", \"steady_p99_s\": {:.3}, \"slo_s\": {:.3}, \
             \"churn_p99_s\": {:.3}, \"p99_inflation\": {:.3}, \"recovery_s\": {}, \
             \"violated_s\": {:.3}, \"lost_in_flight\": {}}}{}\n",
            r.policy,
            r.steady_p99_s,
            r.slo_s,
            r.churn_p99_s,
            r.p99_inflation,
            r.recovery_s
                .map(|s| format!("{s:.3}"))
                .unwrap_or_else(|| "null".into()),
            r.violated_s,
            r.lost_in_flight,
            if i + 1 == recovery.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n  \"elasticity\": [\n");
    for (i, r) in elasticity.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"fleet\": \"{}\", \"requests\": {}, \"p99_e2e_s\": {:.3}, \
             \"attained_windows_frac\": {:.4}, \"scale_ups\": {}, \"scale_downs\": {}, \
             \"min_live\": {}, \"max_live\": {}}}{}\n",
            r.label,
            r.requests,
            r.p99_e2e_s,
            r.attained_windows_frac,
            r.scale_ups,
            r.scale_downs,
            r.min_live,
            r.max_live,
            if i + 1 == elasticity.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"flash_rollout\": {{\"viral_model\": {}, \"shock_at_s\": {:.1}, \
         \"pre_shock_p99_s\": {:.3}, \"shock_p99_s\": {:.3}, \"rollout_remapped\": {}, \
         \"v2_served\": {}}}\n",
        flash.viral_model,
        flash.shock_at_s,
        flash.pre_shock_p99_s,
        flash.shock_p99_s,
        flash.rollout_remapped,
        flash.v2_served
    ));
    json.push_str("}\n");
    let path = dir.join("BENCH_chaos.json");
    std::fs::write(&path, json)?;
    Ok(path.display().to_string())
}

/// The deterministic chaos cell the `bench-smoke` perf gate measures:
/// `(recovery_s, churn_p99_inflation)` of the placement-aware recovery
/// scenario at quick scale. Simulated time — bit-for-bit reproducible —
/// so `ci/perf-baseline.json` bounds it tightly.
pub fn smoke_chaos_metrics() -> (f64, f64) {
    let sc = RecoveryScenario::at(Scale::Quick);
    let (row, _) = run_recovery("placement-aware", sc, None, None);
    // "Never recovered" would be a hard regression; surface it as a
    // sentinel the baseline's max bound rejects.
    let recovery = row.recovery_s.unwrap_or(f64::MAX);
    (recovery, row.p99_inflation)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_aware_recovers_faster_than_round_robin() {
        // The acceptance gate: after a replica crash, placement-aware +
        // prefetch keeps churn p99 inflation bounded (< 3x steady state)
        // and round-robin spends at least 2x longer in SLO violation.
        let sc = RecoveryScenario::at(Scale::Quick);
        let (pa, _) = run_recovery("placement-aware", sc, None, None);
        let (rr, _) = run_recovery("round-robin", sc, Some(pa.slo_s), None);
        assert!(pa.lost_in_flight > 0 || rr.lost_in_flight > 0, "crash bit");
        assert!(
            pa.p99_inflation < 3.0,
            "placement-aware churn p99 inflation {:.2}x must stay under 3x",
            pa.p99_inflation
        );
        assert!(
            pa.recovery_s.is_some(),
            "placement-aware must recover attainment within the run"
        );
        assert!(
            rr.violated_s >= 2.0 * pa.violated_s,
            "round-robin must violate the SLO at least 2x longer: \
             rr {:.1}s vs pa {:.1}s",
            rr.violated_s,
            pa.violated_s
        );
    }

    #[test]
    fn smoke_chaos_cell_is_deterministic() {
        let (r1, i1) = smoke_chaos_metrics();
        let (r2, i2) = smoke_chaos_metrics();
        assert_eq!(r1.to_bits(), r2.to_bits());
        assert_eq!(i1.to_bits(), i2.to_bits());
        assert!(r1.is_finite(), "smoke scenario must recover");
        assert!(i1 > 0.0);
    }
}
