//! Kernel-level figures: 6 (matmul formats), 7 (batched-matmul breakdown),
//! 17 (SBMM scaling in the number of models).

use super::{md_table, Report};
use dz_gpusim::kernel::{
    normalized_achieved_flops, sbmm_time, BatchedImpl, MatmulDesc, WeightFormat,
};
use dz_gpusim::spec::A800;

const INT1: WeightFormat = WeightFormat::Int {
    bits: 1,
    sparse24: false,
};
const INT2: WeightFormat = WeightFormat::Int {
    bits: 2,
    sparse24: false,
};
const INT4: WeightFormat = WeightFormat::Int {
    bits: 4,
    sparse24: false,
};
const INT4_SPARSE: WeightFormat = WeightFormat::Int {
    bits: 4,
    sparse24: true,
};

/// Figure 6: normalized achieved FLOPs vs input size per weight format.
pub fn fig6() -> Report {
    let k = 4096;
    let n = 4096;
    let formats: [(&str, WeightFormat); 5] = [
        ("Sparse Int4 x FP16 (Ours)", INT4_SPARSE),
        ("FP16 x FP16", WeightFormat::Fp16),
        ("Int1 x FP16", INT1),
        ("Int2 x FP16", INT2),
        ("Int4 x FP16", INT4),
    ];
    let mut rows = Vec::new();
    for exp in 0..=12u32 {
        let m = 1usize << exp;
        let mut row = vec![format!("2^{exp}")];
        for (_, fmt) in &formats {
            let norm = normalized_achieved_flops(
                &A800,
                &MatmulDesc {
                    m,
                    k,
                    n,
                    format: *fmt,
                },
            );
            row.push(format!("{norm:.3}"));
        }
        rows.push(row);
    }
    let header: Vec<&str> = std::iter::once("input size")
        .chain(formats.iter().map(|(n, _)| *n))
        .collect();
    let mut body = md_table(&header, &rows);
    let peak_sparse = normalized_achieved_flops(
        &A800,
        &MatmulDesc {
            m: 4096,
            k,
            n,
            format: INT4_SPARSE,
        },
    );
    let peak_dense = normalized_achieved_flops(
        &A800,
        &MatmulDesc {
            m: 4096,
            k,
            n,
            format: WeightFormat::Fp16,
        },
    );
    body.push_str(&format!(
        "\nSparse Int4 speedup over peak dense FP16 at large input: {:.2}x (paper: 1.6x)\n",
        peak_sparse / peak_dense
    ));
    Report {
        id: "fig6",
        title: "(Compressed) matrix multiplication performance",
        body,
    }
}

/// Figure 7: batched matmul execution time by implementation.
pub fn fig7() -> Report {
    let mut rows = Vec::new();
    for &(dim, label) in &[(2048usize, "2048x2048"), (4096, "4096x4096")] {
        for &n_models in &[16usize, 64] {
            let reqs = vec![1usize; n_models];
            let ms = |s| sbmm_time(&A800, &reqs, dim, dim, INT4_SPARSE, s) * 1e3;
            let fp16_loop = sbmm_time(
                &A800,
                &reqs,
                dim,
                dim,
                WeightFormat::Fp16,
                BatchedImpl::Fp16ForLoop,
            ) * 1e3;
            let fp16_bmm = sbmm_time(
                &A800,
                &reqs,
                dim,
                dim,
                WeightFormat::Fp16,
                BatchedImpl::Fp16Bmm,
            ) * 1e3;
            rows.push(vec![
                label.to_string(),
                n_models.to_string(),
                format!("{fp16_loop:.3}"),
                format!("{fp16_bmm:.3}"),
                format!("{:.3}", ms(BatchedImpl::NaiveForLoop)),
                format!("{:.3}", ms(BatchedImpl::SbmmPlus)),
            ]);
        }
    }
    Report {
        id: "fig7",
        title: "Batched matrix multiplication breakdown (ms)",
        body: md_table(
            &[
                "matrix",
                "models",
                "FP16 for-loop",
                "FP16 bmm",
                "Naive for-loop",
                "SBMM",
            ],
            &rows,
        ),
    }
}

/// Figure 17: SBMM kernel latency vs number of models at fixed requests.
pub fn fig17() -> Report {
    let total_reqs = 128usize;
    let dim = 2048usize;
    let mut body = String::new();
    for (dist_name, skewed) in [("Uniform", false), ("Zipf-1.5", true)] {
        let mut rows = Vec::new();
        for &n_models in &[1usize, 2, 4, 8, 16, 32, 64, 128] {
            let reqs: Vec<usize> = if skewed {
                // Zipf-1.5 split of the fixed request budget.
                let weights: Vec<f64> = (0..n_models)
                    .map(|i| 1.0 / ((i + 1) as f64).powf(1.5))
                    .collect();
                let total_w: f64 = weights.iter().sum();
                let mut alloc: Vec<usize> = weights
                    .iter()
                    .map(|w| ((w / total_w) * total_reqs as f64).round() as usize)
                    .collect();
                // Give remainder to the head model.
                let assigned: usize = alloc.iter().sum();
                alloc[0] += total_reqs.saturating_sub(assigned);
                alloc
            } else {
                vec![total_reqs / n_models; n_models]
            };
            let ms = |fmt, s| sbmm_time(&A800, &reqs, dim, dim, fmt, s) * 1e3;
            rows.push(vec![
                n_models.to_string(),
                format!("{:.3}", ms(WeightFormat::Fp16, BatchedImpl::Fp16ForLoop)),
                format!("{:.3}", ms(INT4_SPARSE, BatchedImpl::NaiveForLoop)),
                format!("{:.3}", ms(INT4_SPARSE, BatchedImpl::Sbmm)),
                format!("{:.3}", ms(INT4_SPARSE, BatchedImpl::SbmmPlus)),
            ]);
        }
        body.push_str(&format!("\n### {dist_name}\n\n"));
        body.push_str(&md_table(
            &["models", "FP16", "For-Loop", "Ours", "Ours+"],
            &rows,
        ));
    }
    Report {
        id: "fig17",
        title: "SBMM kernel latency vs number of models, fixed 128 requests (ms)",
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_report_contains_speedup_claim() {
        let r = fig6();
        assert!(r.body.contains("speedup over peak dense"));
        assert_eq!(r.body.lines().filter(|l| l.starts_with("| 2^")).count(), 13);
    }

    #[test]
    fn fig7_sbmm_column_is_fastest() {
        let r = fig7();
        for line in r
            .body
            .lines()
            .filter(|l| l.starts_with("| 2048") || l.starts_with("| 4096"))
        {
            let cells: Vec<f64> = line
                .split('|')
                .filter_map(|c| c.trim().parse::<f64>().ok())
                .collect();
            // cells = [models, fp16loop, bmm, naive, sbmm]
            let sbmm = cells[4];
            assert!(
                sbmm <= cells[1] && sbmm <= cells[2] && sbmm <= cells[3],
                "{line}"
            );
        }
    }

    #[test]
    fn fig17_ours_plus_scales_gently() {
        let r = fig17();
        // In the uniform section, Ours+ at 128 models must stay well under
        // For-Loop at 128 models.
        let uniform: Vec<&str> = r.body.lines().filter(|l| l.starts_with("| 128 ")).collect();
        let cells: Vec<f64> = uniform[0]
            .split('|')
            .filter_map(|c| c.trim().parse::<f64>().ok())
            .collect();
        let (for_loop, ours_plus) = (cells[2], cells[4]);
        assert!(ours_plus * 1.5 < for_loop, "{uniform:?}");
    }
}
