//! Ablation studies beyond the paper's figures, covering the design choices
//! DESIGN.md calls out: the scheduler's two mechanisms, the ΔCompress
//! reconstruction step, SBMM strategies end-to-end, and the §5.4 N-tuner.

use super::{md_table, Report, Scale};
use crate::experiments::quality::Zoo;
use dz_compress::calib::calibration_set;
use dz_compress::pipeline::{delta_compress, delta_compress_no_reconstruct, DeltaCompressConfig};
use dz_gpusim::kernel::BatchedImpl;
use dz_gpusim::shapes::ModelShape;
use dz_gpusim::spec::NodeSpec;
use dz_model::eval::task_accuracy;
use dz_model::tasks::{self, Corpus, Task};
use dz_model::zoo::preset;
use dz_serve::tuning::profile_best_n;
use dz_serve::{CostModel, DeltaZipConfig, DeltaZipEngine, Engine, PreemptionPolicy};
use dz_tensor::Rng;
use dz_workload::{PopularityDist, Trace, TraceSpec};

/// Scheduler ablation: skip-the-line and preemption toggled independently.
pub fn ablation_scheduler() -> Report {
    let cost = CostModel::new(NodeSpec::a800_node(4), ModelShape::llama13b());
    let trace = Trace::generate(TraceSpec {
        n_models: 32,
        arrival_rate: 1.5,
        duration_s: 180.0,
        popularity: PopularityDist::Zipf { alpha: 1.5 },
        seed: 0xAB1,
    });
    let mut rows = Vec::new();
    for (skip, preempt) in [
        (false, PreemptionPolicy::Never),
        (true, PreemptionPolicy::Never),
        (true, PreemptionPolicy::ParentFinish),
    ] {
        let m = DeltaZipEngine::new(
            cost,
            DeltaZipConfig {
                skip_the_line: skip,
                preemption: preempt,
                ..DeltaZipConfig::default()
            },
        )
        .run(&trace);
        rows.push(vec![
            format!("skip={skip}, preempt={}", preempt.enabled()),
            format!("{:.1}", m.mean_e2e()),
            format!("{:.2}", m.mean_ttft()),
            format!("{:.1}", m.ttft_percentile(0.9)),
            format!("{:.2}", m.throughput_rps()),
        ]);
    }
    Report {
        id: "ablation-scheduler",
        title: "Scheduler mechanisms: plain FCFS vs skip-the-line vs +preemption",
        body: md_table(
            &[
                "config",
                "mean E2E (s)",
                "mean TTFT (s)",
                "p90 TTFT (s)",
                "req/s",
            ],
            &rows,
        ),
    }
}

/// SBMM strategy ablation, end to end (not just the kernel microbenchmark).
pub fn ablation_sbmm() -> Report {
    let cost = CostModel::new(NodeSpec::a800_node(4), ModelShape::llama13b());
    let trace = Trace::generate(TraceSpec {
        n_models: 32,
        arrival_rate: 1.0,
        duration_s: 180.0,
        popularity: PopularityDist::Uniform,
        seed: 0xAB2,
    });
    let mut rows = Vec::new();
    for (name, strategy) in [
        ("naive for-loop", BatchedImpl::NaiveForLoop),
        ("reorder only (Ours)", BatchedImpl::Sbmm),
        ("fused launch (Ours+)", BatchedImpl::SbmmPlus),
    ] {
        let m = DeltaZipEngine::new(
            cost,
            DeltaZipConfig {
                strategy,
                ..DeltaZipConfig::default()
            },
        )
        .run(&trace);
        rows.push(vec![
            name.to_string(),
            format!("{:.1}", m.mean_e2e()),
            format!("{:.2}", m.mean_ttft()),
            format!("{:.2}", m.throughput_rps()),
        ]);
    }
    Report {
        id: "ablation-sbmm",
        title: "End-to-end impact of the SBMM kernel strategy",
        body: md_table(
            &["strategy", "mean E2E (s)", "mean TTFT (s)", "req/s"],
            &rows,
        ),
    }
}

/// ΔCompress reconstruction ablation (Line 6 of Algorithm 1) on accuracy.
pub fn ablation_reconstruct(zoo: &mut Zoo) -> Report {
    let p = preset("llama-tiny-m").expect("preset exists");
    let base = zoo.base(&p);
    let tuned = zoo.fmt_mixture(&p);
    let calib = calibration_set(&Corpus::new(p.config.max_seq), 12, 0xCA11B);
    let task_list: Vec<Box<dyn Task>> = vec![
        Box::new(tasks::BoolQTask),
        Box::new(tasks::NliTask),
        Box::new(tasks::RecallTask),
    ];
    let mut rows = Vec::new();
    for bits in [4u32, 2] {
        let (_, with) = delta_compress(&base, &tuned, &calib, DeltaCompressConfig::starred(bits));
        let (_, without) = delta_compress_no_reconstruct(
            &base,
            &tuned,
            &calib,
            DeltaCompressConfig::starred(bits),
        );
        for (label, model) in [("with reconstruct", &with), ("no reconstruct", &without)] {
            let accs: Vec<String> = task_list
                .iter()
                .map(|t| {
                    format!(
                        "{:.1}",
                        task_accuracy(model, t.as_ref(), 300, &mut Rng::seeded(0xAB3)) * 100.0
                    )
                })
                .collect();
            rows.push([vec![format!("{bits}bit*"), label.to_string()], accs].concat());
        }
    }
    Report {
        id: "ablation-reconstruct",
        title: "Algorithm 1 Line 6 ablation: per-layer weight reconstruction (accuracy %)",
        body: md_table(&["config", "variant", "boolq", "nli", "recall"], &rows),
    }
}

/// The §5.4 offline N-profiling procedure in action.
pub fn tuning_demo() -> Report {
    let cost = CostModel::new(NodeSpec::rtx3090_node(2), ModelShape::llama7b());
    let profile = profile_best_n(
        cost,
        DeltaZipConfig::default(),
        TraceSpec {
            n_models: 12,
            arrival_rate: 3.0,
            duration_s: 25.0,
            popularity: PopularityDist::Zipf { alpha: 4.0 },
            seed: 0xAB4,
        },
        &[1, 2, 3, 4, 6, 8],
    );
    let rows: Vec<Vec<String>> = profile
        .candidates
        .iter()
        .map(|&(n, t)| vec![n.to_string(), format!("{t:.3}")])
        .collect();
    let mut body = md_table(&["N", "mean time/token (s)"], &rows);
    body.push_str(&format!("\nProfiler picks N = {}\n", profile.best_n));
    Report {
        id: "tuning-n",
        title: "Offline profiling to choose N concurrent deltas (§5.4)",
        body,
    }
}

/// Keeps `Scale` in the public path for future ablation knobs.
pub fn _scale_hint(_: Scale) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduler_ablation_shows_batching_value() {
        let r = ablation_scheduler();
        // Extract mean E2E of the first (plain FCFS) and last (full) rows.
        let vals: Vec<f64> = r
            .body
            .lines()
            .filter(|l| l.contains("skip="))
            .map(|l| l.split('|').nth(2).unwrap().trim().parse::<f64>().unwrap())
            .collect();
        assert_eq!(vals.len(), 3);
        assert!(
            vals[2] <= vals[0] * 1.05,
            "full scheduler should not lose to plain FCFS: {vals:?}"
        );
    }

    #[test]
    fn tuning_demo_reports_a_choice() {
        let r = tuning_demo();
        assert!(r.body.contains("Profiler picks N ="));
    }
}
