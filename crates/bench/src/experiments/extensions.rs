//! Experiments for the paper's §8 extensions implemented in this repo:
//! PEFT methods beyond LoRA (RoSA, GaLore), length-aware preemption,
//! resume-policy selection, SLO-class scheduling, online `N` tuning, and
//! the hierarchical (disk-tier) delta cache.

use super::{md_table, Report, Scale};
use crate::experiments::quality::Zoo;
use dz_compress::calib::calibration_set;
use dz_compress::pipeline::{delta_compress, DeltaCompressConfig};
use dz_gpusim::shapes::ModelShape;
use dz_gpusim::spec::NodeSpec;
use dz_model::eval::task_accuracy;
use dz_model::galore::{finetune_galore, low_rank_residual, GaloreConfig};
use dz_model::lora::{LoraAdapter, LoraConfig};
use dz_model::rosa::{finetune_rosa, RosaAdapter, RosaConfig};
use dz_model::tasks::{Corpus, MathTask};
use dz_model::train::TrainConfig;
use dz_model::zoo::preset;
use dz_serve::predictor::LengthEstimator;
use dz_serve::slo::SloPolicy;
use dz_serve::tuning::{DynamicN, DynamicNConfig};
use dz_serve::{
    CostModel, DeltaZipConfig, DeltaZipEngine, Engine, Metrics, PreemptionPolicy, ResumePolicy,
};
use dz_tensor::Rng;
use dz_workload::{PopularityDist, Trace, TraceSpec};

fn a800_13b() -> CostModel {
    CostModel::new(NodeSpec::a800_node(4), ModelShape::llama13b())
}

/// PEFT beyond LoRA (§8): RoSA and GaLore against LoRA, FMT and ΔCompress
/// on the hard (math) task, with artifact sizes and the rank evidence for
/// why each method needs the adapter or the delta serving path.
///
/// Adapter training on the carry task is strongly seed-sensitive at tiny
/// scale (a grokking-style transition), so LoRA and RoSA take the best of
/// three seeds — the analog of the "extensive hyper-parameter tuning" the
/// paper grants LoRA for Table 2.
pub fn ext_peft(zoo: &mut Zoo, scale: Scale) -> Report {
    let p = preset("llama-tiny-m").expect("preset exists");
    let task = MathTask;
    let rank = 8;
    let steps = scale.steps(1000);
    let n_eval = 300;
    let seeds = [0x10Au64, 0x10B, 0xE82];

    let base = zoo.base(&p);
    let fmt = zoo.fmt_on(&p, &task);

    let eval = |m: &dz_model::Params| task_accuracy(m, &task, n_eval, &mut Rng::seeded(0xE7A1));
    let train_at = |seed: u64| TrainConfig {
        steps,
        batch: 8,
        lr: 1e-2,
        clip: 1.0,
        seed,
    };

    let lora_merged = seeds
        .iter()
        .map(|&seed| {
            let mut adapter =
                LoraAdapter::init(&base, LoraConfig::rank(rank), &mut Rng::seeded(seed ^ 8));
            dz_model::lora::finetune_lora(&base, &mut adapter, &task, train_at(seed));
            adapter.merge(&base)
        })
        .max_by(|a, b| eval(a).partial_cmp(&eval(b)).expect("finite accuracy"))
        .expect("non-empty seed list");

    let (rosa, rosa_merged) = seeds
        .iter()
        .map(|&seed| {
            let mut adapter = RosaAdapter::init(
                &base,
                RosaConfig::new(rank, 0.05),
                &mut Rng::seeded(seed ^ 8),
            );
            finetune_rosa(&base, &mut adapter, &task, train_at(seed));
            let merged = adapter.merge(&base);
            (adapter, merged)
        })
        .max_by(|a, b| {
            eval(&a.1)
                .partial_cmp(&eval(&b.1))
                .expect("finite accuracy")
        })
        .expect("non-empty seed list");

    let mut galore_model = base.clone();
    finetune_galore(
        &mut galore_model,
        &task,
        TrainConfig {
            steps,
            batch: 8,
            lr: 2e-3,
            clip: 1.0,
            seed: 0xE83,
        },
        GaloreConfig::rank(rank),
    );

    let calib = calibration_set(&Corpus::new(p.config.max_seq), 12, 0xCA11B);
    let (fmt_delta, fmt_served) =
        delta_compress(&base, &fmt, &calib, DeltaCompressConfig::starred(4));
    let (galore_delta, galore_served) = delta_compress(
        &base,
        &galore_model,
        &calib,
        DeltaCompressConfig::starred(4),
    );

    let acc = |m: &dz_model::Params| {
        format!(
            "{:.1}",
            task_accuracy(m, &task, n_eval, &mut Rng::seeded(0xE7A1)) * 100.0
        )
    };
    let mib = |b: usize| format!("{:.2}", b as f64 / (1 << 20) as f64);
    let lora_bytes =
        LoraAdapter::init(&base, LoraConfig::rank(rank), &mut Rng::seeded(1)).fp16_bytes();
    let residual = |m: &dz_model::Params| {
        let name = "layer0.wq";
        let delta = m
            .get(name)
            .expect("projection exists")
            .sub(base.get(name).expect("projection exists"));
        format!(
            "{:.2}",
            low_rank_residual(&delta, rank, &mut Rng::seeded(2))
        )
    };

    let rows = vec![
        vec![
            "Base".into(),
            acc(&base),
            "-".into(),
            "-".into(),
            "-".into(),
        ],
        vec![
            format!("LoRA (r={rank})"),
            acc(&lora_merged),
            mib(lora_bytes),
            residual(&lora_merged),
            "adapter".into(),
        ],
        vec![
            format!("RoSA (r={rank}, d=5%)"),
            acc(&rosa_merged),
            mib(rosa.serving_bytes()),
            residual(&rosa_merged),
            "adapter (sparse ext.)".into(),
        ],
        vec![
            format!("GaLore (r={rank})"),
            acc(&galore_model),
            mib(galore_model.fp16_bytes()),
            residual(&galore_model),
            "delta only".into(),
        ],
        vec![
            "FMT".into(),
            acc(&fmt),
            mib(fmt.fp16_bytes()),
            residual(&fmt),
            "delta only".into(),
        ],
        vec![
            "ΔCompress(FMT, 4bit*)".into(),
            acc(&fmt_served),
            mib(fmt_delta.packed_bytes()),
            residual(&fmt_served),
            "delta (compressed)".into(),
        ],
        vec![
            "ΔCompress(GaLore, 4bit*)".into(),
            acc(&galore_served),
            mib(galore_delta.packed_bytes()),
            residual(&galore_served),
            "delta (compressed)".into(),
        ],
    ];
    Report {
        id: "ext-peft",
        title: "PEFT beyond LoRA (§8): accuracy, artifact size (MiB), \
                rank-residual of layer0.wq delta, serving path",
        body: md_table(
            &[
                "method",
                "math acc (%)",
                "artifact MiB",
                "rank-res",
                "serving path",
            ],
            &rows,
        ),
    }
}

// The fig19 starvation regime: few concurrent deltas, heavy head, an
// overdriven rate — where the preemption mechanisms actually bind.
fn preemption_heavy_trace(seed: u64) -> Trace {
    Trace::generate(TraceSpec {
        n_models: 32,
        arrival_rate: 4.0,
        duration_s: 180.0,
        popularity: PopularityDist::Zipf { alpha: 1.5 },
        seed,
    })
}

/// Resume-policy ablation (§8: "whether and when recomputing from scratch
/// may be faster than swap-and-resume").
pub fn ablation_resume() -> Report {
    let cost = a800_13b();
    let trace = preemption_heavy_trace(0xE51);
    let mut rows = Vec::new();
    for (name, resume) in [
        ("swap to host (paper)", ResumePolicy::SwapToHost),
        ("recompute", ResumePolicy::Recompute),
        ("cost-based", ResumePolicy::CostBased),
    ] {
        let mut e = DeltaZipEngine::new(
            cost,
            DeltaZipConfig {
                max_concurrent_deltas: 3,
                max_batch: 32,
                resume,
                ..DeltaZipConfig::default()
            },
        );
        let m = e.run(&trace);
        let preemptions: usize = m.records.iter().map(|r| r.preemptions).sum();
        rows.push(vec![
            name.to_string(),
            format!("{:.1}", m.mean_e2e()),
            format!("{:.2}", m.mean_ttft()),
            format!("{:.1}", m.e2e_percentile(0.9)),
            preemptions.to_string(),
        ]);
    }
    Report {
        id: "ablation-resume",
        title: "Resume policy for preempted requests (s)",
        body: md_table(
            &["policy", "mean E2E", "mean TTFT", "p90 E2E", "preemptions"],
            &rows,
        ),
    }
}

/// Length-aware preemption ablation (§8's output-length-prediction fix),
/// comparing the paper's parent-finish rule with sparing nearly-finished
/// children under the online and oracle estimators.
pub fn ablation_length_aware() -> Report {
    let cost = a800_13b();
    let trace = preemption_heavy_trace(0xE52);
    let mut rows = Vec::new();
    let runs: Vec<(&str, PreemptionPolicy, LengthEstimator)> = vec![
        (
            "parent-finish (paper)",
            PreemptionPolicy::ParentFinish,
            LengthEstimator::default(),
        ),
        (
            "length-aware, online mean",
            PreemptionPolicy::LengthAware { spare_tokens: 16 },
            LengthEstimator::default(),
        ),
        (
            "length-aware, online p75",
            PreemptionPolicy::LengthAware { spare_tokens: 16 },
            LengthEstimator::quantile(0.75),
        ),
        (
            "length-aware, oracle",
            PreemptionPolicy::LengthAware { spare_tokens: 16 },
            LengthEstimator::Oracle,
        ),
        ("never", PreemptionPolicy::Never, LengthEstimator::default()),
    ];
    for (name, preemption, estimator) in runs {
        let mut e = DeltaZipEngine::new(
            cost,
            DeltaZipConfig {
                max_concurrent_deltas: 3,
                max_batch: 32,
                preemption,
                ..DeltaZipConfig::default()
            },
        )
        .with_estimator(estimator);
        let m = e.run(&trace);
        let preemptions: usize = m.records.iter().map(|r| r.preemptions).sum();
        rows.push(vec![
            name.to_string(),
            format!("{:.1}", m.mean_e2e()),
            format!("{:.2}", m.mean_ttft()),
            format!("{:.1}", m.ttft_percentile(0.9)),
            preemptions.to_string(),
        ]);
    }
    Report {
        id: "ablation-length-aware",
        title: "Starvation handling with output-length prediction (s)",
        body: md_table(
            &["policy", "mean E2E", "mean TTFT", "p90 TTFT", "preemptions"],
            &rows,
        ),
    }
}

/// SLO-class scheduling (§8: prioritizing models by their constraints).
pub fn ablation_slo() -> Report {
    let cost = a800_13b();
    let trace = Trace::generate(TraceSpec {
        n_models: 32,
        arrival_rate: 2.0,
        duration_s: 180.0,
        popularity: PopularityDist::Zipf { alpha: 1.2 },
        seed: 0xE53,
    });
    let policy = SloPolicy::tiered(32, 4);
    let plain = DeltaZipEngine::new(
        cost,
        DeltaZipConfig {
            max_concurrent_deltas: 4,
            max_batch: 32,
            ..DeltaZipConfig::default()
        },
    )
    .run(&trace);
    let prioritized = DeltaZipEngine::new(
        cost,
        DeltaZipConfig {
            max_concurrent_deltas: 4,
            max_batch: 32,
            ..DeltaZipConfig::default()
        },
    )
    .with_slo_policy(policy.clone())
    .run(&trace);
    let mut rows = Vec::new();
    for (engine, m) in [("FCFS", &plain), ("SLO-priority", &prioritized)] {
        for (class, sub) in policy.split_metrics(m) {
            let target = class.ttft_target_s();
            rows.push(vec![
                engine.to_string(),
                format!("{class:?}"),
                sub.len().to_string(),
                format!("{:.2}", sub.mean_ttft()),
                format!("{:.1}", sub.ttft_percentile(0.9)),
                format!("{:.0}%", sub.slo_attainment_ttft(target) * 100.0),
            ]);
        }
    }
    Report {
        id: "ablation-slo",
        title: "SLO classes: per-class TTFT with and without priority scheduling",
        body: md_table(
            &[
                "scheduler",
                "class",
                "requests",
                "mean TTFT (s)",
                "p90 TTFT (s)",
                "attain@target",
            ],
            &rows,
        ),
    }
}

/// Online `N` tuning on a regime-shift workload (§5.4 "dynamic tuning").
pub fn ablation_dynamic_n() -> Report {
    let cost = CostModel::new(NodeSpec::rtx3090_node(2), ModelShape::llama7b());
    // Phase 1: heavy skew (few hot deltas, small N is right). Phase 2:
    // uniform popularity (many live deltas, large N is right).
    let skewed = Trace::generate(TraceSpec {
        n_models: 12,
        arrival_rate: 3.0,
        duration_s: 90.0,
        popularity: PopularityDist::Zipf { alpha: 4.0 },
        seed: 0xE54,
    });
    let uniform = Trace::generate(TraceSpec {
        n_models: 12,
        arrival_rate: 1.5,
        duration_s: 90.0,
        popularity: PopularityDist::Uniform,
        seed: 0xE55,
    });
    let trace = skewed.then(&uniform);
    let run_fixed = |n: usize| {
        DeltaZipEngine::new(
            cost,
            DeltaZipConfig {
                max_concurrent_deltas: n,
                ..DeltaZipConfig::default()
            },
        )
        .run(&trace)
    };
    let mut rows = Vec::new();
    let describe = |name: &str, m: &Metrics, rows: &mut Vec<Vec<String>>| {
        rows.push(vec![
            name.to_string(),
            format!("{:.3}", m.mean_time_per_token()),
            format!("{:.1}", m.mean_e2e()),
            format!("{:.2}", m.mean_ttft()),
        ]);
    };
    describe("fixed N=2", &run_fixed(2), &mut rows);
    describe("fixed N=12", &run_fixed(12), &mut rows);
    let ctl = DynamicN::new(
        DynamicNConfig {
            min_n: 2,
            max_n: 12,
            ..DynamicNConfig::default()
        },
        4,
    );
    let dynamic = DeltaZipEngine::new(
        cost,
        DeltaZipConfig {
            max_concurrent_deltas: 4,
            ..DeltaZipConfig::default()
        },
    )
    .with_dynamic_n(ctl)
    .run(&trace);
    describe("dynamic N (2..12)", &dynamic, &mut rows);
    Report {
        id: "ablation-dynamic-n",
        title: "Online N tuning on a skew-shift trace (zipf-4.0 -> uniform)",
        body: md_table(
            &["engine", "time/token (s)", "mean E2E (s)", "mean TTFT (s)"],
            &rows,
        ),
    }
}

/// Hierarchical delta management (§5.4 scalability): sweeping the host-DRAM
/// cache capacity shows the graceful degradation to disk loads.
///
/// Uses the small (2x RTX 3090) node so GPU memory holds only a fraction
/// of the 64 deltas — on the big node everything stays GPU-resident and
/// the host tier never binds.
pub fn ext_scalability() -> Report {
    let cost = CostModel::new(NodeSpec::rtx3090_node(2), ModelShape::llama7b());
    let trace = Trace::generate(TraceSpec {
        n_models: 64,
        arrival_rate: 0.5,
        duration_s: 300.0,
        popularity: PopularityDist::Uniform,
        seed: 0xE56,
    });
    let mut rows = Vec::new();
    for cap in [Some(8usize), Some(16), Some(32), Some(48), None] {
        let m = DeltaZipEngine::new(
            cost,
            DeltaZipConfig {
                max_concurrent_deltas: 8,
                host_capacity_deltas: cap,
                ..DeltaZipConfig::default()
            },
        )
        .run(&trace);
        let label = cap.map_or("unbounded".to_string(), |c| c.to_string());
        let load_total: f64 = m.records.iter().map(|r| r.load_s).sum();
        rows.push(vec![
            label,
            format!("{:.1}", m.mean_e2e()),
            format!("{:.2}", m.mean_ttft()),
            format!("{:.1}", load_total / m.len().max(1) as f64),
        ]);
    }
    Report {
        id: "ext-scalability",
        title: "Host-cache capacity sweep (64 variants): disk-tier degradation",
        body: md_table(
            &[
                "host cache (deltas)",
                "mean E2E (s)",
                "mean TTFT (s)",
                "mean load wait (s)",
            ],
            &rows,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resume_ablation_covers_every_policy() {
        let r = ablation_resume();
        for name in ["swap to host (paper)", "recompute", "cost-based"] {
            assert!(r.body.contains(name), "missing row for {name}");
        }
    }

    #[test]
    fn slo_ablation_reports_both_schedulers() {
        let r = ablation_slo();
        assert!(r.body.contains("FCFS"));
        assert!(r.body.contains("SLO-priority"));
        assert!(r.body.contains("Interactive"));
    }

    #[test]
    fn dynamic_n_is_never_far_from_the_best_fixed_choice() {
        let r = ablation_dynamic_n();
        let vals: Vec<f64> = r
            .body
            .lines()
            .filter(|l| l.contains("fixed") || l.contains("dynamic"))
            .map(|l| {
                l.split('|')
                    .nth(2)
                    .expect("time/token column")
                    .trim()
                    .parse::<f64>()
                    .expect("numeric time/token")
            })
            .collect();
        assert_eq!(vals.len(), 3);
        let best_fixed = vals[0].min(vals[1]);
        assert!(
            vals[2] <= best_fixed * 1.35,
            "dynamic {} should track best fixed {best_fixed}",
            vals[2]
        );
    }

    #[test]
    fn scalability_degrades_monotonically_in_spirit() {
        let r = ext_scalability();
        let e2e: Vec<f64> = r
            .body
            .lines()
            .filter(|l| l.contains("| ") && !l.contains("host cache") && !l.contains("---"))
            .map(|l| {
                l.split('|')
                    .nth(2)
                    .expect("E2E column")
                    .trim()
                    .parse::<f64>()
                    .expect("numeric E2E")
            })
            .collect();
        assert_eq!(e2e.len(), 5);
        // The tightest cache must not beat the unbounded one.
        assert!(
            e2e[0] >= e2e[4] * 0.99,
            "tight {} vs unbounded {}",
            e2e[0],
            e2e[4]
        );
    }
}
