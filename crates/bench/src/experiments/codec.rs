//! Codec throughput experiment: the decode fast path measured end to end.
//!
//! `bench-lossless` times the three decode paths (serial tree-walk
//! reference, single-threaded LUT, page-parallel) on a packed-delta-like
//! corpus and an incompressible one, then drives a real `.dza` artifact
//! through [`dz_store::TieredDeltaStore::fetch_decoded`] so the measured
//! store-level decode throughput — the number the serving cost model now
//! consumes — appears in the same report. Alongside the rendered markdown
//! it emits a machine-readable `BENCH_lossless.json` next to the other
//! experiment artifacts.

use super::{json_provenance, md_table, Report, Scale};
use dz_store::{sha256, Registry, TieredDeltaStore};
use dz_tensor::Rng;
use std::time::Instant;

/// Packed-delta-like corpus: quantized deltas are low-entropy integer
/// streams with runs of zero levels; synthesize the same flavor of data.
/// Shared with the criterion `lossless-decode` bench so the acceptance
/// gate and the experiment measure the same corpus.
pub fn packed_delta_like(n: usize, seed: u64) -> Vec<u8> {
    let mut rng = Rng::seeded(seed);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        if rng.bernoulli(0.6) {
            let run = 1 + rng.below(24);
            out.extend(std::iter::repeat_n(0u8, run.min(n - out.len())));
        } else {
            out.push(rng.below(256) as u8);
        }
    }
    out
}

/// Incompressible corpus (uniform random bytes): exercises the stored-page
/// and CRC path rather than the Huffman decoder.
pub fn incompressible(n: usize, seed: u64) -> Vec<u8> {
    let mut rng = Rng::seeded(seed);
    (0..n).map(|_| rng.below(256) as u8).collect()
}

/// Best-of-`iters` wall time of `f`, in seconds.
fn best_of<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

struct Measurement {
    corpus: &'static str,
    path: &'static str,
    mb_s: f64,
    speedup: f64,
}

/// The `bench-lossless` experiment.
pub fn bench_lossless(scale: Scale, out_dir: &std::path::Path) -> Report {
    let n = match scale {
        Scale::Full => 8usize << 20,
        Scale::Quick => 2usize << 20,
    };
    let iters = match scale {
        Scale::Full => 5,
        Scale::Quick => 3,
    };
    let corpora = [
        ("packed-delta", packed_delta_like(n, 7)),
        ("incompressible", incompressible(n, 11)),
    ];
    type DecodeFn<'a> = Box<dyn Fn() + 'a>;
    let mut measurements: Vec<Measurement> = Vec::new();
    for (corpus, data) in &corpora {
        let compressed = dz_lossless::compress(data);
        let paths: [(&'static str, DecodeFn<'_>); 3] = [
            (
                "reference",
                Box::new(|| {
                    dz_lossless::decompress_reference(&compressed).expect("reference");
                }),
            ),
            (
                "lut-1-thread",
                Box::new(|| {
                    dz_lossless::decompress_with_threads(&compressed, 1).expect("lut");
                }),
            ),
            (
                "parallel",
                Box::new(|| {
                    dz_lossless::decompress(&compressed).expect("parallel");
                }),
            ),
        ];
        let mut reference_mb_s = 0.0;
        for (path, f) in paths {
            let best = best_of(iters, f);
            let mb_s = data.len() as f64 / best / 1e6;
            if path == "reference" {
                reference_mb_s = mb_s;
            }
            measurements.push(Measurement {
                corpus,
                path,
                mb_s,
                speedup: mb_s / reference_mb_s,
            });
        }
    }

    // Store-level: one artifact through the pipelined decoded fetch.
    let store_gbps = measure_store_decode();

    let rows: Vec<Vec<String>> = measurements
        .iter()
        .map(|m| {
            vec![
                m.corpus.to_string(),
                m.path.to_string(),
                format!("{:.1}", m.mb_s),
                format!("{:.2}x", m.speedup),
            ]
        })
        .collect();
    let mut body = md_table(&["corpus", "decode path", "MB/s", "vs reference"], &rows);
    match store_gbps {
        Some(gbps) => body.push_str(&format!(
            "\nstore fetch_decoded measured throughput: {:.3} GB/s (compressed)\n",
            gbps
        )),
        None => body.push_str("\nstore fetch_decoded measurement unavailable\n"),
    }
    match write_json(&measurements, store_gbps, n, out_dir) {
        Ok(path) => body.push_str(&format!("json: {path}\n")),
        Err(e) => body.push_str(&format!("json write failed: {e}\n")),
    }
    Report {
        id: "bench-lossless",
        title: "Decode pipeline throughput (LUT + parallel pages + pipelined store reads)",
        body,
    }
}

/// Publishes a synthetic multi-tensor delta into a temp registry and times
/// a decoded fetch; returns the store's measured compressed GB/s.
fn measure_store_decode() -> Option<f64> {
    use dz_compress::codec::{CodecId, PackedLayer};
    use dz_compress::pack::CompressedMatrix;
    use dz_compress::pipeline::{CompressedDelta, DeltaCompressConfig, SizeReport};
    use dz_compress::quant::{quantize_slice, QuantSpec};
    use dz_tensor::Matrix;
    use std::collections::BTreeMap;

    let dir = std::env::temp_dir().join(format!("dz-bench-codec-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let registry = Registry::open(&dir).ok()?;
    let mut rng = Rng::seeded(42);
    let spec = QuantSpec::new(4, 8);
    let mut layers = BTreeMap::new();
    for i in 0..8 {
        let d = 96;
        let wt = Matrix::randn(d, d, 0.05, &mut rng);
        let mut levels = Vec::new();
        let mut scales = Vec::new();
        for r in 0..d {
            let (l, s) = quantize_slice(wt.row(r), spec);
            levels.extend(l);
            scales.extend(s);
        }
        layers.insert(
            format!("layers.{i}.w"),
            PackedLayer::Quant(CompressedMatrix::from_dense(d, d, &levels, scales, spec)),
        );
    }
    let delta = CompressedDelta {
        layers,
        rest: BTreeMap::new(),
        codec: CodecId::SparseGptStar,
        config: DeltaCompressConfig::starred(4),
        report: SizeReport {
            compressed_linear_bytes: 1,
            uncompressed_rest_bytes: 0,
            full_fp16_bytes: 1,
            lossless_linear_bytes: None,
        },
    };
    let id = registry
        .publish_delta("bench-delta", sha256(b"base"), &delta)
        .ok()?;
    let mut store = TieredDeltaStore::new(registry, 1 << 30);
    store.fetch_decoded(&id).ok()?;
    let gbps = store.decode_throughput().effective_gbps();
    std::fs::remove_dir_all(&dir).ok();
    gbps
}

/// Hand-rolled JSON (no serde dependency in this crate): one object per
/// measurement plus the store-level figure.
fn write_json(
    measurements: &[Measurement],
    store_gbps: Option<f64>,
    corpus_bytes: usize,
    dir: &std::path::Path,
) -> std::io::Result<String> {
    std::fs::create_dir_all(dir)?;
    let mut json = String::from("{\n");
    json.push_str(&json_provenance(
        "bench-lossless",
        &[("corpus_bytes", corpus_bytes.to_string())],
    ));
    json.push_str("  \"corpus_bytes\": ");
    json.push_str(&corpus_bytes.to_string());
    json.push_str(",\n  \"decode\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"corpus\": \"{}\", \"path\": \"{}\", \"mb_per_s\": {:.1}, \"speedup_vs_reference\": {:.3}}}{}\n",
            m.corpus,
            m.path,
            m.mb_s,
            m.speedup,
            if i + 1 == measurements.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n  \"store_fetch_decoded_gbps\": ");
    match store_gbps {
        Some(g) => json.push_str(&format!("{g:.4}\n")),
        None => json.push_str("null\n"),
    }
    json.push_str("}\n");
    let path = dir.join("BENCH_lossless.json");
    std::fs::write(&path, json)?;
    Ok(path.display().to_string())
}
