//! Model-quality experiments: Table 1, Table 2, Figures 2, 3, 5.
//!
//! These train real (tiny) models: each family's base is pre-trained on the
//! synthetic corpus and fine-tuned on its evaluation tasks, then compressed
//! with ΔCompress and the baselines. Training dominates the runtime, so the
//! [`Zoo`] caches every trained artifact for reuse across experiments.

use super::{md_table, Report, Scale};
use dz_compress::baselines::{awq_quantize, sparsegpt_direct};
use dz_compress::calib::calibration_set;
use dz_compress::pipeline::{delta_compress, DeltaCompressConfig};
use dz_lossless::compress as lossless_compress;
use dz_model::eval::task_accuracy;
use dz_model::lora::{finetune_lora, LoraAdapter, LoraConfig};
use dz_model::tasks::{self, Corpus, Task};
use dz_model::train::{finetune_fmt, pretrain, train, BatchItem, TrainConfig};
use dz_model::transformer::Params;
use dz_model::zoo::{preset, ModelPreset};
use dz_tensor::stats::{Histogram, Summary};
use dz_tensor::Rng;
use std::collections::HashMap;

/// Evaluation tasks per model family (paper-task analogs).
pub(crate) fn family_tasks(preset_name: &str) -> Vec<Box<dyn Task>> {
    if preset_name.starts_with("pythia") {
        // Amazon Review / Synthetic Palindrome / Yes-No Question.
        vec![
            Box::new(tasks::SentimentTask),
            Box::new(tasks::PalindromeTask),
            Box::new(tasks::BoolQTask),
        ]
    } else {
        // BoolQA / TruthfulQA / LogiQA analogs.
        vec![
            Box::new(tasks::BoolQTask),
            Box::new(tasks::NliTask),
            Box::new(tasks::RecallTask),
        ]
    }
}

/// Cache of trained models, keyed by preset / task / method.
#[derive(Default)]
pub struct Zoo {
    bases: HashMap<String, Params>,
    fmt_mix: HashMap<String, Params>,
    fmt_task: HashMap<(String, &'static str), Params>,
    lora_task: HashMap<(String, &'static str, usize), Params>,
    scale: Option<Scale>,
}

impl Zoo {
    /// Creates an empty zoo at the given scale.
    pub fn new(scale: Scale) -> Self {
        Zoo {
            scale: Some(scale),
            ..Zoo::default()
        }
    }

    fn scale(&self) -> Scale {
        self.scale.unwrap_or(Scale::Full)
    }

    /// Pre-trained base for a preset (cached).
    pub fn base(&mut self, p: &ModelPreset) -> Params {
        let steps = self.scale().steps(400);
        self.bases
            .entry(p.name.to_string())
            .or_insert_with(|| {
                let mut rng = Rng::seeded(0xBA5E ^ p.name.len() as u64);
                let mut params = Params::init(p.config, &mut rng);
                let corpus = Corpus::new(p.config.max_seq);
                pretrain(&mut params, &corpus, TrainConfig::pretrain(steps));
                params
            })
            .clone()
    }

    /// FMT variant fine-tuned on the family's task *mixture* (cached).
    pub fn fmt_mixture(&mut self, p: &ModelPreset) -> Params {
        let steps = self.scale().steps(1600);
        if !self.fmt_mix.contains_key(p.name) {
            let base = self.base(p);
            let mut tuned = base;
            let task_list = family_tasks(p.name);
            train(
                &mut tuned,
                TrainConfig {
                    steps,
                    batch: 8,
                    lr: 2e-3,
                    clip: 1.0,
                    seed: 0xF117,
                },
                |rng| {
                    let t = &task_list[rng.below(task_list.len())];
                    let ex = t.sample(rng);
                    BatchItem::task(ex.tokens, ex.answer_len)
                },
            );
            self.fmt_mix.insert(p.name.to_string(), tuned);
        }
        self.fmt_mix[p.name].clone()
    }

    /// FMT variant fine-tuned on a single task (cached).
    pub fn fmt_on(&mut self, p: &ModelPreset, task: &dyn Task) -> Params {
        let steps = self.scale().steps(1000);
        let key = (p.name.to_string(), task.name());
        if !self.fmt_task.contains_key(&key) {
            let base = self.base(p);
            let mut tuned = base;
            finetune_fmt(
                &mut tuned,
                task,
                TrainConfig {
                    steps,
                    batch: 8,
                    lr: 2e-3,
                    clip: 1.0,
                    seed: 0xF1,
                },
            );
            self.fmt_task.insert(key.clone(), tuned);
        }
        self.fmt_task[&key].clone()
    }

    /// LoRA variant (merged) fine-tuned on a single task (cached).
    pub fn lora_on(&mut self, p: &ModelPreset, task: &dyn Task, rank: usize) -> Params {
        let steps = self.scale().steps(1000);
        let key = (p.name.to_string(), task.name(), rank);
        if !self.lora_task.contains_key(&key) {
            let base = self.base(p);
            let mut rng = Rng::seeded(0x10A ^ rank as u64);
            let mut adapter = LoraAdapter::init(&base, LoraConfig::rank(rank), &mut rng);
            finetune_lora(
                &base,
                &mut adapter,
                task,
                TrainConfig {
                    steps,
                    batch: 8,
                    lr: 1e-2,
                    clip: 1.0,
                    seed: 0x10A,
                },
            );
            self.lora_task.insert(key.clone(), adapter.merge(&base));
        }
        self.lora_task[&key].clone()
    }
}

fn calib_for(p: &ModelPreset, n: usize) -> Vec<Vec<usize>> {
    calibration_set(&Corpus::new(p.config.max_seq), n, 0xCA11B)
}

fn accs(params: &Params, task_list: &[Box<dyn Task>], n: usize) -> Vec<f64> {
    task_list
        .iter()
        .map(|t| task_accuracy(params, t.as_ref(), n, &mut Rng::seeded(0xE7A1)))
        .collect()
}

fn fmt_accs(a: &[f64]) -> Vec<String> {
    a.iter().map(|v| format!("{:.1}", v * 100.0)).collect()
}

/// Table 1: post-compression quality and compression ratio per family.
pub fn table1(zoo: &mut Zoo) -> Report {
    let families = [
        "pythia-tiny",
        "llama-tiny-s",
        "llama-tiny-m",
        "llama-tiny-l",
        "gemma-tiny-s",
        "gemma-tiny-m",
    ];
    let mut rows = Vec::new();
    for fam in families {
        let p = preset(fam).expect("preset exists");
        let base = zoo.base(&p);
        let tuned = zoo.fmt_mixture(&p);
        let task_list = family_tasks(fam);
        let calib = calib_for(&p, 12);
        let n_eval = 300;

        // FP16 reference.
        let fp16 = accs(&tuned, &task_list, n_eval);
        rows.push(
            [
                vec![p.paper_analog.to_string(), "FP16".to_string()],
                fmt_accs(&fp16),
                vec!["1.00x".into()],
            ]
            .concat(),
        );
        // SparseGPT directly on the fine-tuned weights (4bit*).
        let sgpt = sparsegpt_direct(&tuned, &calib, 4, 16);
        rows.push(
            [
                vec![String::new(), "SparseGPT (4bit*)".to_string()],
                fmt_accs(&accs(&sgpt.params, &task_list, n_eval)),
                vec![format!("{:.2}x", sgpt.report.model_ratio())],
            ]
            .concat(),
        );
        // AWQ (4 bit, no sparsity).
        let awq = awq_quantize(&tuned, &calib, 4, 16);
        rows.push(
            [
                vec![String::new(), "AWQ (4bit)".to_string()],
                fmt_accs(&accs(&awq.params, &task_list, n_eval)),
                vec![format!("{:.2}x", awq.report.model_ratio())],
            ]
            .concat(),
        );
        // ΔCompress 4-bit and 2-bit (both starred: 2:4 sparsity).
        for bits in [4u32, 2] {
            let (cd, rec) =
                delta_compress(&base, &tuned, &calib, DeltaCompressConfig::starred(bits));
            rows.push(
                [
                    vec![String::new(), format!("DeltaZip({bits}bit*)")],
                    fmt_accs(&accs(&rec, &task_list, n_eval)),
                    vec![format!("{:.2}x", cd.report.model_ratio())],
                ]
                .concat(),
            );
        }
    }
    Report {
        id: "table1",
        title:
            "Post-compression model quality (accuracy %, T1-T3) and whole-model compression ratio",
        body: md_table(&["model", "method", "T1", "T2", "T3", "ratio"], &rows),
    }
}

/// Table 2: FMT vs LoRA vs ΔCompress accuracy.
pub fn table2(zoo: &mut Zoo) -> Report {
    let cases: Vec<(&str, &str, Box<dyn Task>)> = vec![
        (
            "llama-tiny-s",
            "Math (carry addition)",
            Box::new(tasks::MathTask),
        ),
        (
            "pythia-tiny",
            "Amazon Review (sentiment)",
            Box::new(tasks::SentimentTask),
        ),
        (
            "pythia-tiny",
            "BoolQ Yes/No (membership)",
            Box::new(tasks::BoolQTask),
        ),
        (
            "pythia-tiny",
            "NLI Classification (order)",
            Box::new(tasks::NliTask),
        ),
        (
            "openllama-tiny",
            "Amazon Review (sentiment)",
            Box::new(tasks::SentimentTask),
        ),
        (
            "openllama-tiny",
            "BoolQ Yes/No (membership)",
            Box::new(tasks::BoolQTask),
        ),
        (
            "openllama-tiny",
            "NLI Classification (order)",
            Box::new(tasks::NliTask),
        ),
    ];
    let mut rows = Vec::new();
    for (fam, task_label, task) in cases {
        let p = preset(fam).expect("preset exists");
        let base = zoo.base(&p);
        let fmt = zoo.fmt_on(&p, task.as_ref());
        let lora = zoo.lora_on(&p, task.as_ref(), 8);
        let calib = calib_for(&p, 12);
        let (_, rec) = delta_compress(&base, &fmt, &calib, DeltaCompressConfig::starred(4));
        let n_eval = 300;
        let acc =
            |m: &Params| task_accuracy(m, task.as_ref(), n_eval, &mut Rng::seeded(0xE7A2)) * 100.0;
        rows.push(vec![
            p.paper_analog.to_string(),
            task_label.to_string(),
            format!("{:.1}", acc(&fmt)),
            format!("{:.1}", acc(&lora)),
            format!("{:.1}", acc(&rec)),
        ]);
    }
    Report {
        id: "table2",
        title: "Model quality (accuracy %) of FMT vs LoRA vs ΔCompress",
        body: md_table(&["base model", "task", "FMT", "LoRA", "ΔCompress"], &rows),
    }
}

/// Figure 2: base vs LoRA vs FMT accuracy by task difficulty.
pub fn fig2(zoo: &mut Zoo) -> Report {
    let task_list: Vec<(&str, Box<dyn Task>)> = vec![
        ("SQL-like (recall, easy)", Box::new(tasks::RecallTask)),
        (
            "Code-like (palindrome, medium)",
            Box::new(tasks::PalindromeTask),
        ),
        ("Math (carry addition, hard)", Box::new(tasks::MathTask)),
    ];
    let mut rows = Vec::new();
    for fam in ["llama-tiny-s", "llama-tiny-m"] {
        let p = preset(fam).expect("preset exists");
        let base = zoo.base(&p);
        for (label, task) in &task_list {
            let fmt = zoo.fmt_on(&p, task.as_ref());
            let lora = zoo.lora_on(&p, task.as_ref(), 8);
            let n_eval = 300;
            let acc = |m: &Params| {
                task_accuracy(m, task.as_ref(), n_eval, &mut Rng::seeded(0xF162)) * 100.0
            };
            rows.push(vec![
                p.paper_analog.to_string(),
                label.to_string(),
                format!("{:.1}", acc(&base)),
                format!("{:.1}", acc(&lora)),
                format!("{:.1}", acc(&fmt)),
            ]);
        }
    }
    Report {
        id: "fig2",
        title: "LoRA vs full-model fine-tuning accuracy (%) by task difficulty",
        body: md_table(&["model", "task", "Base", "LoRA", "FMT"], &rows),
    }
}

/// Figure 3: magnitude distribution of base weights, FMT weights, delta.
pub fn fig3(zoo: &mut Zoo) -> Report {
    let p = preset("llama-tiny-m").expect("preset exists");
    let base = zoo.base(&p);
    let tuned = zoo.fmt_mixture(&p);
    let name = "layer2.wq"; // A middle layer, like the paper's 10th.
    let wb = base.get(name).expect("layer exists");
    let wf = tuned.get(name).expect("layer exists");
    let delta = wf.sub(wb);
    let mut body = String::new();
    for (label, m) in [("Base", wb), ("FMT", wf), ("Delta", &delta)] {
        let s = Summary::of(m.data());
        let mut h = Histogram::new(-0.15, 0.15, 48);
        h.add_all(m.data());
        body.push_str(&format!(
            "{label:<6} std={:.4} max|w|={:.4}  {}\n",
            s.std,
            m.max_abs(),
            h.sparkline()
        ));
    }
    let ratio = wf.max_abs() / delta.max_abs().max(1e-9);
    body.push_str(&format!(
        "\nFMT weight range is {ratio:.1}x wider than the delta range — the compressibility gap ΔCompress exploits.\n"
    ));
    Report {
        id: "fig3",
        title: "Weight vs delta magnitude distribution (self_attn.q_proj, middle layer)",
        body,
    }
}

/// Figure 5: per-stage compression of the pipeline (sizes in bytes).
pub fn fig5(zoo: &mut Zoo) -> Report {
    let p = preset("llama-tiny-m").expect("preset exists");
    let base = zoo.base(&p);
    let tuned = zoo.fmt_mixture(&p);
    let calib = calib_for(&p, 12);
    let mut rows = Vec::new();
    for bits in [4u32, 2] {
        let (cd, _) = delta_compress(&base, &tuned, &calib, DeltaCompressConfig::starred(bits));
        let fp16: usize = cd.layers.values().map(|c| c.fp16_bytes()).sum();
        // Stage 2 (2:4 pruning, still FP16 values): half the values at FP16
        // plus 2-bit indices.
        let stage2 = fp16 / 2 + fp16 / 2 / 8;
        let packed = cd.packed_bytes();
        let lossless = lossless_compress(&cd.to_bytes()).len();
        rows.push(vec![
            format!("{bits}bit*"),
            format!("{fp16}"),
            format!("{stage2} ({:.2}x)", fp16 as f64 / stage2 as f64),
            format!("{packed} ({:.2}x)", fp16 as f64 / packed as f64),
            format!("{lossless} ({:.2}x)", fp16 as f64 / lossless as f64),
        ]);
    }
    Report {
        id: "fig5",
        title: "Compression pipeline stage sizes (linear-layer deltas, bytes)",
        body: md_table(
            &["config", "FP16", "2:4 pruned", "quant+packed", "+lossless"],
            &rows,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_caches_training() {
        let mut zoo = Zoo::new(Scale::Quick);
        let p = preset("pythia-tiny").unwrap();
        let a = zoo.base(&p);
        let b = zoo.base(&p);
        // Cached: bitwise identical without retraining.
        let bt = b.tensors();
        for (x, y) in a.tensors().into_iter().zip(bt) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn family_tasks_are_three_each() {
        assert_eq!(family_tasks("pythia-tiny").len(), 3);
        assert_eq!(family_tasks("llama-tiny-s").len(), 3);
    }

    #[test]
    fn fig3_shows_delta_narrower_than_weights() {
        let mut zoo = Zoo::new(Scale::Quick);
        let r = fig3(&mut zoo);
        let ratio_line = r.body.lines().find(|l| l.contains("wider")).unwrap();
        let ratio: f64 = ratio_line
            .split_whitespace()
            .find_map(|w| w.trim_end_matches('x').parse().ok())
            .unwrap();
        assert!(ratio > 1.5, "delta should be much narrower: {ratio}x");
    }
}
