//! Overlapped delta swapping vs the serialized-load baseline, with and
//! without predictive prefetch.
//!
//! `bench-swap` drives the [`dz_serve::DeltaZipEngine`] over a fixed-seed
//! Zipf trace on the capacity-constrained 3090/7B node — deltas churn
//! through GPU and host tiers, so cold loads co-batch with warm traffic
//! constantly — and compares four modes:
//!
//! * `serialized` — the legacy whole-batch stall (every missing delta
//!   charged up front, everyone waits on the sum),
//! * `overlapped` — loads progress on the bandwidth-shared transfer
//!   timeline while the resident sub-batch decodes; each request stalls
//!   only until its own delta lands,
//! * `overlap+lookahead` — plus queue-lookahead prefetch,
//! * `overlap+popularity` — plus popularity-driven prefetch.
//!
//! The headline number is the warm-request tail: TTFT p99 of requests to
//! the hottest model (whose delta is essentially always resident), which
//! the serialized baseline pollutes with other models' swap-in waits.
//! Emits `BENCH_swap.json`; two smoke metrics feed the CI perf gate.

use super::{json_provenance, md_table, Report, Scale};
use dz_gpusim::shapes::ModelShape;
use dz_gpusim::spec::NodeSpec;
use dz_serve::swap::{PopularityPrefetch, QueueLookahead};
use dz_serve::{
    CauseBreakdown, CostModel, DeltaZipConfig, DeltaZipEngine, Engine, Metrics, TraceConfig,
    TraceLog, TraceTrack, CAUSE_NAMES,
};
use dz_workload::{PopularityDist, Trace, TraceSpec};
use serde::Serialize;

const N_MODELS: usize = 16;
/// The hottest model: its delta is effectively always GPU-resident, so
/// its requests are the "warm co-batched with cold" population.
pub const WARM_MODEL: usize = 0;
/// Mode ids swept by the experiment.
pub const MODES: [&str; 4] = [
    "serialized",
    "overlapped",
    "overlap+lookahead",
    "overlap+popularity",
];

fn swap_trace(duration_s: f64) -> Trace {
    Trace::generate(TraceSpec {
        n_models: N_MODELS,
        arrival_rate: 1.2,
        duration_s,
        popularity: PopularityDist::Zipf { alpha: 1.2 },
        seed: 0x5A11,
    })
}

/// Runs one swap-bench mode (also reused by the `bench-smoke` perf gate).
pub fn run_swap(mode: &str, duration_s: f64) -> Metrics {
    run_swap_traced(mode, duration_s, None).0
}

/// [`run_swap`] with optional event tracing: when `trace_cfg` is set the
/// engine records its event log, returned alongside the metrics.
pub fn run_swap_traced(
    mode: &str,
    duration_s: f64,
    trace_cfg: Option<TraceConfig>,
) -> (Metrics, Option<TraceLog>) {
    // The small node: GPU holds only a few deltas next to the base and
    // the host cache is bounded, so swap traffic never stops.
    let cost = CostModel::new(NodeSpec::rtx3090_node(1), ModelShape::llama7b());
    let trace = swap_trace(duration_s);
    let config = DeltaZipConfig {
        max_concurrent_deltas: 2,
        max_batch: 32,
        host_capacity_deltas: Some(6),
        overlap_swaps: mode != "serialized",
        ..DeltaZipConfig::default()
    };
    let mut engine = DeltaZipEngine::new(cost, config);
    engine = match mode {
        "overlap+lookahead" => engine.with_prefetcher(Box::new(QueueLookahead::new(4))),
        "overlap+popularity" => engine.with_prefetcher(Box::new(PopularityPrefetch::new(
            trace.spec.popularity,
            N_MODELS,
            4,
        ))),
        "serialized" | "overlapped" => engine,
        other => panic!("unknown swap mode {other}"),
    };
    if let Some(cfg) = trace_cfg {
        engine = engine.with_tracing(cfg);
    }
    let m = engine.run(&trace);
    let log = engine.tracer.take_log();
    (m, log)
}

/// TTFT p99 of the warm-model requests.
pub fn warm_ttft_p99(m: &Metrics) -> f64 {
    m.subset("warm".into(), |r| r.model == WARM_MODEL)
        .ttft_percentile(0.99)
}

struct Row {
    mode: &'static str,
    requests: usize,
    warm_ttft_p99_s: f64,
    ttft_p99_s: f64,
    e2e_p99_s: f64,
    mean_load_s: f64,
    overlap_frac: f64,
    stall_s: f64,
    serialized_stall_s: f64,
    prefetch_issued: usize,
    prefetch_hit_rate: f64,
    attribution: CauseBreakdown,
}

fn measure(
    mode: &'static str,
    duration_s: f64,
    trace_cfg: Option<TraceConfig>,
) -> (Row, Option<TraceLog>) {
    let (m, log) = run_swap_traced(mode, duration_s, trace_cfg);
    let mean_load = if m.is_empty() {
        0.0
    } else {
        m.records.iter().map(|r| r.load_s).sum::<f64>() / m.len() as f64
    };
    let row = Row {
        mode,
        requests: m.len(),
        warm_ttft_p99_s: warm_ttft_p99(&m),
        ttft_p99_s: m.ttft_percentile(0.99),
        e2e_p99_s: m.e2e_percentile(0.99),
        mean_load_s: mean_load,
        overlap_frac: m.swap.overlap_fraction(),
        stall_s: m.swap.stall_s,
        serialized_stall_s: m.swap.serialized_stall_s,
        prefetch_issued: m.swap.prefetch_issued,
        prefetch_hit_rate: m.swap.prefetch_hit_rate(),
        attribution: m.attribution(0.99),
    };
    (row, log)
}

/// The `bench-swap` experiment. When `trace` is given, each mode's engine
/// event log lands there as a `swap/<mode>` lane.
pub fn bench_swap(
    scale: Scale,
    out_dir: &std::path::Path,
    mut trace: Option<&mut Vec<TraceTrack>>,
) -> Report {
    let duration_s = match scale {
        Scale::Full => 150.0,
        Scale::Quick => 60.0,
    };
    let trace_cfg = trace.as_ref().map(|_| TraceConfig::default());
    let rows: Vec<Row> = MODES
        .iter()
        .map(|m| {
            let (row, log) = measure(m, duration_s, trace_cfg);
            if let (Some(tracks), Some(log)) = (trace.as_deref_mut(), log) {
                tracks.push(TraceTrack {
                    name: format!("swap/{m}"),
                    log,
                });
            }
            row
        })
        .collect();
    let mut body = String::from(
        "Swap modes on the 3090/7B node (Zipf-1.2, 16 models, bounded host cache).\n\
         `warm TTFT p99` is the tail of the hottest model's requests — the\n\
         population the serialized whole-batch stall pollutes:\n\n",
    );
    body.push_str(&md_table(
        &[
            "mode",
            "requests",
            "warm TTFT p99 (s)",
            "TTFT p99 (s)",
            "E2E p99 (s)",
            "mean load (s)",
            "overlap",
            "stall (s)",
            "serial charge (s)",
            "prefetches",
            "pf hit rate",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.mode.to_string(),
                    r.requests.to_string(),
                    format!("{:.2}", r.warm_ttft_p99_s),
                    format!("{:.2}", r.ttft_p99_s),
                    format!("{:.2}", r.e2e_p99_s),
                    format!("{:.3}", r.mean_load_s),
                    format!("{:.0}%", r.overlap_frac * 100.0),
                    format!("{:.1}", r.stall_s),
                    format!("{:.1}", r.serialized_stall_s),
                    r.prefetch_issued.to_string(),
                    format!("{:.0}%", r.prefetch_hit_rate * 100.0),
                ]
            })
            .collect::<Vec<_>>(),
    ));
    body.push_str(
        "\nWhere did the p99 go — mean attributed seconds over tail requests\n\
         (e2e at or beyond the p99 threshold), per cause:\n\n",
    );
    let mut attr_header = vec!["mode", "tail n", "threshold (s)"];
    attr_header.extend(CAUSE_NAMES);
    body.push_str(&md_table(
        &attr_header,
        &rows
            .iter()
            .map(|r| {
                let a = &r.attribution;
                let mut row = vec![
                    r.mode.to_string(),
                    a.n_tail.to_string(),
                    format!("{:.2}", a.tail_threshold_s),
                ];
                let shares = a.tail_share();
                for (i, v) in a.tail_mean.as_array().iter().enumerate() {
                    row.push(format!("{v:.2} ({:.0}%)", shares[i] * 100.0));
                }
                row
            })
            .collect::<Vec<_>>(),
    ));
    match write_json(&rows, duration_s, out_dir) {
        Ok(path) => body.push_str(&format!("\njson: {path}\n")),
        Err(e) => body.push_str(&format!("\njson write failed: {e}\n")),
    }
    Report {
        id: "bench-swap",
        title: "Overlapped swapping + prefetch vs the serialized-load baseline",
        body,
    }
}

fn write_json(rows: &[Row], duration_s: f64, dir: &std::path::Path) -> std::io::Result<String> {
    std::fs::create_dir_all(dir)?;
    let mut json = String::from("{\n");
    json.push_str(&json_provenance(
        "bench-swap",
        &[
            ("n_models", N_MODELS.to_string()),
            ("arrival_rate", "1.2".into()),
            ("duration_s", format!("{duration_s:.1}")),
            ("zipf_alpha", "1.2".into()),
            ("seed", "23057".into()),
        ],
    ));
    json.push_str("  \"modes\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"requests\": {}, \"warm_ttft_p99_s\": {:.4}, \
             \"ttft_p99_s\": {:.4}, \"e2e_p99_s\": {:.4}, \"mean_load_s\": {:.4}, \
             \"overlap_frac\": {:.4}, \"stall_s\": {:.4}, \"serialized_stall_s\": {:.4}, \
             \"prefetch_issued\": {}, \"prefetch_hit_rate\": {:.4}, \
             \"p99_attribution\": {}}}{}\n",
            r.mode,
            r.requests,
            r.warm_ttft_p99_s,
            r.ttft_p99_s,
            r.e2e_p99_s,
            r.mean_load_s,
            r.overlap_frac,
            r.stall_s,
            r.serialized_stall_s,
            r.prefetch_issued,
            r.prefetch_hit_rate,
            r.attribution.to_value().to_json(),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = dir.join("BENCH_swap.json");
    std::fs::write(&path, json)?;
    Ok(path.display().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlapped_beats_serialized_on_warm_tail() {
        // The acceptance gate: warm requests co-batched with cold deltas
        // must see a strictly better TTFT p99 once loads overlap decode.
        let serialized = run_swap("serialized", 60.0);
        let overlapped = run_swap("overlapped", 60.0);
        assert_eq!(serialized.len(), overlapped.len());
        let (ws, wo) = (warm_ttft_p99(&serialized), warm_ttft_p99(&overlapped));
        assert!(
            wo < ws,
            "overlapped warm TTFT p99 {wo} must beat serialized {ws}"
        );
        // Overlap hides load time; the serialized baseline hides none.
        assert!(overlapped.swap.overlap_fraction() > 0.0);
        assert_eq!(serialized.swap.overlapped_s, 0.0);
        // Per-request stalls never exceed the whole-batch charges.
        assert!(overlapped.swap.stall_s <= serialized.swap.stall_s);
    }

    #[test]
    fn prefetch_modes_issue_and_hit() {
        let plain = run_swap("overlapped", 60.0);
        for mode in ["overlap+lookahead", "overlap+popularity"] {
            let m = run_swap(mode, 60.0);
            assert!(m.swap.prefetch_issued > 0, "{mode} must prefetch");
            assert!(
                m.swap.prefetch_hit_rate() > 0.0,
                "{mode} prefetches must hit"
            );
            // Prewarming hides more load time and never adds stalls.
            assert!(
                m.swap.stall_s <= plain.swap.stall_s * 1.05,
                "{mode} stalls {} vs plain {}",
                m.swap.stall_s,
                plain.swap.stall_s
            );
        }
        // Queue-lookahead (which prewarms what is *actually* queued, not
        // just what is popular) must also win the warm tail.
        let lookahead = run_swap("overlap+lookahead", 60.0);
        assert!(
            warm_ttft_p99(&lookahead) <= warm_ttft_p99(&plain) * 1.10,
            "lookahead warm tail {} vs plain {}",
            warm_ttft_p99(&lookahead),
            warm_ttft_p99(&plain)
        );
    }
}
