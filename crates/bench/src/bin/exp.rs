//! The experiment runner: regenerates the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! exp [--quick] all            # every artifact, archived to target/experiments/
//! exp [--quick] <id> [<id>..]  # e.g. exp table1 fig11
//! exp --list                   # show available ids
//! ```

use dz_bench::experiments::{
    ablations, cluster, codec, extensions, kernels, quality, serving, workloads, Report, Scale,
};
use std::io::Write;

fn available() -> Vec<&'static str> {
    vec![
        "fig1",
        "fig2",
        "fig3",
        "fig5",
        "fig6",
        "fig7",
        "table1",
        "table2",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "fig15",
        "fig16",
        "fig17",
        "fig18",
        "fig19",
        "ablation-scheduler",
        "ablation-sbmm",
        "ablation-reconstruct",
        "tuning-n",
        "ext-peft",
        "ablation-resume",
        "ablation-length-aware",
        "ablation-slo",
        "ablation-dynamic-n",
        "ext-scalability",
        "bench-lossless",
        "bench-cluster",
    ]
}

fn run_one(id: &str, zoo: &mut quality::Zoo, scale: Scale) -> Option<Report> {
    Some(match id {
        "fig1" => workloads::fig1(),
        "fig2" => quality::fig2(zoo),
        "fig3" => quality::fig3(zoo),
        "fig5" => quality::fig5(zoo),
        "fig6" => kernels::fig6(),
        "fig7" => kernels::fig7(),
        "table1" => quality::table1(zoo),
        "table2" => quality::table2(zoo),
        "fig10" => serving::fig10(),
        "fig11" => serving::fig11(),
        "fig12" => serving::fig12(),
        "fig13" => serving::fig13(),
        "fig14" => serving::fig14(),
        "fig15" => serving::fig15(),
        "fig16" => serving::fig16(),
        "fig17" => kernels::fig17(),
        "fig18" => serving::fig18(),
        "fig19" => serving::fig19(),
        "ablation-scheduler" => ablations::ablation_scheduler(),
        "ablation-sbmm" => ablations::ablation_sbmm(),
        "ablation-reconstruct" => ablations::ablation_reconstruct(zoo),
        "tuning-n" => ablations::tuning_demo(),
        "ext-peft" => extensions::ext_peft(zoo, scale),
        "ablation-resume" => extensions::ablation_resume(),
        "ablation-length-aware" => extensions::ablation_length_aware(),
        "ablation-slo" => extensions::ablation_slo(),
        "ablation-dynamic-n" => extensions::ablation_dynamic_n(),
        "ext-scalability" => extensions::ext_scalability(),
        "bench-lossless" => codec::bench_lossless(scale),
        "bench-cluster" => cluster::bench_cluster(scale),
        _ => return None,
    })
}

fn main() -> std::io::Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for id in available() {
            println!("{id}");
        }
        return Ok(());
    }
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::Full };
    let ids: Vec<String> = args.into_iter().filter(|a| !a.starts_with("--")).collect();
    if ids.is_empty() {
        eprintln!("usage: exp [--quick] (all | <id>...); see --list");
        std::process::exit(2);
    }
    let targets: Vec<&str> = if ids.iter().any(|i| i == "all") {
        available()
    } else {
        let known = available();
        for id in &ids {
            if !known.contains(&id.as_str()) {
                eprintln!("unknown experiment id: {id} (see --list)");
                std::process::exit(2);
            }
        }
        known
            .into_iter()
            .filter(|k| ids.iter().any(|i| i == k))
            .collect()
    };

    let out_dir = std::path::Path::new("target/experiments");
    std::fs::create_dir_all(out_dir)?;
    let mut zoo = quality::Zoo::new(scale);
    let mut combined = String::new();
    for id in targets {
        let start = std::time::Instant::now();
        let report = run_one(id, &mut zoo, scale).expect("id validated above");
        let rendered = report.render();
        println!("{rendered}");
        println!("[{} done in {:.1?}]\n", report.id, start.elapsed());
        combined.push_str(&rendered);
        combined.push('\n');
        let path = out_dir.join(format!("{}.md", report.id));
        let mut f = std::fs::File::create(&path)?;
        f.write_all(rendered.as_bytes())?;
    }
    let mut f = std::fs::File::create(out_dir.join("all.md"))?;
    f.write_all(combined.as_bytes())?;
    Ok(())
}
