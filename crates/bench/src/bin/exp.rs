//! The experiment runner: regenerates the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! exp [--quick] all              # every artifact, archived to --out
//! exp [--quick] <id> [<id>..]    # e.g. exp table1 fig11
//! exp --list                     # show available ids
//! exp --out <dir>                # output directory (default target/experiments)
//! exp bench-smoke --check <file> # compare against a perf baseline; exits
//!                                # nonzero on any regression (the CI gate)
//! exp --trace <out.json> <id>..  # also write a combined Chrome trace
//!                                # (load in Perfetto) of the engine runs
//! ```
//!
//! Unknown experiment ids exit nonzero and print the valid ids; all
//! output-directory write errors propagate as nonzero exits instead of
//! panicking.

use dz_bench::experiments::{
    ablations, chaos, cluster, codec, compress, extensions, fleet, kernels, quality, serving,
    smoke, swap, toppings, workloads, Report, Scale,
};
use dz_serve::{write_chrome_trace, TraceTrack};
use std::io::Write;
use std::path::{Path, PathBuf};

fn available() -> Vec<&'static str> {
    vec![
        "fig1",
        "fig2",
        "fig3",
        "fig5",
        "fig6",
        "fig7",
        "table1",
        "table2",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "fig15",
        "fig16",
        "fig17",
        "fig18",
        "fig19",
        "ablation-scheduler",
        "ablation-sbmm",
        "ablation-reconstruct",
        "tuning-n",
        "ext-peft",
        "ablation-resume",
        "ablation-length-aware",
        "ablation-slo",
        "ablation-dynamic-n",
        "ext-scalability",
        "bench-lossless",
        "bench-chaos",
        "bench-cluster",
        "bench-fleet",
        "bench-compress",
        "bench-swap",
        "bench-toppings",
        "bench-smoke",
    ]
}

/// Runs one experiment; `bench-smoke` additionally returns its metrics so
/// the `--check` gate can compare them against a baseline.
fn run_one(
    id: &str,
    zoo: &mut quality::Zoo,
    scale: Scale,
    out_dir: &Path,
    trace: Option<&mut Vec<TraceTrack>>,
) -> Option<(Report, Option<smoke::SmokeMetrics>)> {
    let report = match id {
        "fig1" => workloads::fig1(),
        "fig2" => quality::fig2(zoo),
        "fig3" => quality::fig3(zoo),
        "fig5" => quality::fig5(zoo),
        "fig6" => kernels::fig6(),
        "fig7" => kernels::fig7(),
        "table1" => quality::table1(zoo),
        "table2" => quality::table2(zoo),
        "fig10" => serving::fig10(),
        "fig11" => serving::fig11(),
        "fig12" => serving::fig12(),
        "fig13" => serving::fig13(),
        "fig14" => serving::fig14(),
        "fig15" => serving::fig15(),
        "fig16" => serving::fig16(),
        "fig17" => kernels::fig17(),
        "fig18" => serving::fig18(),
        "fig19" => serving::fig19(),
        "ablation-scheduler" => ablations::ablation_scheduler(),
        "ablation-sbmm" => ablations::ablation_sbmm(),
        "ablation-reconstruct" => ablations::ablation_reconstruct(zoo),
        "tuning-n" => ablations::tuning_demo(),
        "ext-peft" => extensions::ext_peft(zoo, scale),
        "ablation-resume" => extensions::ablation_resume(),
        "ablation-length-aware" => extensions::ablation_length_aware(),
        "ablation-slo" => extensions::ablation_slo(),
        "ablation-dynamic-n" => extensions::ablation_dynamic_n(),
        "ext-scalability" => extensions::ext_scalability(),
        "bench-lossless" => codec::bench_lossless(scale, out_dir),
        "bench-chaos" => chaos::bench_chaos(scale, out_dir, trace),
        "bench-cluster" => cluster::bench_cluster(scale, out_dir, trace),
        "bench-fleet" => fleet::bench_fleet(scale, out_dir, trace),
        "bench-compress" => compress::bench_compress(zoo, scale, out_dir),
        "bench-swap" => swap::bench_swap(scale, out_dir, trace),
        "bench-toppings" => toppings::bench_toppings(scale, out_dir, trace),
        "bench-smoke" => {
            let (report, metrics) = smoke::bench_smoke(out_dir, trace);
            return Some((report, Some(metrics)));
        }
        _ => return None,
    };
    Some((report, None))
}

fn unknown_id_exit(id: &str) -> ! {
    eprintln!("unknown experiment id: {id}");
    eprintln!("valid experiments:");
    for known in available() {
        eprintln!("  {known}");
    }
    std::process::exit(2);
}

fn main() -> std::io::Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for id in available() {
            println!("{id}");
        }
        return Ok(());
    }
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::Full };
    // Flags with values: --out <dir>, --check <baseline.json>.
    let mut out_dir = PathBuf::from("target/experiments");
    let mut baseline_path: Option<PathBuf> = None;
    let mut trace_path: Option<PathBuf> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => {}
            "--out" => match it.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--out requires a directory argument");
                    std::process::exit(2);
                }
            },
            "--check" => match it.next() {
                Some(path) => baseline_path = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--check requires a baseline file argument");
                    std::process::exit(2);
                }
            },
            "--trace" => match it.next() {
                Some(path) => trace_path = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--trace requires an output file argument");
                    std::process::exit(2);
                }
            },
            other if other.starts_with("--") => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        eprintln!("usage: exp [--quick] [--out <dir>] (all | <id>...); see --list");
        std::process::exit(2);
    }
    let targets: Vec<&str> = if ids.iter().any(|i| i == "all") {
        available()
    } else {
        let known = available();
        for id in &ids {
            if !known.contains(&id.as_str()) {
                unknown_id_exit(id);
            }
        }
        known
            .into_iter()
            .filter(|k| ids.iter().any(|i| i == k))
            .collect()
    };

    // Fail fast on gate misuse: the gate needs fresh smoke metrics and a
    // readable baseline, so validate both before any (potentially
    // multi-minute) experiment runs.
    let baseline: Option<String> = match &baseline_path {
        Some(path) => {
            if !targets.contains(&"bench-smoke") {
                eprintln!("--check requires bench-smoke among the requested experiments");
                std::process::exit(2);
            }
            match std::fs::read_to_string(path) {
                Ok(contents) => Some(contents),
                Err(e) => {
                    eprintln!("--check cannot read {}: {e}", path.display());
                    std::process::exit(2);
                }
            }
        }
        None => None,
    };
    std::fs::create_dir_all(&out_dir)?;
    let mut zoo = quality::Zoo::new(scale);
    let mut combined = String::new();
    let mut smoke_metrics: Option<smoke::SmokeMetrics> = None;
    let mut trace_tracks: Option<Vec<TraceTrack>> = trace_path.as_ref().map(|_| Vec::new());
    for id in targets {
        let start = std::time::Instant::now();
        let (report, metrics) = run_one(id, &mut zoo, scale, &out_dir, trace_tracks.as_mut())
            .expect("id validated above");
        if let Some(m) = metrics {
            smoke_metrics = Some(m);
        }
        let rendered = report.render();
        println!("{rendered}");
        println!("[{} done in {:.1?}]\n", report.id, start.elapsed());
        combined.push_str(&rendered);
        combined.push('\n');
        let path = out_dir.join(format!("{}.md", report.id));
        let mut f = std::fs::File::create(&path)?;
        f.write_all(rendered.as_bytes())?;
    }
    let mut f = std::fs::File::create(out_dir.join("all.md"))?;
    f.write_all(combined.as_bytes())?;

    // One combined Chrome trace across every traced engine run: load it
    // in Perfetto (ui.perfetto.dev) — one process per lane.
    if let (Some(path), Some(tracks)) = (&trace_path, &trace_tracks) {
        write_chrome_trace(path, tracks)?;
        let events: usize = tracks.iter().map(|t| t.log.len()).sum();
        println!(
            "trace: {} ({} lanes, {} events)",
            path.display(),
            tracks.len(),
            events
        );
    }

    // The perf gate: compare fresh smoke metrics against the baseline.
    if let Some(baseline) = baseline {
        let path = baseline_path.expect("baseline read implies a path");
        let metrics = smoke_metrics.expect("bench-smoke presence validated pre-flight");
        match smoke::check_baseline(&metrics, &baseline) {
            Ok(failures) if failures.is_empty() => {
                let version = smoke::baseline_schema_version(&baseline)
                    .map(|v| format!("schema v{v}"))
                    .unwrap_or_else(|| "unversioned".into());
                println!(
                    "perf gate: all metrics within {} bounds ({version})",
                    path.display()
                );
            }
            Ok(failures) => {
                eprintln!("perf gate FAILED against {}:", path.display());
                for f in &failures {
                    eprintln!("  {f}");
                }
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("perf gate error: {e}");
                std::process::exit(2);
            }
        }
    }
    Ok(())
}
