//! Experiment harness for the DeltaZip reproduction.
//!
//! `cargo run -p dz-bench --release --bin exp -- all` regenerates every
//! table and figure of the paper's evaluation section; individual ids
//! (`table1`, `fig11`, ...) run one artifact. Criterion benches under
//! `benches/` measure the CPU reference kernels and codecs.

pub mod experiments;
