//! Criterion benches for the §8 policy extensions: replay cost of the
//! scheduler policies and decode throughput of the CPU SGMV adapter path
//! versus the decoupled delta path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dz_compress::calib::calibration_set;
use dz_compress::pipeline::{delta_compress, DeltaCompressConfig};
use dz_gpusim::shapes::ModelShape;
use dz_gpusim::spec::NodeSpec;
use dz_kernels::decoupled::DecoupledBatch;
use dz_kernels::{AdapterBatch, AdapterView};
use dz_model::lora::{LoraAdapter, LoraConfig};
use dz_model::rosa::{RosaAdapter, RosaConfig};
use dz_model::tasks::Corpus;
use dz_model::transformer::{test_config, Params};
use dz_serve::predictor::LengthEstimator;
use dz_serve::slo::SloPolicy;
use dz_serve::tuning::{DynamicN, DynamicNConfig};
use dz_serve::{CostModel, DeltaZipConfig, DeltaZipEngine, Engine, PreemptionPolicy};
use dz_tensor::Rng;
use dz_workload::{PopularityDist, Trace, TraceSpec};

fn trace() -> Trace {
    Trace::generate(TraceSpec {
        n_models: 24,
        arrival_rate: 2.0,
        duration_s: 60.0,
        popularity: PopularityDist::Zipf { alpha: 1.5 },
        seed: 42,
    })
}

fn bench_policy_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_replay");
    group.sample_size(10);
    let cost = CostModel::new(NodeSpec::a800_node(4), ModelShape::llama13b());
    let tr = trace();
    group.bench_function("baseline", |b| {
        b.iter(|| DeltaZipEngine::new(cost, DeltaZipConfig::default()).run(&tr))
    });
    group.bench_function("length_aware", |b| {
        b.iter(|| {
            DeltaZipEngine::new(
                cost,
                DeltaZipConfig {
                    preemption: PreemptionPolicy::LengthAware { spare_tokens: 16 },
                    ..DeltaZipConfig::default()
                },
            )
            .with_estimator(LengthEstimator::quantile(0.75))
            .run(&tr)
        })
    });
    group.bench_function("slo_priority", |b| {
        b.iter(|| {
            DeltaZipEngine::new(cost, DeltaZipConfig::default())
                .with_slo_policy(SloPolicy::tiered(24, 4))
                .run(&tr)
        })
    });
    group.bench_function("dynamic_n", |b| {
        b.iter(|| {
            DeltaZipEngine::new(cost, DeltaZipConfig::default())
                .with_dynamic_n(DynamicN::new(DynamicNConfig::default(), 4))
                .run(&tr)
        })
    });
    group.finish();
}

fn bench_cpu_decode_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpu_decode");
    group.sample_size(10);
    let cfg = test_config();
    let mut rng = Rng::seeded(1);
    let base = Params::init(cfg, &mut rng);

    // Delta path: two untrained-but-packed variants.
    let corpus = Corpus::new(cfg.max_seq);
    let calib = calibration_set(&corpus, 4, 2);
    let mut tuned = base.clone();
    tuned.for_each_mut(|_, m| m.map_assign(|v| v + 0.01));
    let (cd, _) = delta_compress(&base, &tuned, &calib, DeltaCompressConfig::starred(4));

    // Adapter path: one LoRA and one RoSA adapter.
    let lora = LoraAdapter::init(&base, LoraConfig::rank(8), &mut rng);
    let mut rosa = RosaAdapter::init(&base, RosaConfig::new(8, 0.05), &mut rng);
    for s in &mut rosa.sparse {
        // Synthetic support so the sparse term has work to do.
        for i in 0..s.mask.len() / 20 {
            s.mask.data_mut()[i * 20] = 1.0;
            s.values.data_mut()[i * 20] = 0.01;
        }
    }

    for batch_size in [2usize, 8] {
        let prompt = vec![1usize, 5, 9, 3];
        group.bench_with_input(
            BenchmarkId::new("delta_sbmm", batch_size),
            &batch_size,
            |b, &n| {
                b.iter(|| {
                    let mut batch = DecoupledBatch::new(&base, vec![&cd]);
                    for _ in 0..n {
                        batch.admit(0, &prompt);
                    }
                    for _ in 0..4 {
                        batch.decode_step();
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("adapter_sgmv", batch_size),
            &batch_size,
            |b, &n| {
                b.iter(|| {
                    let mut batch = AdapterBatch::new(
                        &base,
                        vec![AdapterView::from_lora(&lora), AdapterView::from_rosa(&rosa)],
                    );
                    for i in 0..n {
                        batch.admit(i % 2, &prompt);
                    }
                    for _ in 0..4 {
                        batch.decode_step();
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_policy_replay, bench_cpu_decode_paths);
criterion_main!(benches);
