//! Criterion benches for the ΔCompress pipeline (offline cost, §4.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dz_compress::obs::{compress_matrix, hessian_from_inputs, ObsConfig};
use dz_compress::quant::QuantSpec;
use dz_tensor::{Matrix, Rng};

fn bench_obs_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_solver");
    for &d in &[64usize, 128, 256] {
        let mut rng = Rng::seeded(d as u64);
        let w = Matrix::randn(d, d, 0.02, &mut rng);
        let x = Matrix::randn(2 * d, d, 1.0, &mut rng);
        let h = hessian_from_inputs(&[&x]);
        let cfg = ObsConfig {
            spec: QuantSpec::new(4, 16),
            sparse24: true,
            damp: 0.05,
        };
        group.bench_with_input(BenchmarkId::new("sparse24_4bit", d), &d, |b, _| {
            b.iter(|| compress_matrix(&w, &h, &cfg))
        });
    }
    group.finish();
}

fn bench_hessian(c: &mut Criterion) {
    let mut group = c.benchmark_group("hessian");
    for &d in &[64usize, 256] {
        let mut rng = Rng::seeded(d as u64);
        let xs: Vec<Matrix> = (0..8)
            .map(|_| Matrix::randn(24, d, 1.0, &mut rng))
            .collect();
        group.bench_with_input(BenchmarkId::new("accumulate", d), &d, |b, _| {
            b.iter(|| {
                let refs: Vec<&Matrix> = xs.iter().collect();
                hessian_from_inputs(&refs)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_obs_solver, bench_hessian);
criterion_main!(benches);
