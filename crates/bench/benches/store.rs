//! Criterion benches for the artifact store: `.dza` write/read, registry
//! publish, and tiered-cache fetch paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dz_compress::codec::{CodecId, PackedLayer};
use dz_compress::pack::CompressedMatrix;
use dz_compress::pipeline::{CompressedDelta, DeltaCompressConfig, SizeReport};
use dz_compress::quant::{quantize_slice, QuantSpec};
use dz_store::dza::{write_delta, ArtifactReader};
use dz_store::{sha256, Registry, TieredDeltaStore};
use dz_tensor::{Matrix, Rng};
use std::collections::BTreeMap;
use std::io::Cursor;

fn fixture_delta(d: usize, seed: u64) -> CompressedDelta {
    let mut rng = Rng::seeded(seed);
    let spec = QuantSpec::new(4, 16);
    let mut layers = BTreeMap::new();
    for layer in 0..4 {
        let wt = Matrix::randn(d, d, 0.05, &mut rng);
        let mut levels = Vec::new();
        let mut scales = Vec::new();
        for r in 0..d {
            let (l, s) = quantize_slice(wt.row(r), spec);
            levels.extend(l);
            scales.extend(s);
        }
        layers.insert(
            format!("layers.{layer}.w"),
            PackedLayer::Quant(CompressedMatrix::from_dense(d, d, &levels, scales, spec)),
        );
    }
    let compressed: usize = layers.values().map(|c| c.packed_bytes()).sum();
    CompressedDelta {
        layers,
        rest: BTreeMap::new(),
        codec: CodecId::SparseGptStar,
        config: DeltaCompressConfig::starred(4),
        report: SizeReport {
            compressed_linear_bytes: compressed,
            uncompressed_rest_bytes: 0,
            full_fp16_bytes: 4 * d * d * 2,
            lossless_linear_bytes: None,
        },
    }
}

fn container(delta: &CompressedDelta) -> Vec<u8> {
    write_delta(Cursor::new(Vec::new()), "bench", sha256(b"base"), delta)
        .expect("write")
        .into_inner()
}

fn bench_dza(c: &mut Criterion) {
    let mut group = c.benchmark_group("dza");
    group.sample_size(10);
    for d in [64usize, 128] {
        let delta = fixture_delta(d, d as u64);
        let bytes = container(&delta);
        group.throughput(Throughput::Bytes(bytes.len() as u64));
        group.bench_with_input(BenchmarkId::new("write", d), &delta, |b, delta| {
            b.iter(|| container(delta));
        });
        group.bench_with_input(BenchmarkId::new("read_delta", d), &bytes, |b, bytes| {
            b.iter(|| {
                ArtifactReader::open(Cursor::new(bytes))
                    .expect("open")
                    .read_delta()
                    .expect("read")
            });
        });
    }
    group.finish();
}

fn bench_registry_and_tiered(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("dz-store-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let registry = Registry::open(&dir).expect("open");
    let delta = fixture_delta(96, 9);

    let mut group = c.benchmark_group("registry");
    group.sample_size(10);
    group.bench_function("publish", |b| {
        b.iter(|| {
            registry
                .publish_delta("bench-variant", sha256(b"base"), &delta)
                .expect("publish")
        });
    });
    let id = registry
        .publish_delta("bench-variant", sha256(b"base"), &delta)
        .expect("publish");
    group.bench_function("load_delta", |b| {
        b.iter(|| registry.load_delta(&id).expect("load"));
    });

    let mut store = TieredDeltaStore::new(registry, 1 << 30);
    store.fetch(&id).expect("prime");
    group.bench_function("tiered_host_hit", |b| {
        b.iter(|| store.fetch(&id).expect("hit"));
    });
    group.bench_function("tiered_disk_miss", |b| {
        b.iter(|| {
            store.evict(&id);
            store.fetch(&id).expect("miss")
        });
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_dza, bench_registry_and_tiered);
criterion_main!(benches);
