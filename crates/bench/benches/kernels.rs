//! Criterion benches over the CPU reference kernels (Figure 6/7 CPU-side
//! sanity check: quantized and sparse kernels must move fewer bytes and
//! grouped SBMM must beat the per-request loop).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dz_compress::obs::{compress_matrix, ObsConfig};
use dz_compress::pack::CompressedMatrix;
use dz_compress::quant::QuantSpec;
use dz_kernels::{quant_gemm, sbmm_grouped, sbmm_naive};
use dz_tensor::{Matrix, Rng};

fn packed(d_in: usize, d_out: usize, bits: u32, sparse: bool, seed: u64) -> CompressedMatrix {
    let mut rng = Rng::seeded(seed);
    let w = Matrix::randn(d_in, d_out, 0.02, &mut rng);
    let cfg = ObsConfig {
        spec: QuantSpec::new(bits, 16),
        sparse24: sparse,
        damp: 0.05,
    };
    compress_matrix(&w, &Matrix::identity(d_in), &cfg).packed
}

fn bench_gemm_formats(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_formats");
    let (d_in, d_out) = (256, 256);
    let mut rng = Rng::seeded(1);
    let w = Matrix::randn(d_in, d_out, 0.02, &mut rng);
    let dense4 = packed(d_in, d_out, 4, false, 2);
    let sparse4 = packed(d_in, d_out, 4, true, 3);
    for m in [1usize, 8, 64] {
        let x = Matrix::randn(m, d_in, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::new("fp16_dense", m), &x, |b, x| {
            b.iter(|| x.matmul(&w))
        });
        group.bench_with_input(BenchmarkId::new("int4_dense", m), &x, |b, x| {
            b.iter(|| quant_gemm(x, &dense4))
        });
        group.bench_with_input(BenchmarkId::new("int4_sparse24", m), &x, |b, x| {
            b.iter(|| quant_gemm(x, &sparse4))
        });
    }
    group.finish();
}

fn bench_sbmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("sbmm");
    let (d_in, d_out) = (128, 128);
    let mut rng = Rng::seeded(4);
    for n_models in [4usize, 16] {
        let deltas: Vec<CompressedMatrix> = (0..n_models)
            .map(|i| packed(d_in, d_out, 4, true, 10 + i as u64))
            .collect();
        let refs: Vec<&CompressedMatrix> = deltas.iter().collect();
        let batch = 32usize;
        let x = Matrix::randn(batch, d_in, 1.0, &mut rng);
        let idx: Vec<usize> = (0..batch).map(|i| i % n_models).collect();
        group.bench_with_input(BenchmarkId::new("naive", n_models), &x, |b, x| {
            b.iter(|| sbmm_naive(x, &idx, &refs))
        });
        group.bench_with_input(BenchmarkId::new("grouped", n_models), &x, |b, x| {
            b.iter(|| sbmm_grouped(x, &idx, &refs))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gemm_formats, bench_sbmm);
criterion_main!(benches);
