//! Criterion benches for the serving simulator itself (events/second of the
//! discrete-event replay; keeps the figure sweeps honest about sim cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dz_gpusim::shapes::ModelShape;
use dz_gpusim::spec::NodeSpec;
use dz_serve::{CostModel, DeltaZipConfig, DeltaZipEngine, Engine, VllmScbConfig, VllmScbEngine};
use dz_workload::{PopularityDist, Trace, TraceSpec};

fn trace(rate: f64) -> Trace {
    Trace::generate(TraceSpec {
        n_models: 16,
        arrival_rate: rate,
        duration_s: 60.0,
        popularity: PopularityDist::Zipf { alpha: 1.5 },
        seed: 42,
    })
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_replay");
    group.sample_size(10);
    let cost = CostModel::new(NodeSpec::a800_node(4), ModelShape::llama13b());
    for rate in [0.5f64, 2.0] {
        let tr = trace(rate);
        group.bench_with_input(BenchmarkId::new("deltazip", rate), &tr, |b, tr| {
            b.iter(|| DeltaZipEngine::new(cost, DeltaZipConfig::default()).run(tr))
        });
        group.bench_with_input(BenchmarkId::new("vllm_scb", rate), &tr, |b, tr| {
            b.iter(|| VllmScbEngine::new(cost, VllmScbConfig::default()).run(tr))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
