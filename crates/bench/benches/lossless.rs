//! Criterion benches for the GDeflate-substitute codec (Step 4 trade-off).
//!
//! The decode benches compare the retained serial tree-walk reference
//! against the LUT fast path (single-threaded) and the page-parallel
//! decoder, on both a packed-delta-like (repetitive) corpus and an
//! incompressible one — the acceptance gate for the fast-path pipeline is
//! ≥3× single-thread decode throughput over the reference on both.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
// One corpus definition shared with the `bench-lossless` experiment, so
// these numbers and BENCH_lossless.json always measure the same data.
use dz_bench::experiments::codec::{incompressible, packed_delta_like};

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("lossless");
    for &n in &[64usize * 1024, 512 * 1024] {
        let data = packed_delta_like(n, 7);
        group.throughput(Throughput::Bytes(n as u64));
        group.bench_with_input(BenchmarkId::new("compress", n), &data, |b, d| {
            b.iter(|| dz_lossless::compress(d))
        });
        let compressed = dz_lossless::compress(&data);
        group.bench_with_input(BenchmarkId::new("decompress", n), &compressed, |b, d| {
            b.iter(|| dz_lossless::decompress(d).unwrap())
        });
    }
    group.finish();
}

fn bench_decode_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("lossless-decode");
    let n = 4usize << 20;
    for (corpus, data) in [
        ("packed-delta", packed_delta_like(n, 7)),
        ("incompressible", incompressible(n, 11)),
    ] {
        let compressed = dz_lossless::compress(&data);
        group.throughput(Throughput::Bytes(n as u64));
        group.bench_with_input(
            BenchmarkId::new("reference", corpus),
            &compressed,
            |b, d| b.iter(|| dz_lossless::decompress_reference(d).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("lut-1-thread", corpus),
            &compressed,
            |b, d| b.iter(|| dz_lossless::decompress_with_threads(d, 1).unwrap()),
        );
        group.bench_with_input(BenchmarkId::new("parallel", corpus), &compressed, |b, d| {
            b.iter(|| dz_lossless::decompress(d).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_codec, bench_decode_paths);
criterion_main!(benches);
