//! Criterion benches for the GDeflate-substitute codec (Step 4 trade-off).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dz_tensor::Rng;

fn packed_delta_like(n: usize, seed: u64) -> Vec<u8> {
    // Quantized deltas are low-entropy integer streams with runs of zero
    // levels; synthesize the same flavor of data.
    let mut rng = Rng::seeded(seed);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        if rng.bernoulli(0.6) {
            let run = 1 + rng.below(24);
            out.extend(std::iter::repeat_n(0u8, run.min(n - out.len())));
        } else {
            out.push(rng.below(256) as u8);
        }
    }
    out
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("lossless");
    for &n in &[64usize * 1024, 512 * 1024] {
        let data = packed_delta_like(n, 7);
        group.throughput(Throughput::Bytes(n as u64));
        group.bench_with_input(BenchmarkId::new("compress", n), &data, |b, d| {
            b.iter(|| dz_lossless::compress(d))
        });
        let compressed = dz_lossless::compress(&data);
        group.bench_with_input(BenchmarkId::new("decompress", n), &compressed, |b, d| {
            b.iter(|| dz_lossless::decompress(d).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
