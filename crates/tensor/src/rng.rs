//! Deterministic random number generation.
//!
//! All stochastic components in the reproduction (weight init, workload
//! generation, task synthesis) draw from this seeded generator so that every
//! experiment is exactly reproducible from its seed. The core is
//! `xoshiro256**`, a small, fast, well-tested PRNG; normal variates come from
//! the Box-Muller transform (no caching; simplicity over the last ~2x).

/// A small deterministic PRNG (xoshiro256**) with convenience samplers.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed using SplitMix64 expansion.
    pub fn seeded(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        Self { s }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn uniform(&mut self) -> f32 {
        // Use the top 24 bits for a uniformly spaced float.
        (self.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn uniform_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is meaningless");
        // Rejection-free multiply-shift; bias is negligible for n << 2^64.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Standard normal variate via Box-Muller.
    pub fn normal(&mut self) -> f32 {
        let mut u1 = self.uniform_f64();
        if u1 <= f64::MIN_POSITIVE {
            u1 = f64::MIN_POSITIVE;
        }
        let u2 = self.uniform_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        (r * (2.0 * std::f64::consts::PI * u2).cos()) as f32
    }

    /// Exponential variate with the given rate (mean `1/rate`).
    ///
    /// # Panics
    ///
    /// Panics if `rate <= 0`.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        let mut u = self.uniform_f64();
        if u <= f64::MIN_POSITIVE {
            u = f64::MIN_POSITIVE;
        }
        -u.ln() / rate
    }

    /// Log-normal variate: `exp(mu + sigma * N(0,1))`.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.normal() as f64).exp()
    }

    /// Returns `true` with probability `p`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform_f64() < p
    }

    /// Chooses a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }

    /// Fisher-Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }

    /// Samples an index from unnormalized non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if the weights are empty or sum to zero.
    pub fn weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must have positive sum");
        let mut target = self.uniform_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            target -= w;
            if target < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Forks an independent generator (for parallel/streamed use).
    pub fn fork(&mut self) -> Rng {
        Rng::seeded(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_sequences() {
        let mut a = Rng::seeded(1);
        let mut b = Rng::seeded(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = Rng::seeded(2);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn below_in_range_and_covers() {
        let mut rng = Rng::seeded(3);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            let v = rng.below(7);
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = Rng::seeded(4);
        let n = 100_000;
        let (mut sum, mut sq) = (0.0f64, 0.0f64);
        for _ in 0..n {
            let v = rng.normal() as f64;
            sum += v;
            sq += v * v;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = Rng::seeded(5);
        let n = 100_000;
        let rate = 2.5;
        let mean: f64 = (0..n).map(|_| rng.exponential(rate)).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn weighted_respects_weights() {
        let mut rng = Rng::seeded(6);
        let weights = [1.0, 3.0];
        let n = 50_000;
        let ones = (0..n).filter(|_| rng.weighted(&weights) == 1).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::seeded(7);
        let mut v: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fork_diverges_from_parent() {
        let mut a = Rng::seeded(8);
        let mut b = a.fork();
        let av: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let bv: Vec<u64> = (0..10).map(|_| b.next_u64()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn bernoulli_frequency() {
        let mut rng = Rng::seeded(9);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.bernoulli(0.3)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }
}
