//! Blocked and multi-threaded matrix multiplication.
//!
//! The inner kernel is a cache-blocked `i-k-j` loop over row-major data,
//! which vectorizes well with the default compiler settings. For larger
//! problems [`Matrix::matmul`] splits the output rows across a scoped
//! thread pool; the split threshold was chosen so tiny (test-sized)
//! matrices do not pay thread spawn costs.

use crate::matrix::Matrix;

/// Minimum number of output FLOPs before GEMM goes multi-threaded.
const PARALLEL_FLOP_THRESHOLD: usize = 1 << 22;

/// Maximum number of worker threads used by the parallel path.
const MAX_THREADS: usize = 8;

impl Matrix {
    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols(),
            other.rows(),
            "matmul shape mismatch: {:?} x {:?}",
            self.shape(),
            other.shape()
        );
        let (m, k) = self.shape();
        let n = other.cols();
        let mut out = Matrix::zeros(m, n);
        let flops = m * n * k;
        if flops >= PARALLEL_FLOP_THRESHOLD && m >= 2 {
            matmul_parallel(self, other, &mut out);
        } else {
            matmul_block(self.data(), other.data(), out.data_mut(), m, k, n);
        }
        out
    }

    /// Matrix product with the second operand transposed: `self * other^T`.
    ///
    /// This avoids materializing the transpose; `other` is `(n, k)` where
    /// `self` is `(m, k)` and the result is `(m, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols(),
            other.cols(),
            "matmul_nt shape mismatch: {:?} x {:?}^T",
            self.shape(),
            other.shape()
        );
        let (m, _k) = self.shape();
        let n = other.rows();
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = other.row(j);
                let mut acc = 0.0f32;
                for (a, b) in a_row.iter().zip(b_row.iter()) {
                    acc += a * b;
                }
                *o = acc;
            }
        }
        out
    }

    /// Matrix product with the first operand transposed: `self^T * other`.
    ///
    /// `self` is `(k, m)`, `other` is `(k, n)`, the result is `(m, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != other.rows()`.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows(),
            other.rows(),
            "matmul_tn shape mismatch: {:?}^T x {:?}",
            self.shape(),
            other.shape()
        );
        let (k, m) = self.shape();
        let n = other.cols();
        let mut out = Matrix::zeros(m, n);
        // Accumulate rank-1 updates row by row of the shared k dimension;
        // this keeps both reads sequential.
        for kk in 0..k {
            let a_row = self.row(kk);
            let b_row = other.row(kk);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f32]) -> Vec<f32> {
        assert_eq!(v.len(), self.cols(), "matvec length mismatch");
        let mut out = vec![0.0f32; self.rows()];
        for (i, o) in out.iter_mut().enumerate() {
            let row = self.row(i);
            let mut acc = 0.0f32;
            for (a, b) in row.iter().zip(v.iter()) {
                acc += a * b;
            }
            *o = acc;
        }
        out
    }
}

/// Cache-blocked single-threaded GEMM on raw row-major slices.
///
/// Computes `c += a * b` where `a` is `(m, k)`, `b` is `(k, n)` and `c` is
/// `(m, n)`. `c` must be zero-initialized by the caller if a plain product is
/// wanted.
pub fn matmul_block(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    const KB: usize = 64;
    const JB: usize = 256;
    for kb in (0..k).step_by(KB) {
        let k_end = (kb + KB).min(k);
        for jb in (0..n).step_by(JB) {
            let j_end = (jb + JB).min(n);
            for i in 0..m {
                let c_row = &mut c[i * n..(i + 1) * n];
                for kk in kb..k_end {
                    let aik = a[i * k + kk];
                    if aik == 0.0 {
                        continue;
                    }
                    let b_row = &b[kk * n..(kk + 1) * n];
                    for j in jb..j_end {
                        c_row[j] += aik * b_row[j];
                    }
                }
            }
        }
    }
}

fn matmul_parallel(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    let (m, k) = a.shape();
    let n = b.cols();
    let threads = MAX_THREADS
        .min(m)
        .min(std::thread::available_parallelism().map_or(1, |p| p.get()));
    if threads <= 1 {
        matmul_block(a.data(), b.data(), out.data_mut(), m, k, n);
        return;
    }
    let rows_per = m.div_ceil(threads);
    let b_data = b.data();
    let a_data = a.data();
    let chunks: Vec<(usize, &mut [f32])> = out
        .data_mut()
        .chunks_mut(rows_per * n)
        .enumerate()
        .collect();
    // dz-lint: allow(thread-spawn, "data-parallel GEMM over disjoint row chunks; output is order-independent")
    std::thread::scope(|scope| {
        for (idx, c_chunk) in chunks {
            let r0 = idx * rows_per;
            let rows_here = c_chunk.len() / n;
            let a_chunk = &a_data[r0 * k..(r0 + rows_here) * k];
            scope.spawn(move || {
                matmul_block(a_chunk, b_data, c_chunk, rows_here, k, n);
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let (m, k) = a.shape();
        let n = b.cols();
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f64;
                for kk in 0..k {
                    acc += a.get(i, kk) as f64 * b.get(kk, j) as f64;
                }
                out.set(i, j, acc as f32);
            }
        }
        out
    }

    #[test]
    fn small_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = Rng::seeded(1);
        let a = Matrix::randn(9, 9, 1.0, &mut rng);
        assert_eq!(a.matmul(&Matrix::identity(9)), a);
    }

    #[test]
    fn blocked_matches_naive_odd_shapes() {
        let mut rng = Rng::seeded(2);
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (17, 31, 13),
            (64, 64, 64),
            (65, 129, 67),
        ] {
            let a = Matrix::randn(m, k, 1.0, &mut rng);
            let b = Matrix::randn(k, n, 1.0, &mut rng);
            let c = a.matmul(&b);
            let r = naive_matmul(&a, &b);
            assert!(c.max_abs_diff(&r) < 1e-3, "mismatch at {m}x{k}x{n}");
        }
    }

    #[test]
    fn parallel_path_matches_naive() {
        let mut rng = Rng::seeded(3);
        // Big enough to cross PARALLEL_FLOP_THRESHOLD (2^22 flops).
        let a = Matrix::randn(128, 192, 1.0, &mut rng);
        let b = Matrix::randn(192, 256, 1.0, &mut rng);
        let c = a.matmul(&b);
        let r = naive_matmul(&a, &b);
        assert!(c.max_abs_diff(&r) < 1e-2);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let mut rng = Rng::seeded(4);
        let a = Matrix::randn(7, 11, 1.0, &mut rng);
        let b = Matrix::randn(5, 11, 1.0, &mut rng);
        let via_nt = a.matmul_nt(&b);
        let via_t = a.matmul(&b.transpose());
        assert!(via_nt.max_abs_diff(&via_t) < 1e-4);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let mut rng = Rng::seeded(5);
        let a = Matrix::randn(11, 7, 1.0, &mut rng);
        let b = Matrix::randn(11, 5, 1.0, &mut rng);
        let via_tn = a.matmul_tn(&b);
        let via_t = a.transpose().matmul(&b);
        assert!(via_tn.max_abs_diff(&via_t) < 1e-4);
    }

    #[test]
    fn matvec_matches_matmul() {
        let mut rng = Rng::seeded(6);
        let a = Matrix::randn(6, 9, 1.0, &mut rng);
        let v = Matrix::randn(9, 1, 1.0, &mut rng);
        let mv = a.matvec(v.data());
        let mm = a.matmul(&v);
        for (x, y) in mv.iter().zip(mm.data().iter()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
