//! Summary statistics and histograms used by the experiment harness.
//!
//! Figure 3 of the paper plots the magnitude distribution of a base weight
//! matrix, its fine-tuned counterpart, and their delta; the serving metrics
//! report means and percentiles. This module hosts those small utilities so
//! they are shared (and tested) in one place.

/// Basic distribution summary of a slice of values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
}

impl Summary {
    /// Computes the summary of the given values.
    ///
    /// Returns an all-zero summary for an empty slice.
    pub fn of(values: &[f32]) -> Summary {
        if values.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                std: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let n = values.len() as f64;
        let mut sum = 0.0f64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &v in values {
            let v = v as f64;
            sum += v;
            min = min.min(v);
            max = max.max(v);
        }
        let mean = sum / n;
        let var = values
            .iter()
            .map(|&v| {
                let d = v as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n;
        Summary {
            count: values.len(),
            mean,
            std: var.sqrt(),
            min,
            max,
        }
    }
}

/// A fixed-range histogram with uniform bins.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    /// Samples below `lo` or above `hi`.
    outliers: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` uniform buckets.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            outliers: 0,
        }
    }

    /// Adds a sample.
    pub fn add(&mut self, v: f64) {
        if v < self.lo || v >= self.hi || !v.is_finite() {
            self.outliers += 1;
            return;
        }
        let frac = (v - self.lo) / (self.hi - self.lo);
        let idx = ((frac * self.counts.len() as f64) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// Adds every element of a slice.
    pub fn add_all(&mut self, vs: &[f32]) {
        for &v in vs {
            self.add(v as f64);
        }
    }

    /// Bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of out-of-range samples.
    pub fn outliers(&self) -> u64 {
        self.outliers
    }

    /// Midpoint of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Renders a compact ASCII sparkline of the distribution.
    pub fn sparkline(&self) -> String {
        const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        self.counts
            .iter()
            .map(|&c| GLYPHS[(c as usize * (GLYPHS.len() - 1)) / max as usize])
            .collect()
    }
}

/// Returns the `q`-quantile (0.0..=1.0) of the values using linear
/// interpolation on the sorted order statistics.
///
/// Returns `None` for an empty slice.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Mean of a slice of `f64` (0.0 when empty).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_values() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-9);
        assert!((s.std - (1.25f64).sqrt()).abs() < 1e-6);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn summary_empty() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn histogram_bins_and_outliers() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.add(0.5);
        h.add(9.99);
        h.add(-1.0);
        h.add(10.0); // Boundary is exclusive on the right.
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.outliers(), 2);
        assert!((h.bin_center(0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_sparkline_length() {
        let mut h = Histogram::new(0.0, 1.0, 16);
        h.add_all(&[0.1, 0.1, 0.9]);
        let s = h.sparkline();
        assert_eq!(s.chars().count(), 16);
    }

    #[test]
    fn quantiles() {
        let v = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&v, 0.0), Some(1.0));
        assert_eq!(quantile(&v, 1.0), Some(5.0));
        assert_eq!(quantile(&v, 0.5), Some(3.0));
        assert_eq!(quantile(&v, 0.25), Some(2.0));
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn quantile_interpolates() {
        let v = vec![0.0, 10.0];
        assert!((quantile(&v, 0.3).unwrap() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn mean_works() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}
