//! The small amount of dense linear algebra needed by the OBS solver.
//!
//! SparseGPT-style compression needs the inverse of a (damped) Hessian
//! `H = X X^T + lambda I`, which is symmetric positive definite. We provide a
//! Cholesky factorization, triangular solves, and a PSD inverse built from
//! them. `f64` accumulation keeps the factorization stable for the modest
//! matrix sizes used here (up to a few thousand).

use crate::matrix::Matrix;

/// Error type for factorizations that can fail on bad input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// The matrix is not (numerically) positive definite.
    NotPositiveDefinite {
        /// Index of the pivot that failed.
        pivot: usize,
    },
    /// The matrix is not square.
    NotSquare,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            LinalgError::NotSquare => write!(f, "matrix is not square"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Computes the lower-triangular Cholesky factor `L` with `A = L L^T`.
///
/// Only the lower triangle of `a` is read. Returns an error if a pivot is
/// non-positive, which for our use means the damping term was too small.
pub fn cholesky(a: &Matrix) -> Result<Matrix, LinalgError> {
    if a.rows() != a.cols() {
        return Err(LinalgError::NotSquare);
    }
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    for j in 0..n {
        // Diagonal entry.
        let mut d = a.get(j, j) as f64;
        for k in 0..j {
            let v = l.get(j, k) as f64;
            d -= v * v;
        }
        if d <= 0.0 || !d.is_finite() {
            return Err(LinalgError::NotPositiveDefinite { pivot: j });
        }
        let djj = d.sqrt();
        l.set(j, j, djj as f32);
        // Column below the diagonal.
        for i in (j + 1)..n {
            let mut s = a.get(i, j) as f64;
            for k in 0..j {
                s -= l.get(i, k) as f64 * l.get(j, k) as f64;
            }
            l.set(i, j, (s / djj) as f32);
        }
    }
    Ok(l)
}

/// Solves `L y = b` for lower-triangular `L` (forward substitution).
///
/// # Panics
///
/// Panics if shapes are inconsistent.
pub fn solve_lower(l: &Matrix, b: &[f32]) -> Vec<f32> {
    let n = l.rows();
    assert_eq!(l.cols(), n, "solve_lower needs a square matrix");
    assert_eq!(b.len(), n, "rhs length mismatch");
    let mut y = vec![0.0f32; n];
    for i in 0..n {
        let mut s = b[i] as f64;
        let row = l.row(i);
        for (k, yk) in y.iter().enumerate().take(i) {
            s -= row[k] as f64 * *yk as f64;
        }
        y[i] = (s / l.get(i, i) as f64) as f32;
    }
    y
}

/// Solves `L^T x = y` for lower-triangular `L` (backward substitution).
///
/// # Panics
///
/// Panics if shapes are inconsistent.
pub fn solve_lower_transpose(l: &Matrix, y: &[f32]) -> Vec<f32> {
    let n = l.rows();
    assert_eq!(l.cols(), n, "solve_lower_transpose needs a square matrix");
    assert_eq!(y.len(), n, "rhs length mismatch");
    let mut x = vec![0.0f32; n];
    for i in (0..n).rev() {
        let mut s = y[i] as f64;
        for (k, &xk) in x.iter().enumerate().skip(i + 1) {
            s -= l.get(k, i) as f64 * xk as f64;
        }
        x[i] = (s / l.get(i, i) as f64) as f32;
    }
    x
}

/// Inverse of a symmetric positive definite matrix via Cholesky.
///
/// Solves `A x_i = e_i` column by column; `O(n^3)` like the factorization
/// itself, which is fine at the layer widths used in this reproduction.
pub fn inverse_psd(a: &Matrix) -> Result<Matrix, LinalgError> {
    let l = cholesky(a)?;
    let n = a.rows();
    let mut inv = Matrix::zeros(n, n);
    let mut e = vec![0.0f32; n];
    for i in 0..n {
        e[i] = 1.0;
        let y = solve_lower(&l, &e);
        let x = solve_lower_transpose(&l, &y);
        for (r, v) in x.iter().enumerate() {
            inv.set(r, i, *v);
        }
        e[i] = 0.0;
    }
    Ok(inv)
}

/// Upper-triangular Cholesky of the *inverse*: returns `U` with
/// `A^{-1} = U^T U` computed as the transpose-inverse of `L`.
///
/// SparseGPT works with the upper Cholesky factor of `H^{-1}`; exposing it
/// directly avoids forming the full inverse in the solver's hot loop.
pub fn cholesky_inverse_upper(a: &Matrix) -> Result<Matrix, LinalgError> {
    let inv = inverse_psd(a)?;
    // Cholesky of the inverse, then transpose to get the upper factor.
    let l = cholesky(&inv)?;
    Ok(l.transpose())
}

/// A thin singular value decomposition `A = U diag(S) V^T`.
///
/// For an `(m, n)` input with `k = min(m, n)`: `u` is `(m, k)`, `s` holds
/// `k` non-negative singular values in descending order, and `vt` is
/// `(k, n)`. Columns of `u` belonging to (numerically) zero singular
/// values are zero.
#[derive(Debug, Clone, PartialEq)]
pub struct Svd {
    /// Left singular vectors, `(m, k)`.
    pub u: Matrix,
    /// Singular values, descending.
    pub s: Vec<f32>,
    /// Right singular vectors transposed, `(k, n)`.
    pub vt: Matrix,
}

impl Svd {
    /// Rank of the decomposition (`min(m, n)`).
    pub fn rank(&self) -> usize {
        self.s.len()
    }

    /// Reconstructs the best rank-`r` approximation `U_r diag(S_r) V_r^T`.
    ///
    /// `r` is clamped to the decomposition rank.
    pub fn reconstruct_rank(&self, r: usize) -> Matrix {
        let r = r.min(self.rank());
        let m = self.u.rows();
        let n = self.vt.cols();
        let mut out = Matrix::zeros(m, n);
        for j in 0..r {
            let sj = self.s[j];
            if sj == 0.0 {
                continue;
            }
            for i in 0..m {
                let uij = self.u.get(i, j) * sj;
                if uij == 0.0 {
                    continue;
                }
                let row = out.row_mut(i);
                for (c, v) in row.iter_mut().enumerate() {
                    *v += uij * self.vt.get(j, c);
                }
            }
        }
        out
    }
}

/// Thin SVD of a tall-or-square matrix (`m >= n`) via one-sided Jacobi:
/// column pairs of a working copy are rotated until mutually orthogonal;
/// column norms become the singular values and the accumulated rotations
/// form `V`. Deterministic, `O(n^2 m)` per sweep — ample for the layer
/// widths in this reproduction.
fn svd_tall(a: &Matrix) -> Svd {
    let (m, n) = a.shape();
    debug_assert!(m >= n);
    let mut w = a.clone(); // Columns will be orthogonalized in place.
    let mut v = Matrix::identity(n);
    let eps = 1e-7f64;
    for _sweep in 0..60 {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                // Gram entries of columns p and q, in f64 for stability.
                let (mut alpha, mut beta, mut gamma) = (0.0f64, 0.0f64, 0.0f64);
                for i in 0..m {
                    let wp = w.get(i, p) as f64;
                    let wq = w.get(i, q) as f64;
                    alpha += wp * wp;
                    beta += wq * wq;
                    gamma += wp * wq;
                }
                let scale = (alpha * beta).sqrt();
                if scale == 0.0 || gamma.abs() <= eps * scale {
                    continue;
                }
                off = off.max(gamma.abs() / scale);
                // Jacobi rotation zeroing the (p, q) Gram entry.
                let zeta = (beta - alpha) / (2.0 * gamma);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for i in 0..m {
                    let wp = w.get(i, p) as f64;
                    let wq = w.get(i, q) as f64;
                    w.set(i, p, (c * wp - s * wq) as f32);
                    w.set(i, q, (s * wp + c * wq) as f32);
                }
                for i in 0..n {
                    let vp = v.get(i, p) as f64;
                    let vq = v.get(i, q) as f64;
                    v.set(i, p, (c * vp - s * vq) as f32);
                    v.set(i, q, (s * vp + c * vq) as f32);
                }
            }
        }
        if off < eps {
            break;
        }
    }
    // Column norms are the singular values; sort descending.
    let mut order: Vec<usize> = (0..n).collect();
    let norms: Vec<f64> = (0..n)
        .map(|j| {
            (0..m)
                .map(|i| {
                    let x = w.get(i, j) as f64;
                    x * x
                })
                .sum::<f64>()
                .sqrt()
        })
        .collect();
    order.sort_by(|&a, &b| norms[b].partial_cmp(&norms[a]).expect("finite norms"));
    let mut u = Matrix::zeros(m, n);
    let mut s = Vec::with_capacity(n);
    let mut vt = Matrix::zeros(n, n);
    for (out_j, &j) in order.iter().enumerate() {
        let sigma = norms[j];
        s.push(sigma as f32);
        if sigma > 0.0 {
            for i in 0..m {
                u.set(i, out_j, (w.get(i, j) as f64 / sigma) as f32);
            }
        }
        for i in 0..n {
            vt.set(out_j, i, v.get(i, j));
        }
    }
    Svd { u, s, vt }
}

/// Thin SVD of any matrix (see [`Svd`] for shapes).
///
/// Wide inputs are handled by decomposing the transpose and swapping the
/// factors: `A^T = U' S V'^T  =>  A = V' S U'^T`.
pub fn svd_thin(a: &Matrix) -> Svd {
    let (m, n) = a.shape();
    if m >= n {
        svd_tall(a)
    } else {
        let t = svd_tall(&a.transpose());
        Svd {
            u: t.vt.transpose(),
            s: t.s,
            vt: t.u.transpose(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn random_spd(n: usize, seed: u64) -> Matrix {
        let mut rng = Rng::seeded(seed);
        let x = Matrix::randn(n, n + 4, 1.0, &mut rng);
        // X X^T + n*I is comfortably positive definite.
        let mut a = x.matmul_nt(&x);
        for i in 0..n {
            a.set(i, i, a.get(i, i) + n as f32);
        }
        a
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = random_spd(12, 1);
        let l = cholesky(&a).unwrap();
        let rec = l.matmul_nt(&l);
        assert!(a.max_abs_diff(&rec) < 1e-2, "diff {}", a.max_abs_diff(&rec));
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert!(matches!(
            cholesky(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn cholesky_rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert_eq!(cholesky(&a), Err(LinalgError::NotSquare));
    }

    #[test]
    fn triangular_solves_invert_l() {
        let a = random_spd(8, 2);
        let l = cholesky(&a).unwrap();
        let b: Vec<f32> = (0..8).map(|i| i as f32 - 3.0).collect();
        let y = solve_lower(&l, &b);
        // L y should equal b.
        let ly = l.matvec(&y);
        for (u, v) in ly.iter().zip(b.iter()) {
            assert!((u - v).abs() < 1e-3);
        }
        let x = solve_lower_transpose(&l, &y);
        let ltx = l.transpose().matvec(&x);
        for (u, v) in ltx.iter().zip(y.iter()) {
            assert!((u - v).abs() < 1e-3);
        }
    }

    #[test]
    fn inverse_psd_gives_identity() {
        let a = random_spd(10, 3);
        let inv = inverse_psd(&a).unwrap();
        let id = a.matmul(&inv);
        let eye = Matrix::identity(10);
        assert!(
            id.max_abs_diff(&eye) < 1e-2,
            "diff {}",
            id.max_abs_diff(&eye)
        );
    }

    #[test]
    fn cholesky_inverse_upper_reconstructs_inverse() {
        let a = random_spd(9, 4);
        let u = cholesky_inverse_upper(&a).unwrap();
        let inv = inverse_psd(&a).unwrap();
        let rec = u.matmul_tn(&u);
        assert!(
            rec.max_abs_diff(&inv) < 1e-2,
            "diff {}",
            rec.max_abs_diff(&inv)
        );
    }

    #[test]
    fn identity_inverse_is_identity() {
        let inv = inverse_psd(&Matrix::identity(5)).unwrap();
        assert!(inv.max_abs_diff(&Matrix::identity(5)) < 1e-6);
    }

    #[test]
    fn svd_reconstructs_tall_square_and_wide() {
        for (m, n, seed) in [(12usize, 7usize, 1u64), (9, 9, 2), (6, 14, 3)] {
            let mut rng = Rng::seeded(seed);
            let a = Matrix::randn(m, n, 1.0, &mut rng);
            let svd = svd_thin(&a);
            let k = m.min(n);
            assert_eq!(svd.u.shape(), (m, k));
            assert_eq!(svd.s.len(), k);
            assert_eq!(svd.vt.shape(), (k, n));
            let rec = svd.reconstruct_rank(k);
            assert!(
                a.max_abs_diff(&rec) < 1e-3,
                "{m}x{n}: diff {}",
                a.max_abs_diff(&rec)
            );
        }
    }

    #[test]
    fn singular_values_descend_and_factors_are_orthonormal() {
        let mut rng = Rng::seeded(4);
        let a = Matrix::randn(10, 6, 0.5, &mut rng);
        let svd = svd_thin(&a);
        for w in svd.s.windows(2) {
            assert!(w[0] >= w[1] - 1e-6, "not descending: {:?}", svd.s);
        }
        assert!(svd.s.iter().all(|&v| v >= 0.0));
        // U^T U = I and V V^T (= vt vt^T here) = I.
        let utu = svd.u.matmul_tn(&svd.u);
        assert!(utu.max_abs_diff(&Matrix::identity(6)) < 1e-3);
        let vvt = svd.vt.matmul_nt(&svd.vt);
        assert!(vvt.max_abs_diff(&Matrix::identity(6)) < 1e-3);
    }

    #[test]
    fn truncated_svd_beats_larger_truncation_never() {
        // Frobenius error of the rank-r approximation is non-increasing
        // in r — the spectral foundation of mixed-precision band codecs.
        let mut rng = Rng::seeded(5);
        let a = Matrix::randn(8, 8, 1.0, &mut rng);
        let svd = svd_thin(&a);
        let mut prev = f32::MAX;
        for r in 1..=8 {
            let err = a.sub(&svd.reconstruct_rank(r)).frob_norm();
            assert!(err <= prev + 1e-4, "rank {r}: {err} > {prev}");
            prev = err;
        }
    }

    #[test]
    fn svd_of_low_rank_matrix_finds_the_rank() {
        let mut rng = Rng::seeded(6);
        // Rank-2 outer-product matrix.
        let u = Matrix::randn(9, 2, 1.0, &mut rng);
        let v = Matrix::randn(2, 7, 1.0, &mut rng);
        let a = u.matmul(&v);
        let svd = svd_thin(&a);
        assert!(svd.s[1] > 1e-4);
        assert!(svd.s[2] < 1e-3, "third sv should vanish: {:?}", svd.s);
        let rec = svd.reconstruct_rank(2);
        assert!(a.max_abs_diff(&rec) < 1e-3);
    }

    #[test]
    fn svd_of_zero_matrix_is_all_zero() {
        let a = Matrix::zeros(5, 3);
        let svd = svd_thin(&a);
        assert!(svd.s.iter().all(|&v| v == 0.0));
        assert_eq!(svd.reconstruct_rank(3), a);
    }
}
