//! The small amount of dense linear algebra needed by the OBS solver.
//!
//! SparseGPT-style compression needs the inverse of a (damped) Hessian
//! `H = X X^T + lambda I`, which is symmetric positive definite. We provide a
//! Cholesky factorization, triangular solves, and a PSD inverse built from
//! them. `f64` accumulation keeps the factorization stable for the modest
//! matrix sizes used here (up to a few thousand).

use crate::matrix::Matrix;

/// Error type for factorizations that can fail on bad input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// The matrix is not (numerically) positive definite.
    NotPositiveDefinite {
        /// Index of the pivot that failed.
        pivot: usize,
    },
    /// The matrix is not square.
    NotSquare,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            LinalgError::NotSquare => write!(f, "matrix is not square"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Computes the lower-triangular Cholesky factor `L` with `A = L L^T`.
///
/// Only the lower triangle of `a` is read. Returns an error if a pivot is
/// non-positive, which for our use means the damping term was too small.
pub fn cholesky(a: &Matrix) -> Result<Matrix, LinalgError> {
    if a.rows() != a.cols() {
        return Err(LinalgError::NotSquare);
    }
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    for j in 0..n {
        // Diagonal entry.
        let mut d = a.get(j, j) as f64;
        for k in 0..j {
            let v = l.get(j, k) as f64;
            d -= v * v;
        }
        if d <= 0.0 || !d.is_finite() {
            return Err(LinalgError::NotPositiveDefinite { pivot: j });
        }
        let djj = d.sqrt();
        l.set(j, j, djj as f32);
        // Column below the diagonal.
        for i in (j + 1)..n {
            let mut s = a.get(i, j) as f64;
            for k in 0..j {
                s -= l.get(i, k) as f64 * l.get(j, k) as f64;
            }
            l.set(i, j, (s / djj) as f32);
        }
    }
    Ok(l)
}

/// Solves `L y = b` for lower-triangular `L` (forward substitution).
///
/// # Panics
///
/// Panics if shapes are inconsistent.
pub fn solve_lower(l: &Matrix, b: &[f32]) -> Vec<f32> {
    let n = l.rows();
    assert_eq!(l.cols(), n, "solve_lower needs a square matrix");
    assert_eq!(b.len(), n, "rhs length mismatch");
    let mut y = vec![0.0f32; n];
    for i in 0..n {
        let mut s = b[i] as f64;
        let row = l.row(i);
        for (k, yk) in y.iter().enumerate().take(i) {
            s -= row[k] as f64 * *yk as f64;
        }
        y[i] = (s / l.get(i, i) as f64) as f32;
    }
    y
}

/// Solves `L^T x = y` for lower-triangular `L` (backward substitution).
///
/// # Panics
///
/// Panics if shapes are inconsistent.
pub fn solve_lower_transpose(l: &Matrix, y: &[f32]) -> Vec<f32> {
    let n = l.rows();
    assert_eq!(l.cols(), n, "solve_lower_transpose needs a square matrix");
    assert_eq!(y.len(), n, "rhs length mismatch");
    let mut x = vec![0.0f32; n];
    for i in (0..n).rev() {
        let mut s = y[i] as f64;
        for (k, &xk) in x.iter().enumerate().skip(i + 1) {
            s -= l.get(k, i) as f64 * xk as f64;
        }
        x[i] = (s / l.get(i, i) as f64) as f32;
    }
    x
}

/// Inverse of a symmetric positive definite matrix via Cholesky.
///
/// Solves `A x_i = e_i` column by column; `O(n^3)` like the factorization
/// itself, which is fine at the layer widths used in this reproduction.
pub fn inverse_psd(a: &Matrix) -> Result<Matrix, LinalgError> {
    let l = cholesky(a)?;
    let n = a.rows();
    let mut inv = Matrix::zeros(n, n);
    let mut e = vec![0.0f32; n];
    for i in 0..n {
        e[i] = 1.0;
        let y = solve_lower(&l, &e);
        let x = solve_lower_transpose(&l, &y);
        for (r, v) in x.iter().enumerate() {
            inv.set(r, i, *v);
        }
        e[i] = 0.0;
    }
    Ok(inv)
}

/// Upper-triangular Cholesky of the *inverse*: returns `U` with
/// `A^{-1} = U^T U` computed as the transpose-inverse of `L`.
///
/// SparseGPT works with the upper Cholesky factor of `H^{-1}`; exposing it
/// directly avoids forming the full inverse in the solver's hot loop.
pub fn cholesky_inverse_upper(a: &Matrix) -> Result<Matrix, LinalgError> {
    let inv = inverse_psd(a)?;
    // Cholesky of the inverse, then transpose to get the upper factor.
    let l = cholesky(&inv)?;
    Ok(l.transpose())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn random_spd(n: usize, seed: u64) -> Matrix {
        let mut rng = Rng::seeded(seed);
        let x = Matrix::randn(n, n + 4, 1.0, &mut rng);
        // X X^T + n*I is comfortably positive definite.
        let mut a = x.matmul_nt(&x);
        for i in 0..n {
            a.set(i, i, a.get(i, i) + n as f32);
        }
        a
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = random_spd(12, 1);
        let l = cholesky(&a).unwrap();
        let rec = l.matmul_nt(&l);
        assert!(a.max_abs_diff(&rec) < 1e-2, "diff {}", a.max_abs_diff(&rec));
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert!(matches!(
            cholesky(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn cholesky_rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert_eq!(cholesky(&a), Err(LinalgError::NotSquare));
    }

    #[test]
    fn triangular_solves_invert_l() {
        let a = random_spd(8, 2);
        let l = cholesky(&a).unwrap();
        let b: Vec<f32> = (0..8).map(|i| i as f32 - 3.0).collect();
        let y = solve_lower(&l, &b);
        // L y should equal b.
        let ly = l.matvec(&y);
        for (u, v) in ly.iter().zip(b.iter()) {
            assert!((u - v).abs() < 1e-3);
        }
        let x = solve_lower_transpose(&l, &y);
        let ltx = l.transpose().matvec(&x);
        for (u, v) in ltx.iter().zip(y.iter()) {
            assert!((u - v).abs() < 1e-3);
        }
    }

    #[test]
    fn inverse_psd_gives_identity() {
        let a = random_spd(10, 3);
        let inv = inverse_psd(&a).unwrap();
        let id = a.matmul(&inv);
        let eye = Matrix::identity(10);
        assert!(
            id.max_abs_diff(&eye) < 1e-2,
            "diff {}",
            id.max_abs_diff(&eye)
        );
    }

    #[test]
    fn cholesky_inverse_upper_reconstructs_inverse() {
        let a = random_spd(9, 4);
        let u = cholesky_inverse_upper(&a).unwrap();
        let inv = inverse_psd(&a).unwrap();
        let rec = u.matmul_tn(&u);
        assert!(
            rec.max_abs_diff(&inv) < 1e-2,
            "diff {}",
            rec.max_abs_diff(&inv)
        );
    }

    #[test]
    fn identity_inverse_is_identity() {
        let inv = inverse_psd(&Matrix::identity(5)).unwrap();
        assert!(inv.max_abs_diff(&Matrix::identity(5)) < 1e-6);
    }
}
