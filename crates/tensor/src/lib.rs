//! Dense `f32` matrix math substrate for the DeltaZip reproduction.
//!
//! Every higher-level crate (the transformer substrate, the compression
//! pipeline, the CPU reference kernels) builds on the [`Matrix`] type defined
//! here. The crate deliberately stays small and dependency-free: row-major
//! dense storage, a blocked and optionally multi-threaded GEMM, the little
//! bit of linear algebra the OBS solver needs (Cholesky factorization and
//! positive-definite inversion), and summary statistics used by the
//! experiment harness.
//!
//! # Examples
//!
//! ```
//! use dz_tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! let c = a.matmul(&b);
//! assert_eq!(c, a);
//! ```

pub mod gemm;
pub mod linalg;
pub mod matrix;
pub mod rng;
pub mod stats;

pub use matrix::Matrix;
pub use rng::Rng;
