//! The dense row-major [`Matrix`] type and its elementwise operations.

use crate::rng::Rng;

/// A dense, row-major `f32` matrix.
///
/// The element at row `r`, column `c` lives at index `r * cols + c` of the
/// backing vector. All operations panic on shape mismatch: shape errors in
/// this codebase are programming bugs, not recoverable conditions.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl std::fmt::Debug for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Matrix {
    /// Creates a matrix of zeros with the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with a constant value.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "inconsistent row length");
            data.extend_from_slice(row);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix with entries drawn from `N(0, std^2)`.
    pub fn randn(rows: usize, cols: usize, std: f32, rng: &mut Rng) -> Self {
        let mut m = Self::zeros(rows, cols);
        for v in &mut m.data {
            *v = rng.normal() * std;
        }
        m
    }

    /// Creates a matrix with entries drawn uniformly from `[lo, hi)`.
    pub fn rand_uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut Rng) -> Self {
        let mut m = Self::zeros(rows, cols);
        for v in &mut m.data {
            *v = lo + (hi - lo) * rng.uniform();
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as a `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable access to the backing row-major data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the backing row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning the backing vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    pub fn col(&self, c: usize) -> Vec<f32> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        // Blocked transpose for cache friendliness on larger matrices.
        const B: usize = 32;
        for rb in (0..self.rows).step_by(B) {
            for cb in (0..self.cols).step_by(B) {
                for r in rb..(rb + B).min(self.rows) {
                    for c in cb..(cb + B).min(self.cols) {
                        out.data[c * self.rows + r] = self.data[r * self.cols + c];
                    }
                }
            }
        }
        out
    }

    /// Elementwise addition, returning a new matrix.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a + b)
    }

    /// Elementwise subtraction (`self - other`), returning a new matrix.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product, returning a new matrix.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a * b)
    }

    /// Adds `other` into `self` in place.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in add_assign");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// Adds `alpha * other` into `self` in place (axpy).
    pub fn add_scaled(&mut self, other: &Matrix, alpha: f32) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in add_scaled");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Multiplies every element by `alpha` in place.
    pub fn scale_assign(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Returns `alpha * self` as a new matrix.
    pub fn scale(&self, alpha: f32) -> Matrix {
        self.map(|v| v * alpha)
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_assign(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    fn zip_with(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(
            self.shape(),
            other.shape(),
            "shape mismatch: {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Frobenius norm.
    pub fn frob_norm(&self) -> f32 {
        self.data
            .iter()
            .map(|v| (*v as f64) * (*v as f64))
            .sum::<f64>()
            .sqrt() as f32
    }

    /// Largest absolute element (0.0 for an empty matrix).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0_f32, |m, v| m.max(v.abs()))
    }

    /// Mean of all elements (0.0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        (self.data.iter().map(|&v| v as f64).sum::<f64>() / self.data.len() as f64) as f32
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().map(|&v| v as f64).sum::<f64>() as f32
    }

    /// Fraction of elements that are exactly zero.
    pub fn zero_fraction(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        let zeros = self.data.iter().filter(|v| **v == 0.0).count();
        zeros as f32 / self.data.len() as f32
    }

    /// Extracts a sub-matrix of `h x w` starting at `(r0, c0)`.
    ///
    /// # Panics
    ///
    /// Panics if the region exceeds the matrix bounds.
    pub fn submatrix(&self, r0: usize, c0: usize, h: usize, w: usize) -> Matrix {
        assert!(
            r0 + h <= self.rows && c0 + w <= self.cols,
            "submatrix out of bounds"
        );
        let mut out = Matrix::zeros(h, w);
        for r in 0..h {
            out.row_mut(r).copy_from_slice(
                &self.data[(r0 + r) * self.cols + c0..(r0 + r) * self.cols + c0 + w],
            );
        }
        out
    }

    /// Writes `block` into `self` at offset `(r0, c0)`.
    ///
    /// # Panics
    ///
    /// Panics if the block exceeds the matrix bounds.
    pub fn set_submatrix(&mut self, r0: usize, c0: usize, block: &Matrix) {
        assert!(
            r0 + block.rows <= self.rows && c0 + block.cols <= self.cols,
            "set_submatrix out of bounds"
        );
        for r in 0..block.rows {
            let dst = (r0 + r) * self.cols + c0;
            self.data[dst..dst + block.cols].copy_from_slice(block.row(r));
        }
    }

    /// Stacks matrices vertically (all must share the column count).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or column counts differ.
    pub fn vstack(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "vstack of nothing");
        let cols = parts[0].cols;
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            assert_eq!(p.cols, cols, "vstack column mismatch");
            data.extend_from_slice(&p.data);
        }
        Matrix { rows, cols, data }
    }

    /// Returns true if all elements are finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Maximum absolute difference between two matrices of the same shape.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(
            self.shape(),
            other.shape(),
            "shape mismatch in max_abs_diff"
        );
        self.data
            .iter()
            .zip(other.data.iter())
            .fold(0.0_f32, |m, (a, b)| m.max((a - b).abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_diagonal() {
        let m = Matrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(m.get(r, c), if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_rows_and_access() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_shape_mismatch_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let mut rng = Rng::seeded(7);
        let m = Matrix::randn(17, 33, 1.0, &mut rng);
        let t = m.transpose();
        assert_eq!(t.shape(), (33, 17));
        assert_eq!(t.transpose(), m);
        assert_eq!(m.get(3, 11), t.get(11, 3));
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[10.0, 20.0], &[30.0, 40.0]]);
        assert_eq!(a.add(&b).data(), &[11.0, 22.0, 33.0, 44.0]);
        assert_eq!(b.sub(&a).data(), &[9.0, 18.0, 27.0, 36.0]);
        assert_eq!(a.hadamard(&b).data(), &[10.0, 40.0, 90.0, 160.0]);
        let mut c = a.clone();
        c.add_scaled(&b, 0.5);
        assert_eq!(c.data(), &[6.0, 12.0, 18.0, 24.0]);
    }

    #[test]
    fn norms_and_stats() {
        let m = Matrix::from_rows(&[&[3.0, -4.0]]);
        assert!((m.frob_norm() - 5.0).abs() < 1e-6);
        assert_eq!(m.max_abs(), 4.0);
        assert!((m.mean() - (-0.5)).abs() < 1e-6);
        assert_eq!(m.sum(), -1.0);
    }

    #[test]
    fn zero_fraction_counts_exact_zeros() {
        let m = Matrix::from_rows(&[&[0.0, 1.0, 0.0, 2.0]]);
        assert_eq!(m.zero_fraction(), 0.5);
    }

    #[test]
    fn submatrix_and_set_submatrix() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]]);
        let s = m.submatrix(1, 1, 2, 2);
        assert_eq!(s.data(), &[5.0, 6.0, 8.0, 9.0]);
        let mut m2 = Matrix::zeros(3, 3);
        m2.set_submatrix(0, 1, &s);
        assert_eq!(m2.get(0, 1), 5.0);
        assert_eq!(m2.get(1, 2), 9.0);
        assert_eq!(m2.get(2, 0), 0.0);
    }

    #[test]
    fn vstack_concatenates_rows() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let v = Matrix::vstack(&[&a, &b]);
        assert_eq!(v.shape(), (3, 2));
        assert_eq!(v.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn randn_is_deterministic_per_seed() {
        let mut r1 = Rng::seeded(42);
        let mut r2 = Rng::seeded(42);
        let a = Matrix::randn(4, 4, 1.0, &mut r1);
        let b = Matrix::randn(4, 4, 1.0, &mut r2);
        assert_eq!(a, b);
        let mut r3 = Rng::seeded(43);
        let c = Matrix::randn(4, 4, 1.0, &mut r3);
        assert_ne!(a, c);
    }

    #[test]
    fn max_abs_diff_works() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[1.5, 1.0]]);
        assert_eq!(a.max_abs_diff(&b), 1.0);
    }
}
