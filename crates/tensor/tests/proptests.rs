//! Property-based tests for the tensor substrate.

use dz_tensor::{linalg, Matrix, Rng};
use proptest::prelude::*;

fn arb_matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim, any::<u64>()).prop_map(|(r, c, seed)| {
        let mut rng = Rng::seeded(seed);
        Matrix::randn(r, c, 1.0, &mut rng)
    })
}

proptest! {
    #[test]
    fn transpose_is_involution(m in arb_matrix(24)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_identity_left_and_right(m in arb_matrix(16)) {
        let l = Matrix::identity(m.rows()).matmul(&m);
        let r = m.matmul(&Matrix::identity(m.cols()));
        prop_assert!(l.max_abs_diff(&m) < 1e-5);
        prop_assert!(r.max_abs_diff(&m) < 1e-5);
    }

    #[test]
    fn matmul_distributes_over_add(seed in any::<u64>(), m in 1usize..12, k in 1usize..12, n in 1usize..12) {
        // The distributive law (w_base + delta) X = w_base X + delta X is the
        // algebraic foundation of DeltaZip's decoupled serving (Eq. 2).
        let mut rng = Rng::seeded(seed);
        let w = Matrix::randn(m, k, 1.0, &mut rng);
        let d = Matrix::randn(m, k, 0.05, &mut rng);
        let x = Matrix::randn(k, n, 1.0, &mut rng);
        let fused = w.add(&d).matmul(&x);
        let split = w.matmul(&x).add(&d.matmul(&x));
        prop_assert!(fused.max_abs_diff(&split) < 1e-3);
    }

    #[test]
    fn add_sub_round_trip(seed in any::<u64>(), r in 1usize..16, c in 1usize..16) {
        let mut rng = Rng::seeded(seed);
        let a = Matrix::randn(r, c, 1.0, &mut rng);
        let b = Matrix::randn(r, c, 1.0, &mut rng);
        // (a + b) - b == a exactly is not guaranteed in floats, but close.
        let rt = a.add(&b).sub(&b);
        prop_assert!(rt.max_abs_diff(&a) < 1e-4);
    }

    #[test]
    fn cholesky_inverse_is_inverse(seed in any::<u64>(), n in 1usize..12) {
        let mut rng = Rng::seeded(seed);
        let x = Matrix::randn(n, n + 2, 1.0, &mut rng);
        let mut a = x.matmul_nt(&x);
        for i in 0..n {
            a.set(i, i, a.get(i, i) + (n as f32 + 1.0));
        }
        let inv = linalg::inverse_psd(&a).unwrap();
        let prod = a.matmul(&inv);
        prop_assert!(prod.max_abs_diff(&Matrix::identity(n)) < 5e-2);
    }

    #[test]
    fn quantile_is_monotone(mut vals in proptest::collection::vec(-1e6f64..1e6, 1..64), q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = dz_tensor::stats::quantile(&vals, lo).unwrap();
        let b = dz_tensor::stats::quantile(&vals, hi).unwrap();
        prop_assert!(a <= b + 1e-9);
    }
}
