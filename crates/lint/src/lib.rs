//! dz-lint — workspace determinism & accounting auditor.
//!
//! The simulator's headline claim is bit-identical reproducibility: the
//! fleet, cluster, and toppings suites pin `to_bits` checksums, and CI
//! diffs them on every push. That claim dies quietly the moment someone
//! iterates a `HashMap` inside replica state or compares two `f64`s
//! with `==`. dz-lint is the gate that keeps those mistakes from
//! landing: a hand-rolled lexer (no `syn` in this offline workspace)
//! strips comments, strings, and `#[cfg(test)]` regions, and a small
//! rule engine pattern-matches what remains.
//!
//! Rules: `wall-clock`, `hash-iter`, `float-eq`, `unwrap-budget`,
//! `thread-spawn`, `bench-provenance` — see [`rules`] for the full
//! taxonomy. Any individual site can be suppressed with a justification:
//!
//! ```text
//! // dz-lint: allow(wall-clock, "decode throughput is measured in real time by design")
//! let t0 = Instant::now();
//! ```
//!
//! A suppression on its own line covers the next code line; a trailing
//! suppression covers its own line. Unknown rules, missing
//! justifications, and suppressions that match nothing are themselves
//! diagnostics (`bad-suppression` / `unused-suppression`), so the
//! allow-list can never rot silently.

pub mod lexer;
pub mod rules;

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use lexer::LexedFile;
use rules::{FileMeta, RawFinding, UnwrapSite, RULE_IDS};
use serde::value::{Number, Value};

/// Directory components never descended into.
const SKIP_DIRS: &[&str] = &["target", "vendor", "fixtures", ".git"];

/// Package sub-directories scanned per crate. Files outside `src/` are
/// test-classified (exempt from every rule except suppression hygiene).
const PKG_DIRS: &[&str] = &["src", "tests", "examples", "benches"];

/// One diagnostic, ready to print as `path:line: [rule] message`.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id (a [`RULE_IDS`] entry, `bad-suppression`, or
    /// `unused-suppression`).
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable diagnostic.
    pub message: String,
}

/// The result of linting a workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by (path, line, rule).
    pub findings: Vec<Finding>,
    /// Unsuppressed unwrap/expect/panic! sites per crate.
    pub unwrap_counts: BTreeMap<String, usize>,
    /// Number of `.rs` files lexed.
    pub files_scanned: usize,
}

/// Lint configuration.
#[derive(Debug, Clone)]
pub struct Options {
    /// Workspace root.
    pub root: PathBuf,
    /// Unwrap-budget file, relative to `root` (or absolute).
    pub budget_path: PathBuf,
    /// Rewrite the budget file from current counts instead of
    /// comparing against it.
    pub update_budget: bool,
}

impl Options {
    /// Defaults for a workspace rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Options {
        Options {
            root: root.into(),
            budget_path: PathBuf::from("ci/unwrap-budget.json"),
            update_budget: false,
        }
    }

    fn budget_abs(&self) -> PathBuf {
        if self.budget_path.is_absolute() {
            self.budget_path.clone()
        } else {
            self.root.join(&self.budget_path)
        }
    }
}

// ---------------------------------------------------------------------------
// Suppressions.
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct Suppression {
    rule: String,
    /// Code line the suppression covers.
    target_line: usize,
    /// Line the comment itself sits on.
    comment_line: usize,
    used: bool,
}

/// Parses one comment body. `None` when the comment is not a dz-lint
/// directive at all; `Some(Err(reason))` when it tries and fails.
///
/// The directive must be the entire comment (`// dz-lint: …`), so docs
/// that merely *mention* the syntax mid-sentence are never parsed.
fn parse_directive(text: &str) -> Option<Result<(String, String), String>> {
    // Strip the comment markers the lexer preserves: `//`, `///`,
    // `//!`, or `/*` — the directive marker must come right after.
    let t = text.trim_start();
    let t = t.strip_prefix("/*").unwrap_or(t);
    let t = t.strip_prefix("//").unwrap_or(t);
    let t = t.strip_prefix(['!', '/']).unwrap_or(t);
    let rest = t.trim_start().strip_prefix("dz-lint:")?;
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        return Some(Err("expected `allow(<rule>, \"<justification>\")`".into()));
    };
    let Some((rule, rest)) = rest.split_once(',') else {
        return Some(Err(
            "missing justification: expected `allow(<rule>, \"<justification>\")`".into(),
        ));
    };
    let rule = rule.trim().to_string();
    if !RULE_IDS.contains(&rule.as_str()) {
        return Some(Err(format!(
            "unknown rule `{rule}` (known: {})",
            RULE_IDS.join(", ")
        )));
    }
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('"') else {
        return Some(Err("justification must be a quoted string".into()));
    };
    let Some((justification, rest)) = rest.split_once('"') else {
        return Some(Err("unterminated justification string".into()));
    };
    if justification.trim().is_empty() {
        return Some(Err("justification must not be empty".into()));
    }
    if !rest.trim_start().starts_with(')') {
        return Some(Err("missing closing `)`".into()));
    }
    Some(Ok((rule, justification.to_string())))
}

/// Extracts suppressions from a lexed file's comments and resolves each
/// to the code line it covers. Malformed directives become findings.
fn collect_suppressions(
    lexed: &LexedFile,
    path: &str,
    findings: &mut Vec<Finding>,
) -> Vec<Suppression> {
    let n_lines = lexed.code.lines().count();
    // A line can carry a finding if it has code, or if a string literal
    // starts there (bench-provenance anchors on the literal, whose line
    // is blank in the code view).
    let lit_lines: std::collections::BTreeSet<usize> =
        lexed.strings.iter().map(|s| s.line).collect();
    let coverable = |l: usize| !lexed.code_line(l).trim().is_empty() || lit_lines.contains(&l);
    let mut out = Vec::new();
    for c in &lexed.comments {
        match parse_directive(&c.text) {
            None => {}
            Some(Err(reason)) => findings.push(Finding {
                rule: "bad-suppression".into(),
                path: path.to_string(),
                line: c.line,
                message: format!("malformed dz-lint directive: {reason}"),
            }),
            Some(Ok((rule, _justification))) => {
                // Trailing comment → covers its own line; standalone →
                // covers the next coverable line.
                let mut target = c.line;
                if !coverable(target) {
                    target += 1;
                    while target <= n_lines && !coverable(target) {
                        target += 1;
                    }
                }
                out.push(Suppression {
                    rule,
                    target_line: target,
                    comment_line: c.line,
                    used: false,
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Workspace walking.
// ---------------------------------------------------------------------------

/// Lists the `.rs` files of the workspace in sorted order with their
/// crate attribution.
fn collect_files(root: &Path) -> io::Result<Vec<(PathBuf, FileMeta)>> {
    let mut out = Vec::new();
    collect_package(root, root, "deltazip-repro", &mut out)?;
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut names: Vec<String> = fs::read_dir(&crates)?
            .filter_map(|e| e.ok())
            .filter(|e| e.path().is_dir())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        for name in names {
            collect_package(root, &crates.join(&name), &name, &mut out)?;
        }
    }
    Ok(out)
}

fn collect_package(
    root: &Path,
    pkg: &Path,
    crate_name: &str,
    out: &mut Vec<(PathBuf, FileMeta)>,
) -> io::Result<()> {
    for sub in PKG_DIRS {
        let dir = pkg.join(sub);
        if !dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        walk_rs(&dir, &mut files)?;
        files.sort();
        for f in files {
            let rel = f
                .strip_prefix(root)
                .unwrap_or(&f)
                .to_string_lossy()
                .replace('\\', "/");
            out.push((
                f.clone(),
                FileMeta {
                    rel_path: rel,
                    crate_name: crate_name.to_string(),
                    is_test_file: *sub != "src",
                },
            ));
        }
    }
    Ok(())
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_str()) {
                walk_rs(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Budget file.
// ---------------------------------------------------------------------------

/// Serializes the budget as stable, diff-friendly JSON.
pub fn budget_to_json(counts: &BTreeMap<String, usize>) -> String {
    let mut s = String::from("{\n  \"schema_version\": 1,\n");
    s.push_str(
        "  \"note\": \"unwrap/expect/panic! sites in non-test library code; \
         this file may only shrink — fix sites, then run dz-lint --update-budget\",\n",
    );
    s.push_str("  \"crates\": {\n");
    let n = counts.len();
    for (i, (name, count)) in counts.iter().enumerate() {
        let comma = if i + 1 == n { "" } else { "," };
        s.push_str(&format!("    \"{name}\": {count}{comma}\n"));
    }
    s.push_str("  }\n}\n");
    s
}

/// Parses a budget file into per-crate counts.
pub fn parse_budget(text: &str) -> Result<BTreeMap<String, usize>, String> {
    let value = Value::parse_json(text).map_err(|e| e.to_string())?;
    let crates = value
        .get("crates")
        .ok_or_else(|| "missing `crates` object".to_string())?;
    let Value::Object(pairs) = crates else {
        return Err("`crates` must be an object".into());
    };
    let mut out = BTreeMap::new();
    for (name, v) in pairs {
        let n = v
            .as_u64()
            .ok_or_else(|| format!("budget for `{name}` must be a non-negative integer"))?;
        out.insert(name.clone(), n as usize);
    }
    Ok(out)
}

fn check_budget(opts: &Options, counts: &BTreeMap<String, usize>, findings: &mut Vec<Finding>) {
    let rel = opts.budget_path.to_string_lossy().replace('\\', "/");
    let mut push = |message: String| {
        findings.push(Finding {
            rule: "unwrap-budget".into(),
            path: rel.clone(),
            line: 1,
            message,
        });
    };
    let text = match fs::read_to_string(opts.budget_abs()) {
        Ok(t) => t,
        Err(_) => {
            push(format!(
                "unwrap budget file `{rel}` is missing — create it with `dz-lint --update-budget`"
            ));
            return;
        }
    };
    let budget = match parse_budget(&text) {
        Ok(b) => b,
        Err(e) => {
            push(format!("unwrap budget file `{rel}` is invalid: {e}"));
            return;
        }
    };
    for (name, &count) in counts {
        match budget.get(name) {
            None => push(format!(
                "crate `{name}` has {count} unwrap/expect/panic! sites but no budget entry — \
                 add one via `dz-lint --update-budget`"
            )),
            Some(&b) if count > b => push(format!(
                "crate `{name}` has {count} unwrap/expect/panic! sites, over its budget of {b} — \
                 handle the error or annotate the site; the budget may only shrink"
            )),
            Some(&b) if count < b => push(format!(
                "crate `{name}` has {count} unwrap/expect/panic! sites, under its budget of {b} — \
                 lock in the improvement with `dz-lint --update-budget`"
            )),
            Some(_) => {}
        }
    }
    for name in budget.keys() {
        if !counts.contains_key(name) {
            push(format!(
                "budget lists unknown crate `{name}` — remove it via `dz-lint --update-budget`"
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// Entry points.
// ---------------------------------------------------------------------------

/// Lints one file's source text. Exposed for tests; [`lint_workspace`]
/// is the real driver.
pub fn lint_source(src: &str, meta: &FileMeta) -> (Vec<Finding>, Vec<UnwrapSite>) {
    let lexed = LexedFile::lex(src);
    let (raw, mut sites) = rules::check_file(&lexed, meta);
    let mut findings = Vec::new();
    let mut sups = collect_suppressions(&lexed, &meta.rel_path, &mut findings);

    let mut keep: Vec<RawFinding> = Vec::new();
    for f in raw {
        let hit = sups
            .iter_mut()
            .find(|s| s.rule == f.rule && s.target_line == f.line);
        match hit {
            Some(s) => s.used = true,
            None => keep.push(f),
        }
    }
    sites.retain(|site| {
        let hit = sups
            .iter_mut()
            .find(|s| s.rule == "unwrap-budget" && s.target_line == site.line);
        match hit {
            Some(s) => {
                s.used = true;
                false
            }
            None => true,
        }
    });
    for s in &sups {
        if !s.used && !lexed.is_test_line(s.target_line) && !meta.is_test_file {
            findings.push(Finding {
                rule: "unused-suppression".into(),
                path: meta.rel_path.clone(),
                line: s.comment_line,
                message: format!(
                    "dz-lint allow({}) matches no finding on line {} — remove it",
                    s.rule, s.target_line
                ),
            });
        }
    }
    findings.extend(keep.into_iter().map(|f| Finding {
        rule: f.rule.to_string(),
        path: meta.rel_path.clone(),
        line: f.line,
        message: f.message,
    }));
    (findings, sites)
}

/// Lints the whole workspace under `opts.root`, including the
/// unwrap-budget comparison (or rewrite, with
/// [`Options::update_budget`]).
pub fn lint_workspace(opts: &Options) -> io::Result<Report> {
    let mut report = Report::default();
    for (path, meta) in collect_files(&opts.root)? {
        let src = fs::read_to_string(&path)?;
        let (findings, sites) = lint_source(&src, &meta);
        report.findings.extend(findings);
        report.files_scanned += 1;
        if !meta.is_test_file {
            *report.unwrap_counts.entry(meta.crate_name).or_insert(0) += sites.len();
        }
    }
    if opts.update_budget {
        fs::write(opts.budget_abs(), budget_to_json(&report.unwrap_counts))?;
    } else {
        check_budget(opts, &report.unwrap_counts, &mut report.findings);
    }
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
    Ok(report)
}

/// Renders a report as machine-readable JSON (`--json`).
pub fn report_to_json(report: &Report) -> String {
    let findings = report
        .findings
        .iter()
        .map(|f| {
            Value::Object(vec![
                ("rule".to_string(), Value::Str(f.rule.clone())),
                ("path".to_string(), Value::Str(f.path.clone())),
                ("line".to_string(), Value::Num(Number::Int(f.line as i64))),
                ("message".to_string(), Value::Str(f.message.clone())),
            ])
        })
        .collect();
    let counts = report
        .unwrap_counts
        .iter()
        .map(|(k, &v)| (k.clone(), Value::Num(Number::Int(v as i64))))
        .collect();
    Value::Object(vec![
        ("schema_version".to_string(), Value::Num(Number::Int(1))),
        (
            "files_scanned".to_string(),
            Value::Num(Number::Int(report.files_scanned as i64)),
        ),
        (
            "finding_count".to_string(),
            Value::Num(Number::Int(report.findings.len() as i64)),
        ),
        ("findings".to_string(), Value::Array(findings)),
        ("unwrap_counts".to_string(), Value::Object(counts)),
    ])
    .to_json()
}
