//! The dz-lint rule set. Every rule pattern-matches the blanked code
//! view a [`LexedFile`] produces, so comments
//! and string/char literals can never trigger a diagnostic, and code in
//! `#[cfg(test)]` / `mod tests` regions (or whole files under `tests/`,
//! `benches/`, `examples/`) is exempt — test code may time, panic, and
//! hash freely.
//!
//! | rule | forbids | where |
//! |------|---------|-------|
//! | `wall-clock` | `Instant::now` / `SystemTime` | everywhere except `crates/bench` |
//! | `hash-iter` | iterating `HashMap` / `HashSet` | sim-state crates (serve, store, gpusim, workload, trace) |
//! | `float-eq` | `==` / `!=` against float literals | sim-state crates |
//! | `unwrap-budget` | `.unwrap()` / `.expect()` / `panic!` growth | all library code, vs `ci/unwrap-budget.json` |
//! | `thread-spawn` | `thread::spawn` / `thread::scope` | everywhere except the decode modules |
//! | `bench-provenance` | writing `BENCH_*.json` without `json_provenance` | all library code |
//!
//! Any individual site can be suppressed with
//! `// dz-lint: allow(<rule>, "<justification>")` on or above the line.

use crate::lexer::{word_at, LexedFile};

/// Every suppressible rule id, in diagnostic order.
pub const RULE_IDS: &[&str] = &[
    "wall-clock",
    "hash-iter",
    "float-eq",
    "unwrap-budget",
    "thread-spawn",
    "bench-provenance",
];

/// Crates whose simulation state must stay iteration-order- and
/// float-comparison-deterministic: these feed the `to_bits` differential
/// suites (fleet/lockstep, toppings/legacy, traced/untraced chaos).
pub const SIM_STATE_CRATES: &[&str] = &["serve", "store", "gpusim", "workload", "trace"];

/// The one crate allowed to read wall clocks freely: the bench harness
/// measures real time by design.
pub const WALL_CLOCK_CRATES: &[&str] = &["bench"];

/// Decode modules allowed to spawn threads (scoped page/tensor fan-out).
pub const THREAD_FILES: &[&str] = &["crates/lossless/src/page.rs", "crates/store/src/dza.rs"];

/// Where a file sits in the workspace, for rule scoping.
#[derive(Debug, Clone)]
pub struct FileMeta {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// Crate directory name under `crates/` (`"root"` for the umbrella
    /// package).
    pub crate_name: String,
    /// Whole-file test code: under a `tests/`, `benches/`, or
    /// `examples/` directory.
    pub is_test_file: bool,
}

/// One rule hit before suppression matching.
#[derive(Debug, Clone)]
pub struct RawFinding {
    /// Rule id (an entry of [`RULE_IDS`]).
    pub rule: &'static str,
    /// 1-based source line.
    pub line: usize,
    /// Human-readable diagnostic.
    pub message: String,
}

/// One unwrap/expect/panic site in library code (fed to the budget
/// check rather than reported individually).
#[derive(Debug, Clone)]
pub struct UnwrapSite {
    /// 1-based source line.
    pub line: usize,
    /// Which macro/method: `unwrap`, `expect`, or `panic!`.
    pub what: &'static str,
}

/// Runs every per-file rule, returning findings plus the unwrap sites
/// for the crate-level budget tally.
pub fn check_file(lexed: &LexedFile, meta: &FileMeta) -> (Vec<RawFinding>, Vec<UnwrapSite>) {
    let mut findings = Vec::new();
    let mut unwraps = Vec::new();
    if meta.is_test_file {
        return (findings, unwraps);
    }
    let exempt = |line: usize| lexed.is_test_line(line);

    wall_clock(lexed, meta, &exempt, &mut findings);
    hash_iter(lexed, meta, &exempt, &mut findings);
    float_eq(lexed, meta, &exempt, &mut findings);
    thread_spawn(lexed, meta, &exempt, &mut findings);
    bench_provenance(lexed, meta, &exempt, &mut findings);
    unwrap_sites(lexed, &exempt, &mut unwraps);
    (findings, unwraps)
}

// ---------------------------------------------------------------------------
// Scan helpers over the code view.
// ---------------------------------------------------------------------------

/// Byte positions of `word` in `code` with identifier boundaries.
fn word_positions(code: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(off) = code[from..].find(word) {
        let i = from + off;
        if word_at(code, i, word) {
            out.push(i);
        }
        from = i + word.len();
    }
    out
}

fn skip_ws(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() && (bytes[i] as char).is_whitespace() {
        i += 1;
    }
    i
}

fn skip_ws_back(bytes: &[u8], mut i: usize) -> usize {
    // Returns the index just past the last non-ws byte before `i`.
    while i > 0 && (bytes[i - 1] as char).is_whitespace() {
        i -= 1;
    }
    i
}

/// After the word at `i` (length `len`), does `.method(` follow for one
/// of `methods` (whitespace/newlines allowed between tokens)? Returns
/// the matched method.
fn method_call_after(code: &str, i: usize, len: usize, methods: &[&str]) -> Option<&'static str> {
    const KNOWN: &[&str] = &[
        "iter",
        "iter_mut",
        "keys",
        "values",
        "values_mut",
        "drain",
        "retain",
        "into_iter",
        "into_keys",
        "into_values",
    ];
    let bytes = code.as_bytes();
    let mut j = skip_ws(bytes, i + len);
    if bytes.get(j) != Some(&b'.') {
        return None;
    }
    j = skip_ws(bytes, j + 1);
    for m in methods {
        if word_at(code, j, m) {
            let k = skip_ws(bytes, j + m.len());
            if bytes.get(k) == Some(&b'(') {
                return KNOWN.iter().find(|k| *k == m).copied();
            }
        }
    }
    None
}

/// The identifier ending just before non-ws position `end` (exclusive),
/// if any.
fn ident_ending_at(code: &str, end: usize) -> Option<&str> {
    let bytes = code.as_bytes();
    let mut start = end;
    while start > 0 {
        let c = bytes[start - 1] as char;
        if c.is_alphanumeric() || c == '_' {
            start -= 1;
        } else {
            break;
        }
    }
    (start < end && !(bytes[start] as char).is_ascii_digit()).then(|| &code[start..end])
}

// ---------------------------------------------------------------------------
// wall-clock
// ---------------------------------------------------------------------------

fn wall_clock(
    lexed: &LexedFile,
    meta: &FileMeta,
    exempt: &dyn Fn(usize) -> bool,
    out: &mut Vec<RawFinding>,
) {
    if WALL_CLOCK_CRATES.contains(&meta.crate_name.as_str()) {
        return;
    }
    let code = &lexed.code;
    let bytes = code.as_bytes();
    for i in word_positions(code, "Instant") {
        // Only the clock read is a violation; `use std::time::Instant`
        // or an `Instant` in a type position is inert.
        let mut j = skip_ws(bytes, i + "Instant".len());
        if !code[j..].starts_with("::") {
            continue;
        }
        j = skip_ws(bytes, j + 2);
        if word_at(code, j, "now") {
            let line = lexed.line_of(i);
            if !exempt(line) {
                out.push(RawFinding {
                    rule: "wall-clock",
                    line,
                    message: "Instant::now() reads the wall clock; simulation code must use \
                              the simulated clock (crates/bench and annotated measurement \
                              sites only)"
                        .into(),
                });
            }
        }
    }
    for i in word_positions(code, "SystemTime") {
        let line = lexed.line_of(i);
        if !exempt(line) {
            out.push(RawFinding {
                rule: "wall-clock",
                line,
                message: "SystemTime is wall-clock state; simulation results must not depend \
                          on real time"
                    .into(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// hash-iter
// ---------------------------------------------------------------------------

/// Collects identifiers bound to `HashMap` / `HashSet` in this file:
/// `name: [&mut] [std::collections::]HashMap<…>` declarations (fields,
/// params, lets) and `name = HashMap::new()`-style initializations.
fn hash_bound_idents(code: &str) -> Vec<String> {
    let bytes = code.as_bytes();
    let mut idents: Vec<String> = Vec::new();
    for word in ["HashMap", "HashSet"] {
        for i in word_positions(code, word) {
            // Walk backward over an optional `std :: collections ::`
            // path prefix and `&`/`&mut` reference noise, then expect
            // `:` (type ascription) or `=` (assignment), then the
            // identifier. Wrapped types (`Option<HashMap<…>>`) are
            // deliberately NOT matched — only direct bindings.
            let mut end = skip_ws_back(bytes, i);
            for seg in ["::", "collections", "::", "std"] {
                if code[..end].ends_with(seg) {
                    end = skip_ws_back(bytes, end - seg.len());
                }
            }
            loop {
                if end > 0 && bytes[end - 1] == b'&' {
                    end = skip_ws_back(bytes, end - 1);
                    continue;
                }
                if code[..end].ends_with("mut") && word_at(code, end - 3, "mut") {
                    end = skip_ws_back(bytes, end - 3);
                    continue;
                }
                break;
            }
            if end == 0 {
                continue;
            }
            let sep = bytes[end - 1];
            if sep != b':' && sep != b'=' {
                continue;
            }
            if sep == b':' && end >= 2 && bytes[end - 2] == b':' {
                continue; // a `::` path, not a type ascription
            }
            if sep == b'=' && end >= 2 && matches!(bytes[end - 2], b'=' | b'!' | b'<' | b'>') {
                continue; // comparison, not assignment
            }
            let j = skip_ws_back(bytes, end - 1);
            if let Some(name) = ident_ending_at(code, j) {
                if name != "mut" && name != "let" && !idents.iter().any(|n| n == name) {
                    idents.push(name.to_string());
                }
            }
        }
    }
    idents
}

fn hash_iter(
    lexed: &LexedFile,
    meta: &FileMeta,
    exempt: &dyn Fn(usize) -> bool,
    out: &mut Vec<RawFinding>,
) {
    if !SIM_STATE_CRATES.contains(&meta.crate_name.as_str()) {
        return;
    }
    let code = &lexed.code;
    let bytes = code.as_bytes();
    const ITER_METHODS: &[&str] = &[
        "iter",
        "iter_mut",
        "keys",
        "values",
        "values_mut",
        "drain",
        "retain",
        "into_iter",
        "into_keys",
        "into_values",
    ];
    for name in hash_bound_idents(code) {
        for i in word_positions(code, &name) {
            let line = lexed.line_of(i);
            if exempt(line) {
                continue;
            }
            if let Some(m) = method_call_after(code, i, name.len(), ITER_METHODS) {
                out.push(RawFinding {
                    rule: "hash-iter",
                    line,
                    message: format!(
                        "`{name}.{m}()` iterates a Hash{{Map,Set}} in simulation state — \
                         iteration order is nondeterministic; use BTreeMap/BTreeSet or \
                         sort explicitly"
                    ),
                });
                continue;
            }
            // `for x in &name {` / `for x in name {` — direct container
            // iteration without a method call.
            let after = skip_ws(bytes, i + name.len());
            if bytes.get(after) == Some(&b'{') {
                let before = skip_ws_back(bytes, i);
                let mut j = before;
                if j > 0 && (bytes[j - 1] == b'&' || code[..j].ends_with("mut")) {
                    if code[..j].ends_with("mut") {
                        j = skip_ws_back(bytes, j - 3);
                    }
                    if j > 0 && bytes[j - 1] == b'&' {
                        j = skip_ws_back(bytes, j - 1);
                    }
                }
                if code[..j].ends_with("in") && word_at(code, j - 2, "in") {
                    out.push(RawFinding {
                        rule: "hash-iter",
                        line,
                        message: format!(
                            "`for … in {name}` iterates a Hash{{Map,Set}} in simulation \
                             state — iteration order is nondeterministic; use \
                             BTreeMap/BTreeSet or sort explicitly"
                        ),
                    });
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// float-eq
// ---------------------------------------------------------------------------

/// Is the token ending at `end` (exclusive) a float literal (`0.5`,
/// `1.`, `1.0f64`, `2f32`)?
fn float_lit_ending_at(code: &str, end: usize) -> bool {
    let bytes = code.as_bytes();
    let mut start = end;
    while start > 0 {
        let c = bytes[start - 1] as char;
        if c.is_alphanumeric() || c == '_' || c == '.' {
            start -= 1;
        } else {
            break;
        }
    }
    is_float_lit(&code[start..end])
}

/// Is the token starting at `start` a float literal?
fn float_lit_starting_at(code: &str, start: usize) -> bool {
    let bytes = code.as_bytes();
    let mut end = start;
    while end < bytes.len() {
        let c = bytes[end] as char;
        if c.is_alphanumeric() || c == '_' || c == '.' {
            end += 1;
        } else {
            break;
        }
    }
    is_float_lit(&code[start..end])
}

fn is_float_lit(tok: &str) -> bool {
    if tok.is_empty() || !tok.starts_with(|c: char| c.is_ascii_digit()) {
        return false;
    }
    let has_dot = tok.contains('.');
    let has_suffix = tok.ends_with("f32") || tok.ends_with("f64");
    // Reject method-call chains picked up by the dot scan (`1.0.to_bits`
    // never reaches here — to_bits breaks at the `(` — but `1.x` would).
    let numeric = tok
        .chars()
        .all(|c| c.is_ascii_digit() || c == '.' || c == '_' || c == 'f' || c == '3' || c == '2');
    (has_dot || has_suffix) && numeric
}

fn float_eq(
    lexed: &LexedFile,
    meta: &FileMeta,
    exempt: &dyn Fn(usize) -> bool,
    out: &mut Vec<RawFinding>,
) {
    if !SIM_STATE_CRATES.contains(&meta.crate_name.as_str()) {
        return;
    }
    let code = &lexed.code;
    let bytes = code.as_bytes();
    let mut i = 0usize;
    while i + 1 < bytes.len() {
        let two = &code[i..i + 2];
        let is_eq = two == "==" || two == "!=";
        if !is_eq {
            i += 1;
            continue;
        }
        // Not part of `===`? (not Rust), `<=`, `>=`, `!=` already ok.
        let prev = if i > 0 { bytes[i - 1] } else { b' ' };
        let next = bytes.get(i + 2).copied().unwrap_or(b' ');
        if matches!(prev, b'=' | b'<' | b'>' | b'!') || next == b'=' {
            i += 2;
            continue;
        }
        let lhs = float_lit_ending_at(code, skip_ws_back(bytes, i));
        let rhs = float_lit_starting_at(code, skip_ws(bytes, i + 2));
        if lhs || rhs {
            let line = lexed.line_of(i);
            if !exempt(line) {
                out.push(RawFinding {
                    rule: "float-eq",
                    line,
                    message: format!(
                        "`{two}` against a float literal is a lossy comparison in \
                         simulation state; compare via `to_bits()` or an explicit \
                         epsilon/ordering"
                    ),
                });
            }
        }
        i += 2;
    }
}

// ---------------------------------------------------------------------------
// thread-spawn
// ---------------------------------------------------------------------------

fn thread_spawn(
    lexed: &LexedFile,
    meta: &FileMeta,
    exempt: &dyn Fn(usize) -> bool,
    out: &mut Vec<RawFinding>,
) {
    if THREAD_FILES.contains(&meta.rel_path.as_str()) {
        return;
    }
    let code = &lexed.code;
    let bytes = code.as_bytes();
    for i in word_positions(code, "thread") {
        let mut j = skip_ws(bytes, i + "thread".len());
        if !code[j..].starts_with("::") {
            continue;
        }
        j = skip_ws(bytes, j + 2);
        let which = if word_at(code, j, "spawn") {
            "spawn"
        } else if word_at(code, j, "scope") {
            "scope"
        } else {
            continue;
        };
        let line = lexed.line_of(i);
        if !exempt(line) {
            out.push(RawFinding {
                rule: "thread-spawn",
                line,
                message: format!(
                    "`thread::{which}` outside the allowlisted decode modules \
                     ({}) — thread scheduling must never touch simulation state",
                    THREAD_FILES.join(", ")
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// bench-provenance
// ---------------------------------------------------------------------------

fn bench_provenance(
    lexed: &LexedFile,
    meta: &FileMeta,
    exempt: &dyn Fn(usize) -> bool,
    out: &mut Vec<RawFinding>,
) {
    let _ = meta;
    let has_provenance = !word_positions(&lexed.code, "json_provenance").is_empty();
    if has_provenance {
        return;
    }
    for lit in &lexed.strings {
        if lit.text.contains("BENCH_") && lit.text.contains(".json") && !exempt(lit.line) {
            let shown: String = lit.text.chars().take(48).collect();
            out.push(RawFinding {
                rule: "bench-provenance",
                line: lit.line,
                message: format!(
                    // dz-lint: allow(bench-provenance, "the diagnostic text itself, not an artifact writer")
                    "mentions `{}` but never calls `json_provenance` — every BENCH_*.json \
                     artifact must open with schema_version + experiment + config provenance",
                    shown.replace('\n', " ")
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// unwrap-budget sites
// ---------------------------------------------------------------------------

fn unwrap_sites(lexed: &LexedFile, exempt: &dyn Fn(usize) -> bool, out: &mut Vec<UnwrapSite>) {
    let code = &lexed.code;
    let bytes = code.as_bytes();
    for (word, what) in [("unwrap", "unwrap"), ("expect", "expect")] {
        for i in word_positions(code, word) {
            // Must be a method call: `.unwrap(` / `.expect(`, so that
            // `unwrap_or` / field names never count.
            let before = skip_ws_back(bytes, i);
            if before == 0 || bytes[before - 1] != b'.' {
                continue;
            }
            let after = skip_ws(bytes, i + word.len());
            if bytes.get(after) != Some(&b'(') {
                continue;
            }
            let line = lexed.line_of(i);
            if !exempt(line) {
                out.push(UnwrapSite { line, what });
            }
        }
    }
    for i in word_positions(code, "panic") {
        let after = skip_ws(bytes, i + "panic".len());
        if bytes.get(after) == Some(&b'!') {
            let line = lexed.line_of(i);
            if !exempt(line) {
                out.push(UnwrapSite {
                    line,
                    what: "panic!",
                });
            }
        }
    }
    out.sort_by_key(|s| s.line);
}
