//! dz-lint CLI — the workspace determinism & accounting gate.
//!
//! ```text
//! dz-lint [--root DIR] [--check] [--json] [--update-budget] [--budget PATH]
//! ```
//!
//! Plain mode prints `path:line: [rule] message` diagnostics and exits
//! zero; `--check` (the CI mode) exits nonzero when any finding
//! survives suppression; `--json` emits the machine-readable report;
//! `--update-budget` rewrites the unwrap budget from current counts.

use std::path::PathBuf;
use std::process::ExitCode;

use dz_lint::{lint_workspace, report_to_json, Options};

const USAGE: &str =
    "usage: dz-lint [--root DIR] [--check] [--json] [--update-budget] [--budget PATH]";

fn main() -> ExitCode {
    let mut opts = Options::new(".");
    let mut check = false;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => opts.root = PathBuf::from(v),
                None => return usage_error("--root needs a value"),
            },
            "--budget" => match args.next() {
                Some(v) => opts.budget_path = PathBuf::from(v),
                None => return usage_error("--budget needs a value"),
            },
            "--check" => check = true,
            "--json" => json = true,
            "--update-budget" => opts.update_budget = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    let report = match lint_workspace(&opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dz-lint: error: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", report_to_json(&report));
    } else {
        for f in &report.findings {
            println!("{}:{}: [{}] {}", f.path, f.line, f.rule, f.message);
        }
        if opts.update_budget {
            println!(
                "dz-lint: budget rewritten ({})",
                report
                    .unwrap_counts
                    .iter()
                    .map(|(k, v)| format!("{k}: {v}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
        println!(
            "dz-lint: {} files scanned, {} finding{}",
            report.files_scanned,
            report.findings.len(),
            if report.findings.len() == 1 { "" } else { "s" }
        );
    }

    if check && !report.findings.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("dz-lint: {msg}\n{USAGE}");
    ExitCode::from(2)
}
