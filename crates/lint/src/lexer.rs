//! A hand-rolled Rust lexer, just deep enough for reliable rule
//! matching: it separates **code** from comments and literals so rules
//! never fire on text inside a string or a doc comment, records comment
//! text (where `dz-lint: allow(...)` suppressions live) and string
//! literals (for the bench-provenance rule) with their lines, and marks
//! `#[cfg(test)]` / `mod tests` regions so test-only code is exempt.
//!
//! It is not a full tokenizer — no `syn` exists in the vendored tree —
//! but it handles the constructs that break naive regex scans:
//!
//! * nested block comments (`/* a /* b */ c */`)
//! * raw strings with arbitrary hash fences (`r##"…"##`, `br#"…"#`)
//! * char and byte literals vs lifetimes (`'a'` vs `<'a>` vs `'label:`)
//! * escaped quotes (`"\""`, `'\''`) and multi-line strings
//!
//! The code view preserves the source's line structure exactly (every
//! newline survives; comment and literal characters become spaces), so
//! a byte offset into the code view maps to the original line number.

/// One comment (line or block) with its starting line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: usize,
    /// Comment text including the `//` / `/* */` markers.
    pub text: String,
}

/// One string literal (normal or raw, possibly byte) with its line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrLit {
    /// 1-based line the literal starts on.
    pub line: usize,
    /// Literal contents, without quotes or hash fences.
    pub text: String,
}

/// A lexed source file: blanked code view plus side tables.
#[derive(Debug, Clone)]
pub struct LexedFile {
    /// Source with comments and literal contents blanked to spaces.
    /// Newlines are preserved, so line N here is line N in the source.
    pub code: String,
    /// Every comment, in source order.
    pub comments: Vec<Comment>,
    /// Every string literal, in source order.
    pub strings: Vec<StrLit>,
    /// Inclusive 1-based line ranges covered by `#[cfg(test)]` items or
    /// `mod tests { .. }` bodies.
    pub test_regions: Vec<(usize, usize)>,
    /// Byte offset of each line start in `code` (index 0 = line 1).
    line_starts: Vec<usize>,
}

impl LexedFile {
    /// Lexes `src` into a code view and side tables.
    pub fn lex(src: &str) -> LexedFile {
        let chars: Vec<char> = src.chars().collect();
        let n = chars.len();
        let mut code = String::with_capacity(src.len());
        let mut comments = Vec::new();
        let mut strings = Vec::new();
        let mut line = 1usize;

        // Pushes a blanked char: newlines survive (they carry the line
        // structure), everything else becomes one space.
        fn blank(out: &mut String, c: char, line: &mut usize) {
            if c == '\n' {
                out.push('\n');
                *line += 1;
            } else {
                out.push(' ');
            }
        }

        let is_ident = |c: char| c.is_alphanumeric() || c == '_';

        let mut i = 0usize;
        let mut prev_ident = false; // was the previous *code* char ident-like?
        while i < n {
            let c = chars[i];
            // Line comment.
            if c == '/' && i + 1 < n && chars[i + 1] == '/' {
                let start_line = line;
                let mut text = String::new();
                while i < n && chars[i] != '\n' {
                    text.push(chars[i]);
                    code.push(' ');
                    i += 1;
                }
                comments.push(Comment {
                    line: start_line,
                    text,
                });
                prev_ident = false;
                continue;
            }
            // Block comment, possibly nested.
            if c == '/' && i + 1 < n && chars[i + 1] == '*' {
                let start_line = line;
                let mut text = String::new();
                let mut depth = 0usize;
                while i < n {
                    if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                        depth += 1;
                        text.push_str("/*");
                        blank(&mut code, chars[i], &mut line);
                        blank(&mut code, chars[i + 1], &mut line);
                        i += 2;
                    } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                        depth -= 1;
                        text.push_str("*/");
                        blank(&mut code, chars[i], &mut line);
                        blank(&mut code, chars[i + 1], &mut line);
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        text.push(chars[i]);
                        blank(&mut code, chars[i], &mut line);
                        i += 1;
                    }
                }
                comments.push(Comment {
                    line: start_line,
                    text,
                });
                prev_ident = false;
                continue;
            }
            // Raw (and raw byte) strings: r"…", r#"…"#, br##"…"##.
            if !prev_ident && (c == 'r' || c == 'b') {
                let mut j = i;
                if chars[j] == 'b' && j + 1 < n && chars[j + 1] == 'r' {
                    j += 2;
                } else if chars[j] == 'r' {
                    j += 1;
                } else {
                    j = usize::MAX; // b"…" handled by the plain-string arm
                }
                if j != usize::MAX {
                    let mut hashes = 0usize;
                    while j < n && chars[j] == '#' {
                        hashes += 1;
                        j += 1;
                    }
                    if j < n && chars[j] == '"' {
                        // Confirmed raw string from i..; blank it through.
                        let start_line = line;
                        let mut text = String::new();
                        for &c in &chars[i..=j] {
                            blank(&mut code, c, &mut line);
                        }
                        let mut k = j + 1;
                        'raw: while k < n {
                            if chars[k] == '"' {
                                let mut h = 0usize;
                                while h < hashes && k + 1 + h < n && chars[k + 1 + h] == '#' {
                                    h += 1;
                                }
                                if h == hashes {
                                    for &c in &chars[k..=k + hashes] {
                                        blank(&mut code, c, &mut line);
                                    }
                                    k += hashes + 1;
                                    break 'raw;
                                }
                            }
                            text.push(chars[k]);
                            blank(&mut code, chars[k], &mut line);
                            k += 1;
                        }
                        strings.push(StrLit {
                            line: start_line,
                            text,
                        });
                        i = k;
                        prev_ident = false;
                        continue;
                    }
                }
            }
            // Plain (and byte) strings: "…", b"…".
            if c == '"' || (!prev_ident && c == 'b' && i + 1 < n && chars[i + 1] == '"') {
                let start_line = line;
                let mut text = String::new();
                if c == 'b' {
                    blank(&mut code, chars[i], &mut line);
                    i += 1;
                }
                blank(&mut code, chars[i], &mut line); // opening quote
                i += 1;
                while i < n {
                    if chars[i] == '\\' && i + 1 < n {
                        text.push(chars[i]);
                        text.push(chars[i + 1]);
                        blank(&mut code, chars[i], &mut line);
                        blank(&mut code, chars[i + 1], &mut line);
                        i += 2;
                        continue;
                    }
                    if chars[i] == '"' {
                        blank(&mut code, chars[i], &mut line);
                        i += 1;
                        break;
                    }
                    text.push(chars[i]);
                    blank(&mut code, chars[i], &mut line);
                    i += 1;
                }
                strings.push(StrLit {
                    line: start_line,
                    text,
                });
                prev_ident = false;
                continue;
            }
            // Char / byte-char literal vs lifetime. Pure lookahead: '\…'
            // is always a char; 'X' (one char then a quote) is a char;
            // anything else ('a>, 'outer:, '_) is a lifetime or label.
            if c == '\'' {
                let is_char = if i + 1 < n && chars[i + 1] == '\\' {
                    true
                } else {
                    i + 2 < n && chars[i + 2] == '\''
                };
                if is_char {
                    blank(&mut code, chars[i], &mut line); // opening '
                    i += 1;
                    if i < n && chars[i] == '\\' {
                        blank(&mut code, chars[i], &mut line);
                        i += 1;
                        if i < n {
                            blank(&mut code, chars[i], &mut line); // escaped char
                            i += 1;
                        }
                        while i < n && chars[i] != '\'' {
                            blank(&mut code, chars[i], &mut line);
                            i += 1;
                        }
                    } else if i < n {
                        blank(&mut code, chars[i], &mut line); // the char
                        i += 1;
                    }
                    if i < n && chars[i] == '\'' {
                        blank(&mut code, chars[i], &mut line); // closing '
                        i += 1;
                    }
                    prev_ident = false;
                    continue;
                }
                // Lifetime / label: emit the quote as code.
                code.push('\'');
                i += 1;
                prev_ident = false;
                continue;
            }
            // Ordinary code char.
            if c == '\n' {
                line += 1;
            }
            code.push(c);
            prev_ident = is_ident(c);
            i += 1;
        }

        let mut line_starts = vec![0usize];
        for (idx, b) in code.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(idx + 1);
            }
        }
        let test_regions = find_test_regions(&code, &line_starts);
        LexedFile {
            code,
            comments,
            strings,
            test_regions,
            line_starts,
        }
    }

    /// 1-based line number of a byte offset into `code`.
    pub fn line_of(&self, byte: usize) -> usize {
        match self.line_starts.binary_search(&byte) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// Whether a 1-based line sits inside a test region.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(lo, hi)| lo <= line && line <= hi)
    }

    /// The code-view text of a 1-based line (without its newline).
    pub fn code_line(&self, line: usize) -> &str {
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .map(|&e| e - 1)
            .unwrap_or(self.code.len());
        &self.code[start..end]
    }
}

/// Finds `#[cfg(test)] <item>` and `mod tests { .. }` line ranges in the
/// blanked code view (no strings or comments remain, so braces are real).
fn find_test_regions(code: &str, line_starts: &[usize]) -> Vec<(usize, usize)> {
    let bytes = code.as_bytes();
    let line_of = |byte: usize| match line_starts.binary_search(&byte) {
        Ok(i) => i + 1,
        Err(i) => i,
    };
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        if let Some((start, after)) = match_cfg_test_attr(code, i) {
            if let Some(end_byte) = item_end(code, after) {
                regions.push((line_of(start), line_of(end_byte)));
                i = end_byte + 1;
                continue;
            }
        }
        if let Some((start, body_open)) = match_mod_tests(code, i) {
            if let Some(end_byte) = brace_end(code, body_open) {
                regions.push((line_of(start), line_of(end_byte)));
                i = end_byte + 1;
                continue;
            }
        }
        i += 1;
    }
    regions
}

fn skip_ws(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() && (bytes[i] as char).is_whitespace() {
        i += 1;
    }
    i
}

/// Matches `#[cfg(…test…)]` starting at or after `i` only when `i` is
/// exactly the `#`. Returns `(start, byte-after-`]`)` on a match.
fn match_cfg_test_attr(code: &str, i: usize) -> Option<(usize, usize)> {
    let bytes = code.as_bytes();
    if bytes.get(i) != Some(&b'#') {
        return None;
    }
    let mut j = skip_ws(bytes, i + 1);
    if bytes.get(j) != Some(&b'[') {
        return None;
    }
    j = skip_ws(bytes, j + 1);
    if !code[j..].starts_with("cfg") {
        return None;
    }
    j = skip_ws(bytes, j + 3);
    if bytes.get(j) != Some(&b'(') {
        return None;
    }
    // Scan the balanced attribute to its `]`, checking for a `test` word.
    let mut depth = 0usize;
    let mut has_test = false;
    let mut k = j;
    while k < bytes.len() {
        match bytes[k] {
            b'(' | b'[' => depth += 1,
            b')' => depth -= 1,
            b']' => {
                if depth == 0 {
                    return has_test.then_some((i, k + 1));
                }
                depth -= 1;
            }
            b't' if word_at(code, k, "test") => has_test = true,
            _ => {}
        }
        k += 1;
    }
    None
}

/// Matches `mod tests` (optionally `pub mod tests`) at word position `i`,
/// returning `(start, byte-of-opening-brace)`.
fn match_mod_tests(code: &str, i: usize) -> Option<(usize, usize)> {
    if !word_at(code, i, "mod") {
        return None;
    }
    let bytes = code.as_bytes();
    let mut j = skip_ws(bytes, i + 3);
    if !word_at(code, j, "tests") {
        return None;
    }
    j = skip_ws(bytes, j + 5);
    (bytes.get(j) == Some(&b'{')).then_some((i, j))
}

/// Whether `word` occupies code[i..] with identifier boundaries.
pub(crate) fn word_at(code: &str, i: usize, word: &str) -> bool {
    if !code[i..].starts_with(word) {
        return false;
    }
    let before_ok = i == 0
        || !code[..i]
            .chars()
            .next_back()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
    let after = i + word.len();
    let after_ok = !code[after..]
        .chars()
        .next()
        .is_some_and(|c| c.is_alphanumeric() || c == '_');
    before_ok && after_ok
}

/// From just past a `#[cfg(test)]` attribute, finds the end of the item
/// it covers: skips further attributes, then either the `;` of a
/// braceless item or the matching `}` of the item body.
fn item_end(code: &str, mut i: usize) -> Option<usize> {
    let bytes = code.as_bytes();
    loop {
        i = skip_ws(bytes, i);
        if bytes.get(i) == Some(&b'#') {
            // Another attribute: skip its balanced [ ... ].
            let mut depth = 0usize;
            let mut k = i + 1;
            while k < bytes.len() {
                match bytes[k] {
                    b'[' => depth += 1,
                    b']' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            i = k + 1;
            continue;
        }
        break;
    }
    // Find the item's `{` at bracket depth 0, or a `;` ending it.
    let mut depth = 0isize;
    let mut k = i;
    while k < bytes.len() {
        match bytes[k] {
            b'(' | b'[' => depth += 1,
            b')' | b']' => depth -= 1,
            b';' if depth == 0 => return Some(k),
            b'{' if depth == 0 => return brace_end(code, k),
            _ => {}
        }
        k += 1;
    }
    None
}

/// Byte offset of the `}` matching the `{` at `open`.
fn brace_end(code: &str, open: usize) -> Option<usize> {
    let bytes = code.as_bytes();
    debug_assert_eq!(bytes[open], b'{');
    let mut depth = 0usize;
    for (off, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(off);
                }
            }
            _ => {}
        }
    }
    None
}
