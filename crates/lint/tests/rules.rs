//! Rule-engine tests: one positive and one suppressed hit per rule,
//! plus the suppression-hygiene meta-rules and test-region exemptions.

use dz_lint::rules::{FileMeta, UnwrapSite};
use dz_lint::{lint_source, Finding};

fn meta(rel_path: &str, crate_name: &str) -> FileMeta {
    FileMeta {
        rel_path: rel_path.to_string(),
        crate_name: crate_name.to_string(),
        is_test_file: false,
    }
}

fn serve(src: &str) -> (Vec<Finding>, Vec<UnwrapSite>) {
    lint_source(src, &meta("crates/serve/src/x.rs", "serve"))
}

fn rules_of(findings: &[Finding]) -> Vec<&str> {
    findings.iter().map(|f| f.rule.as_str()).collect()
}

// --- wall-clock -----------------------------------------------------------

#[test]
fn wall_clock_positive() {
    let (f, _) =
        serve("pub fn f() -> f64 { let t = std::time::Instant::now(); t.elapsed().as_secs_f64() }");
    assert_eq!(rules_of(&f), ["wall-clock"]);
}

#[test]
fn wall_clock_import_alone_is_fine() {
    let (f, _) = serve("use std::time::Instant;\npub fn f(t: Instant) -> Instant { t }\n");
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn wall_clock_system_time_positive() {
    let (f, _) = serve("pub fn f() { let _ = std::time::SystemTime::UNIX_EPOCH; }");
    assert_eq!(rules_of(&f), ["wall-clock"]);
}

#[test]
fn wall_clock_suppressed() {
    let (f, _) = serve(
        "pub fn f() {\n    // dz-lint: allow(wall-clock, \"measured on purpose\")\n    let _ = std::time::Instant::now();\n}\n",
    );
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn wall_clock_allowed_in_bench_crate() {
    let (f, _) = lint_source(
        "pub fn f() { let _ = std::time::Instant::now(); }",
        &meta("crates/bench/src/x.rs", "bench"),
    );
    assert!(f.is_empty(), "{f:?}");
}

// --- hash-iter ------------------------------------------------------------

#[test]
fn hash_iter_method_positive() {
    let src = "use std::collections::HashMap;\npub fn f(warm: &HashMap<usize, u64>) -> u64 { warm.values().sum() }\n";
    let (f, _) = serve(src);
    assert_eq!(rules_of(&f), ["hash-iter"]);
}

#[test]
fn hash_iter_for_loop_positive() {
    let src = "use std::collections::HashSet;\npub fn f(ready: HashSet<u32>) -> u32 {\n    let mut n = 0;\n    for _x in &ready {\n        n += 1;\n    }\n    n\n}\n";
    let (f, _) = serve(src);
    assert_eq!(rules_of(&f), ["hash-iter"]);
    assert_eq!(f[0].line, 4);
}

#[test]
fn hash_iter_retain_on_mut_ref_positive() {
    let src = "use std::collections::HashMap;\npub fn f(m: &mut HashMap<u32, u32>) { m.retain(|_, v| *v > 0); }\n";
    let (f, _) = serve(src);
    assert_eq!(rules_of(&f), ["hash-iter"]);
}

#[test]
fn hash_point_ops_are_fine() {
    let src = "use std::collections::HashMap;\npub fn f(m: &HashMap<u32, u32>, k: u32) -> Option<u32> { m.get(&k).copied() }\n";
    let (f, _) = serve(src);
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn btree_iteration_is_fine() {
    let src = "use std::collections::BTreeMap;\npub fn f(m: &BTreeMap<u32, u32>) -> u32 { m.values().sum() }\n";
    let (f, _) = serve(src);
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn hash_iter_outside_sim_crates_is_fine() {
    let src = "use std::collections::HashMap;\npub fn f(m: &HashMap<u32, u32>) -> u32 { m.values().sum() }\n";
    let (f, _) = lint_source(src, &meta("crates/compress/src/x.rs", "compress"));
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn hash_iter_suppressed() {
    let src = "use std::collections::HashMap;\npub fn f(m: &HashMap<u32, u32>) -> u32 {\n    m.values().sum() // dz-lint: allow(hash-iter, \"sum is order-independent\")\n}\n";
    let (f, _) = serve(src);
    assert!(f.is_empty(), "{f:?}");
}

// --- float-eq -------------------------------------------------------------

#[test]
fn float_eq_positive_both_sides() {
    let (f, _) = serve("pub fn f(x: f64) -> bool { x == 0.5 }");
    assert_eq!(rules_of(&f), ["float-eq"]);
    let (f, _) = serve("pub fn f(x: f64) -> bool { 1.0 != x }");
    assert_eq!(rules_of(&f), ["float-eq"]);
    let (f, _) = serve("pub fn f(x: f32) -> bool { x == 2f32 }");
    assert_eq!(rules_of(&f), ["float-eq"]);
}

#[test]
fn int_and_var_comparisons_are_fine() {
    let (f, _) = serve("pub fn f(x: u32, y: u32) -> bool { x == y && x == 3 && x <= 4 }");
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn to_bits_comparison_is_fine() {
    let (f, _) = serve("pub fn f(x: f64, y: f64) -> bool { x.to_bits() == y.to_bits() }");
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn float_eq_suppressed() {
    let (f, _) =
        serve("pub fn f(x: f64) -> bool { x == 0.0 } // dz-lint: allow(float-eq, \"sentinel\")");
    assert!(f.is_empty(), "{f:?}");
}

// --- thread-spawn ---------------------------------------------------------

#[test]
fn thread_spawn_positive() {
    let (f, _) = serve("pub fn f() { std::thread::spawn(|| {}); }");
    assert_eq!(rules_of(&f), ["thread-spawn"]);
    let (f, _) = serve("pub fn f() { std::thread::scope(|_s| {}); }");
    assert_eq!(rules_of(&f), ["thread-spawn"]);
}

#[test]
fn thread_spawn_allowlisted_file_is_fine() {
    let (f, _) = lint_source(
        "pub fn f() { std::thread::scope(|_s| {}); }",
        &meta("crates/lossless/src/page.rs", "lossless"),
    );
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn thread_spawn_suppressed() {
    let src = "pub fn f() {\n    // dz-lint: allow(thread-spawn, \"joined immediately\")\n    std::thread::spawn(|| {});\n}\n";
    let (f, _) = serve(src);
    assert!(f.is_empty(), "{f:?}");
}

// --- bench-provenance -----------------------------------------------------

#[test]
fn bench_provenance_positive() {
    let (f, _) = serve("pub fn path() -> &'static str { \"BENCH_run.json\" }");
    assert_eq!(rules_of(&f), ["bench-provenance"]);
}

#[test]
fn bench_provenance_satisfied_by_call() {
    let src = "pub fn write() -> String { let head = json_provenance(\"fleet\"); format!(\"{head} BENCH_run.json\") }";
    let (f, _) = serve(src);
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn bench_provenance_suppressed_on_literal_line() {
    let src = "pub fn path() -> &'static str {\n    // dz-lint: allow(bench-provenance, \"constant only\")\n    \"BENCH_run.json\"\n}\n";
    let (f, _) = serve(src);
    assert!(f.is_empty(), "{f:?}");
}

// --- unwrap-budget sites --------------------------------------------------

#[test]
fn unwrap_sites_are_counted() {
    let src = "pub fn f(xs: &[u32]) -> u32 {\n    let a = *xs.first().unwrap();\n    let b: u32 = \"3\".parse().expect(\"parse\");\n    if a == b { panic!(\"boom\"); }\n    a\n}\n";
    let (f, sites) = serve(src);
    assert!(f.is_empty(), "{f:?}");
    let whats: Vec<&str> = sites.iter().map(|s| s.what).collect();
    assert_eq!(whats, ["unwrap", "expect", "panic!"]);
}

#[test]
fn unwrap_or_and_field_names_do_not_count() {
    let src = "pub fn f(x: Option<u32>, unwrap: u32) -> u32 { x.unwrap_or(unwrap) }";
    let (_, sites) = serve(src);
    assert!(sites.is_empty(), "{sites:?}");
}

#[test]
fn unwrap_in_test_region_does_not_count() {
    let src = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n";
    let (_, sites) = serve(src);
    assert!(sites.is_empty(), "{sites:?}");
}

#[test]
fn unwrap_suppression_removes_the_site() {
    let src = "pub fn f(xs: &[u32]) -> u32 {\n    *xs.first().unwrap() // dz-lint: allow(unwrap-budget, \"non-empty by construction\")\n}\n";
    let (f, sites) = serve(src);
    assert!(f.is_empty(), "{f:?}");
    assert!(sites.is_empty(), "{sites:?}");
}

// --- suppression hygiene --------------------------------------------------

#[test]
fn unknown_rule_is_bad_suppression() {
    let (f, _) = serve("pub fn f() {} // dz-lint: allow(no-such-rule, \"x\")");
    assert_eq!(rules_of(&f), ["bad-suppression"]);
}

#[test]
fn missing_justification_is_bad_suppression() {
    let (f, _) = serve("pub fn f() {} // dz-lint: allow(float-eq)");
    assert_eq!(rules_of(&f), ["bad-suppression"]);
    let (f, _) = serve("pub fn f() {} // dz-lint: allow(float-eq, \"\")");
    assert_eq!(rules_of(&f), ["bad-suppression"]);
}

#[test]
fn unused_suppression_is_reported() {
    let (f, _) =
        serve("pub fn f(x: u32) -> u32 { x } // dz-lint: allow(float-eq, \"nothing here\")");
    assert_eq!(rules_of(&f), ["unused-suppression"]);
}

#[test]
fn mention_mid_comment_is_not_a_directive() {
    let (f, _) =
        serve("pub fn f() {} // suppress with dz-lint: allow(float-eq, \"why\") if needed");
    assert!(f.is_empty(), "{f:?}");
}

// --- test exemptions ------------------------------------------------------

#[test]
fn violations_in_cfg_test_are_exempt() {
    let src = "pub fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t(x: f64) -> bool {\n        let _ = std::time::Instant::now();\n        x == 0.5\n    }\n}\n";
    let (f, _) = serve(src);
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn test_files_are_exempt_entirely() {
    let (f, sites) = lint_source(
        "fn t() { let _ = std::time::Instant::now(); Some(1).unwrap(); }",
        &FileMeta {
            rel_path: "crates/serve/tests/x.rs".to_string(),
            crate_name: "serve".to_string(),
            is_test_file: true,
        },
    );
    assert!(f.is_empty(), "{f:?}");
    assert!(sites.is_empty(), "{sites:?}");
}
