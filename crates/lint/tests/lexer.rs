//! Lexer unit tests: the constructs that break naive regex scans —
//! nested block comments, raw strings with hash fences, char/byte
//! literals vs lifetimes, and `#[cfg(test)]` / `mod tests` region
//! tracking.

use dz_lint::lexer::LexedFile;

#[test]
fn nested_block_comments_are_stripped_whole() {
    let lexed = LexedFile::lex("let a = 1; /* x /* y */ z */ let b = 2;");
    assert!(lexed.code.contains("let a = 1;"));
    assert!(lexed.code.contains("let b = 2;"));
    assert!(!lexed.code.contains('x'));
    assert!(!lexed.code.contains('y'));
    assert!(!lexed.code.contains('z'));
    assert_eq!(lexed.comments.len(), 1);
    assert_eq!(lexed.comments[0].text, "/* x /* y */ z */");
    assert_eq!(lexed.comments[0].line, 1);
}

#[test]
fn line_comments_keep_text_and_line() {
    let lexed = LexedFile::lex("let a = 1;\n// dz-lint: allow(float-eq, \"why\")\nlet b = 2;\n");
    assert_eq!(lexed.comments.len(), 1);
    assert_eq!(lexed.comments[0].line, 2);
    assert_eq!(
        lexed.comments[0].text,
        "// dz-lint: allow(float-eq, \"why\")"
    );
    // The comment's quotes are not string literals.
    assert!(lexed.strings.is_empty());
}

#[test]
fn raw_strings_with_hash_fences() {
    let lexed = LexedFile::lex(r####"let s = r##"quote "# inside"##;"####);
    assert_eq!(lexed.strings.len(), 1);
    assert_eq!(lexed.strings[0].text, r##"quote "# inside"##);
    assert!(!lexed.code.contains("quote"));
    assert!(lexed.code.contains("let s ="));
}

#[test]
fn byte_raw_strings() {
    let lexed = LexedFile::lex(r###"let b = br#"BENCH_x.json"#;"###);
    assert_eq!(lexed.strings.len(), 1);
    assert_eq!(lexed.strings[0].text, "BENCH_x.json");
    assert!(!lexed.code.contains("BENCH"));
}

#[test]
fn identifier_ending_in_r_is_not_a_raw_string() {
    // `var"x"` is not valid Rust, but `for` / `ptr` followed by a quote
    // via macro-ish spacing must not absorb code as a raw string.
    let lexed = LexedFile::lex("let ptr = 1; let s = \"x\";");
    assert_eq!(lexed.strings.len(), 1);
    assert_eq!(lexed.strings[0].text, "x");
    assert!(lexed.code.contains("let ptr = 1;"));
}

#[test]
fn escaped_quotes_in_plain_strings() {
    let lexed = LexedFile::lex(r#"let s = "a\"b"; let t = 1;"#);
    assert_eq!(lexed.strings.len(), 1);
    assert_eq!(lexed.strings[0].text, r#"a\"b"#);
    assert!(lexed.code.contains("let t = 1;"));
}

#[test]
fn multi_line_strings_preserve_line_structure() {
    let lexed = LexedFile::lex("let s = \"one\ntwo\";\nlet after = 3;\n");
    assert_eq!(lexed.strings.len(), 1);
    assert_eq!(lexed.strings[0].line, 1);
    assert_eq!(lexed.strings[0].text, "one\ntwo");
    // Line 3 is still line 3 in the code view.
    assert_eq!(lexed.code_line(3), "let after = 3;");
}

#[test]
fn char_literals_are_blanked_but_lifetimes_survive() {
    let lexed = LexedFile::lex("fn f<'a>(x: &'a u32) -> &'a u32 { let c = 'q'; x }");
    assert!(lexed.code.contains("<'a>"));
    assert!(lexed.code.contains("&'a u32"));
    assert!(!lexed.code.contains('q'));
    assert!(lexed.strings.is_empty());
}

#[test]
fn escaped_char_literals() {
    let lexed = LexedFile::lex(r"let nl = '\n'; let q = '\''; let u = '\u{1F600}';");
    assert!(!lexed.code.contains('n') || !lexed.code.contains("'n'"));
    assert!(!lexed.code.contains("1F600"));
    assert!(lexed.code.contains("let nl ="));
    assert!(lexed.code.contains("let q ="));
    assert!(lexed.code.contains("let u ="));
}

#[test]
fn byte_char_literals() {
    let lexed = LexedFile::lex("let b = b'z';");
    assert!(!lexed.code.contains('z'));
}

#[test]
fn loop_labels_are_not_chars() {
    let lexed = LexedFile::lex("'outer: for i in 0..3 { break 'outer; }");
    assert!(lexed.code.contains("'outer: for"));
    assert!(lexed.code.contains("break 'outer;"));
}

#[test]
fn cfg_test_item_is_a_test_region() {
    let src = "fn real() {}\n#[cfg(test)]\nmod t {\n    fn inner() {}\n}\nfn after() {}\n";
    let lexed = LexedFile::lex(src);
    assert!(!lexed.is_test_line(1));
    assert!(lexed.is_test_line(2));
    assert!(lexed.is_test_line(4));
    assert!(lexed.is_test_line(5));
    assert!(!lexed.is_test_line(6));
}

#[test]
fn cfg_test_with_extra_attributes_covers_whole_item() {
    let src = "#[cfg(test)]\n#[allow(dead_code)]\nfn helper() {\n    let x = 1;\n}\nfn real() {}\n";
    let lexed = LexedFile::lex(src);
    assert!(lexed.is_test_line(3));
    assert!(lexed.is_test_line(4));
    assert!(!lexed.is_test_line(6));
}

#[test]
fn mod_tests_without_attribute_is_a_test_region() {
    let src = "fn real() {}\nmod tests {\n    fn t() { let x = 1; }\n}\nfn after() {}\n";
    let lexed = LexedFile::lex(src);
    assert!(!lexed.is_test_line(1));
    assert!(lexed.is_test_line(3));
    assert!(!lexed.is_test_line(5));
}

#[test]
fn cfg_all_test_counts() {
    let src = "#[cfg(all(test, feature = \"extra\"))]\nmod harness {\n    fn t() {}\n}\n";
    let lexed = LexedFile::lex(src);
    assert!(lexed.is_test_line(3));
}

#[test]
fn attest_is_not_the_test_word() {
    // `test` must match on identifier boundaries inside cfg.
    let src = "#[cfg(feature = \"attested\")]\nfn f() { let x = 1; }\n";
    let lexed = LexedFile::lex(src);
    assert!(!lexed.is_test_line(2));
}

#[test]
fn line_of_and_code_line_agree() {
    let src = "let a = 1;\nlet bb = 2;\nlet ccc = 3;\n";
    let lexed = LexedFile::lex(src);
    let pos = lexed.code.find("bb").unwrap();
    assert_eq!(lexed.line_of(pos), 2);
    assert_eq!(lexed.code_line(2), "let bb = 2;");
}
