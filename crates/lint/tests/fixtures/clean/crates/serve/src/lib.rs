//! The clean twin of the seeded fixture: every rule hit carries a
//! justified suppression, so `dz-lint --check --root <here>` must
//! report zero findings (trailing and standalone comment forms both
//! exercised).

use std::collections::HashMap;
use std::time::Instant;

/// Annotated wall-clock read (standalone suppression form).
pub fn stamp() -> Instant {
    // dz-lint: allow(wall-clock, "fixture: annotated measurement site")
    Instant::now()
}

/// Annotated hash iteration (trailing suppression form).
pub fn sum_warm(warm: &HashMap<usize, u64>) -> u64 {
    warm.values().copied().sum() // dz-lint: allow(hash-iter, "fixture: sum is order-independent")
}

/// Annotated float comparison.
pub fn is_idle(load_s: f64) -> bool {
    load_s == 0.0 // dz-lint: allow(float-eq, "fixture: exact sentinel, never computed")
}

/// Annotated thread spawn.
pub fn fan_out() {
    // dz-lint: allow(thread-spawn, "fixture: joins immediately, touches no shared state")
    std::thread::spawn(|| {}).join().ok();
}

/// Annotated unwrap (excluded from the budget tally, so the count
/// matches serve's zero budget).
pub fn first(xs: &[u64]) -> u64 {
    *xs.first().unwrap() // dz-lint: allow(unwrap-budget, "fixture: slice is non-empty by construction")
}

/// Annotated bench artifact mention (suppression resolves to the
/// string literal's line even though it is blank in the code view).
pub fn artifact_path() -> &'static str {
    // dz-lint: allow(bench-provenance, "fixture: path constant only; the writer adds provenance")
    "BENCH_clean.json"
}
