//! Seeded rule violations for the dz-lint self-test. Every construct
//! below must produce a finding, and `dz-lint --check --root <here>`
//! must exit nonzero — CI asserts exactly that, mirroring the
//! perf-gate's perturbed-baseline self-test.

use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// wall-clock: reads the real clock inside "simulation" code.
pub fn stamp() -> Instant {
    Instant::now()
}

/// hash-iter (method form): iterates replica state in nondeterministic
/// order.
pub fn sum_warm(warm: &HashMap<usize, u64>) -> u64 {
    warm.values().copied().sum()
}

/// hash-iter (for-loop form).
pub fn count_ready(ready: HashSet<usize>) -> usize {
    let mut n = 0;
    for _m in &ready {
        n += 1;
    }
    n
}

/// float-eq: lossy comparison against a float literal.
pub fn is_idle(load_s: f64) -> bool {
    load_s == 0.0
}

/// thread-spawn outside the decode allowlist.
pub fn fan_out() {
    std::thread::spawn(|| {});
}

/// unwrap-budget: serve's budget is pinned to zero in the seeded
/// budget file, so this site is over budget.
pub fn first(xs: &[u64]) -> u64 {
    *xs.first().unwrap()
}

/// bench-provenance: mentions a BENCH artifact without ever calling
/// json_provenance.
pub fn artifact_path() -> &'static str {
    "BENCH_seeded.json"
}
