//! Workspace-level tests over the checked-in fixture corpora: the
//! seeded tree must trip every rule (CI additionally asserts the
//! binary's nonzero exit over the same tree), and the clean twin —
//! same constructs, each suppressed — must come back spotless.

use std::collections::BTreeMap;

use dz_lint::{budget_to_json, lint_workspace, parse_budget, report_to_json, Options};

fn fixture(name: &str) -> Options {
    Options::new(format!(
        "{}/tests/fixtures/{name}",
        env!("CARGO_MANIFEST_DIR")
    ))
}

#[test]
fn seeded_fixture_trips_every_rule() {
    let report = lint_workspace(&fixture("seeded")).expect("lint seeded fixture");
    assert_eq!(report.files_scanned, 1);
    let rules: Vec<&str> = report.findings.iter().map(|f| f.rule.as_str()).collect();
    for expected in [
        "wall-clock",
        "hash-iter",
        "float-eq",
        "unwrap-budget",
        "thread-spawn",
        "bench-provenance",
    ] {
        assert!(rules.contains(&expected), "missing {expected} in {rules:?}");
    }
    // Findings are sorted and carry real line numbers.
    let mut sorted = report.findings.clone();
    sorted.sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
    assert_eq!(
        report
            .findings
            .iter()
            .map(|f| (f.path.clone(), f.line))
            .collect::<Vec<_>>(),
        sorted
            .iter()
            .map(|f| (f.path.clone(), f.line))
            .collect::<Vec<_>>(),
    );
    assert!(report.findings.iter().all(|f| f.line >= 1));
    // The JSON view carries the same findings.
    let json = report_to_json(&report);
    assert!(json.contains("\"wall-clock\""));
    assert!(json.contains("\"finding_count\""));
}

#[test]
fn clean_fixture_is_spotless() {
    let report = lint_workspace(&fixture("clean")).expect("lint clean fixture");
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    // The suppressed unwrap is excluded from the tally, matching the
    // zero budget.
    assert_eq!(report.unwrap_counts.get("serve"), Some(&0));
}

#[test]
fn budget_roundtrips_through_json() {
    let mut counts = BTreeMap::new();
    counts.insert("serve".to_string(), 31usize);
    counts.insert("store".to_string(), 0usize);
    let text = budget_to_json(&counts);
    assert_eq!(parse_budget(&text).expect("parse"), counts);
}

#[test]
fn workspace_budget_matches_reality() {
    // The real repo root: dz-lint --check must stay green, and the
    // checked-in budget must match the live counts exactly (the ratchet
    // both directions).
    let root = format!("{}/../..", env!("CARGO_MANIFEST_DIR"));
    let report = lint_workspace(&Options::new(&root)).expect("lint workspace");
    assert!(
        report.findings.is_empty(),
        "workspace has lint findings:\n{}",
        report
            .findings
            .iter()
            .map(|f| format!("{}:{}: [{}] {}", f.path, f.line, f.rule, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
