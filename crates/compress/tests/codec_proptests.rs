//! Property-based invariants of the delta-compression method zoo:
//!
//! * encode → decode is the identity for every packed-layer format, and
//!   decode of the round-tripped layer reconstructs the same tensor,
//! * reconstruction error obeys the codec's analytic bound (BitDelta) and
//!   is monotone non-increasing in the bit budget (Delta-CoMe bands),
//! * truncated or bit-flipped layer and delta records return typed errors
//!   or the exact original — never a panic, never silent corruption.

use dz_compress::codec::{CodecId, LowRankMatrix, PackedLayer, SignMatrix, SignScope};
use dz_compress::pipeline::{CompressedDelta, DeltaCompressConfig, SizeReport};
use dz_compress::wire::{decode_delta, encode_delta, layer_from_bytes, layer_to_bytes};
use dz_tensor::{Matrix, Rng};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A seeded delta in `(d_in, d_out)` weight orientation.
fn delta_matrix(d_in: usize, d_out: usize, seed: u64, scale: f32) -> Matrix {
    let mut rng = Rng::seeded(seed);
    Matrix::randn(d_in, d_out, scale, &mut rng)
}

fn sign_layer(d_in: usize, d_out: usize, seed: u64, per_row: bool) -> SignMatrix {
    let scope = if per_row {
        SignScope::PerRow
    } else {
        SignScope::PerMatrix
    };
    SignMatrix::from_delta(&delta_matrix(d_in, d_out, seed, 0.01), scope)
}

fn lowrank_layer(d_in: usize, d_out: usize, seed: u64) -> LowRankMatrix {
    LowRankMatrix::from_delta(&delta_matrix(d_in, d_out, seed, 0.01), &[(8, 2), (2, 4)])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sign_layer_round_trips_and_reconstructs_identically(
        d_in in 1usize..40,
        d_out in 1usize..24,
        seed in any::<u64>(),
        per_row in any::<bool>(),
    ) {
        let sm = sign_layer(d_in, d_out, seed, per_row);
        let layer = PackedLayer::Sign(sm.clone());
        let back = layer_from_bytes(&layer_to_bytes(&layer)).expect("round trip");
        prop_assert_eq!(&back, &layer);
        // Identity at the bytes level implies identity at the tensor
        // level: the decoded layer reconstructs the same matrix.
        prop_assert_eq!(back.dequantize(), sm.dequantize());
    }

    #[test]
    fn sign_error_is_within_the_analytic_bound(
        d_in in 1usize..40,
        d_out in 1usize..24,
        seed in any::<u64>(),
        per_row in any::<bool>(),
    ) {
        let delta = delta_matrix(d_in, d_out, seed, 0.01);
        let scope = if per_row { SignScope::PerRow } else { SignScope::PerMatrix };
        let sm = SignMatrix::from_delta(&delta, scope);
        let rec = sm.dequantize();
        // Per element: |w - a*sign(w)| = ||w| - a| <= max(|w|, a).
        for r in 0..d_out {
            let a = sm.scale_of_row(r);
            for c in 0..d_in {
                let w = delta.get(c, r);
                let err = (w - rec.get(c, r)).abs();
                prop_assert!(err <= w.abs().max(a) + 1e-6, "err {err} w {w} a {a}");
            }
        }
        // Globally: the scale is the L2 minimizer, and a=0 recovers the
        // raw energy, so reconstruction error never exceeds it.
        let err = delta.sub(&rec).frob_norm();
        prop_assert!(err <= delta.frob_norm() + 1e-5);
    }

    #[test]
    fn lowrank_layer_round_trips_and_reconstructs_identically(
        d_in in 1usize..32,
        d_out in 1usize..20,
        seed in any::<u64>(),
    ) {
        let lr = lowrank_layer(d_in, d_out, seed);
        let layer = PackedLayer::LowRank(lr.clone());
        let back = layer_from_bytes(&layer_to_bytes(&layer)).expect("round trip");
        prop_assert_eq!(&back, &layer);
        prop_assert_eq!(back.dequantize(), lr.dequantize());
    }

    #[test]
    fn lowrank_error_monotone_in_band_budget(
        d_in in 2usize..28,
        d_out in 2usize..20,
        seed in any::<u64>(),
    ) {
        // Nested band budgets: each prefix of the list is a smaller
        // budget; the fitted residual must never grow.
        let delta = delta_matrix(d_in, d_out, seed, 0.01);
        let bands = [(8u32, 1usize), (3, 2), (2, 4), (2, 8)];
        let mut prev = f32::MAX;
        for take in 1..=bands.len() {
            let lr = LowRankMatrix::from_delta(&delta, &bands[..take]);
            let err = delta.sub(&lr.dequantize()).frob_norm();
            prop_assert!(err <= prev + 1e-5, "budget {take}: {err} > {prev}");
            prev = err;
        }
    }

    #[test]
    fn layer_truncation_never_panics_or_corrupts(
        d_in in 1usize..24,
        d_out in 1usize..16,
        seed in any::<u64>(),
        kind in 0u8..2,
        cut_frac in 0.0f64..1.0,
    ) {
        let layer = match kind {
            0 => PackedLayer::Sign(sign_layer(d_in, d_out, seed, seed.is_multiple_of(2))),
            _ => PackedLayer::LowRank(lowrank_layer(d_in, d_out, seed)),
        };
        let bytes = layer_to_bytes(&layer);
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(layer_from_bytes(&bytes[..cut]).is_err());
    }

    #[test]
    fn layer_byte_flips_never_panic_or_silently_corrupt_structure(
        d_in in 1usize..24,
        d_out in 1usize..16,
        seed in any::<u64>(),
        kind in 0u8..2,
        pos in any::<proptest::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let layer = match kind {
            0 => PackedLayer::Sign(sign_layer(d_in, d_out, seed, seed.is_multiple_of(2))),
            _ => PackedLayer::LowRank(lowrank_layer(d_in, d_out, seed)),
        };
        let bytes = layer_to_bytes(&layer);
        let mut corrupted = bytes.clone();
        let i = pos.index(corrupted.len());
        corrupted[i] ^= flip;
        // Structural fields (tags, dims, lengths) must produce typed
        // errors; flips in payload bits may decode to a *different* valid
        // layer of the same shape (the .dza CRC layer catches those), but
        // never panic.
        if let Ok(back) = layer_from_bytes(&corrupted) {
            prop_assert_eq!(back.d_in(), layer.d_in());
            prop_assert_eq!(back.d_out(), layer.d_out());
        }
    }

    #[test]
    fn delta_records_round_trip_for_every_codec_id(
        d in 4usize..20,
        seed in any::<u64>(),
        which in 0u8..3,
    ) {
        let (codec, layer) = match which {
            0 => (
                CodecId::BitDelta,
                PackedLayer::Sign(sign_layer(d, d, seed, true)),
            ),
            1 => (
                CodecId::DeltaCome,
                PackedLayer::LowRank(lowrank_layer(d, d, seed)),
            ),
            _ => (
                CodecId::BitDelta,
                PackedLayer::Sign(sign_layer(d, d, seed, false)),
            ),
        };
        let mut layers = BTreeMap::new();
        let packed = layer.packed_bytes();
        layers.insert("w".to_string(), layer);
        let mut rng = Rng::seeded(seed ^ 0xE);
        let mut rest = BTreeMap::new();
        rest.insert("emb".to_string(), Matrix::randn(3, d, 1.0, &mut rng));
        let delta = CompressedDelta {
            layers,
            rest,
            codec,
            config: DeltaCompressConfig::starred(4),
            report: SizeReport {
                compressed_linear_bytes: packed,
                uncompressed_rest_bytes: 3 * d * 2,
                full_fp16_bytes: d * d * 2 + 3 * d * 2,
                lossless_linear_bytes: None,
            },
        };
        let bytes = encode_delta(&delta);
        let back = decode_delta(&bytes).expect("decode");
        prop_assert_eq!(&back, &delta);
        prop_assert_eq!(back.codec, codec);
        // Truncation of the delta record is always a typed error.
        prop_assert!(decode_delta(&bytes[..bytes.len() / 2]).is_err());
    }
}
