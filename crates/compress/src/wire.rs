//! Explicit little-endian wire encoding for compressed artifacts.
//!
//! [`CompressedMatrix`] and [`CompressedDelta`] were in-memory-only structs;
//! this module gives them a stable byte representation so deltas can be
//! persisted in `.dza` containers (see the `dz-store` crate) and shipped
//! between processes. All integers are little-endian; all decodes are
//! bounds-checked and return typed errors — corrupt input must never panic
//! or silently produce wrong tensors.
//!
//! Layout of one matrix record:
//!
//! ```text
//! format u8 | bits u32 | group_size u64 | d_in u64 | d_out u64
//! n_qwords u64 | qweight u32 x n_qwords
//! n_index  u64 | indices u8 x n_index
//! n_scales u64 | scales f32 x n_scales
//! ```
//!
//! A delta record is a versioned header (config + size report) followed by
//! name-keyed matrix records for the compressed linears and dense FP32
//! records for the uncompressed rest.

use crate::codec::{
    CodecId, LowRankBand, LowRankMatrix, PackedLayer, SignMatrix, SignScope, MAX_BANDS,
};
use crate::pack::{CompressedMatrix, MatrixFormat};
use crate::pipeline::{CompressedDelta, DeltaCompressConfig, SizeReport};
use crate::quant::QuantSpec;
use dz_tensor::Matrix;
use std::collections::BTreeMap;

/// Current version of the delta record layout. Version 2 added the
/// method-zoo codec id and the sign / low-rank layer records; version-1
/// records (quantized layers only) still decode.
pub const DELTA_WIRE_VERSION: u16 = 2;

const FORMAT_DENSE: u8 = 0;
const FORMAT_SPARSE24: u8 = 1;
/// BitDelta-style sign/scale layer record.
const FORMAT_SIGN: u8 = 2;
/// Delta-CoMe-style mixed-precision low-rank layer record.
const FORMAT_LOWRANK: u8 = 3;

/// Errors raised while decoding wire bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the record did.
    Truncated,
    /// Unsupported record version.
    BadVersion(u16),
    /// An enum tag byte had no meaning.
    BadTag(u8),
    /// A declared length is inconsistent with the record's dimensions.
    LengthMismatch(&'static str),
    /// A name was not valid UTF-8.
    BadName,
    /// A numeric field held an invalid value (e.g. bits outside 2..=8).
    BadField(&'static str),
    /// Bytes remained after the record ended.
    TrailingBytes,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "record truncated"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadTag(t) => write!(f, "invalid tag byte {t}"),
            WireError::LengthMismatch(what) => write!(f, "length mismatch in {what}"),
            WireError::BadName => write!(f, "name is not valid utf-8"),
            WireError::BadField(what) => write!(f, "invalid field value: {what}"),
            WireError::TrailingBytes => write!(f, "trailing bytes after record"),
        }
    }
}

impl std::error::Error for WireError {}

/// Bounds-checked little-endian reader over a byte slice.
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a slice.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// Bytes consumed so far.
    pub fn consumed(&self) -> usize {
        self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.pos == self.bytes.len()
    }

    /// Bytes left to consume.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Rejects a declared element count whose payload cannot fit in the
    /// remaining input — the guard that keeps hostile length fields from
    /// driving huge allocations before the (inevitable) Truncated error.
    pub fn check_payload(&self, elems: usize, elem_size: usize) -> Result<(), WireError> {
        match elems.checked_mul(elem_size) {
            Some(bytes) if bytes <= self.remaining() => Ok(()),
            _ => Err(WireError::Truncated),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.bytes.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64` that must fit a `usize`.
    pub fn len_u64(&mut self) -> Result<usize, WireError> {
        usize::try_from(self.u64()?).map_err(|_| WireError::BadField("length exceeds usize"))
    }

    /// Reads a little-endian `f32`.
    pub fn f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a length-prefixed (u16) UTF-8 string.
    pub fn name(&mut self) -> Result<String, WireError> {
        let n = self.u16()? as usize;
        let raw = self.take(n)?;
        String::from_utf8(raw.to_vec()).map_err(|_| WireError::BadName)
    }
}

/// Appends a u16-length-prefixed UTF-8 name (the counterpart of
/// [`Reader::name`]).
pub fn put_name(out: &mut Vec<u8>, name: &str) {
    let bytes = name.as_bytes();
    assert!(bytes.len() <= u16::MAX as usize, "name too long for wire");
    out.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
    out.extend_from_slice(bytes);
}

/// Appends the wire form of one packed matrix.
pub fn encode_matrix(cm: &CompressedMatrix, out: &mut Vec<u8>) {
    out.push(match cm.format {
        MatrixFormat::QuantDense => FORMAT_DENSE,
        MatrixFormat::QuantSparse24 => FORMAT_SPARSE24,
    });
    out.extend_from_slice(&cm.spec.bits.to_le_bytes());
    out.extend_from_slice(&(cm.spec.group_size as u64).to_le_bytes());
    out.extend_from_slice(&(cm.d_in as u64).to_le_bytes());
    out.extend_from_slice(&(cm.d_out as u64).to_le_bytes());
    out.extend_from_slice(&(cm.qweight.len() as u64).to_le_bytes());
    for w in &cm.qweight {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out.extend_from_slice(&(cm.indices.len() as u64).to_le_bytes());
    out.extend_from_slice(&cm.indices);
    out.extend_from_slice(&(cm.scales.len() as u64).to_le_bytes());
    for s in &cm.scales {
        out.extend_from_slice(&s.to_le_bytes());
    }
}

/// Expected `qweight` word count for the given dimensions and format.
fn expected_qwords(d_in: usize, d_out: usize, bits: u32, format: MatrixFormat) -> Option<usize> {
    let values = match format {
        MatrixFormat::QuantDense => d_in.checked_mul(d_out)?,
        MatrixFormat::QuantSparse24 => d_in.checked_mul(d_out)? / 2,
    };
    Some(values.checked_mul(bits as usize)?.div_ceil(32))
}

/// Decodes one packed matrix, consuming its bytes from the reader.
pub fn decode_matrix(r: &mut Reader<'_>) -> Result<CompressedMatrix, WireError> {
    let format = match r.u8()? {
        FORMAT_DENSE => MatrixFormat::QuantDense,
        FORMAT_SPARSE24 => MatrixFormat::QuantSparse24,
        t => return Err(WireError::BadTag(t)),
    };
    decode_matrix_body(r, format)
}

/// Decodes a packed matrix whose format tag has already been consumed.
fn decode_matrix_body(
    r: &mut Reader<'_>,
    format: MatrixFormat,
) -> Result<CompressedMatrix, WireError> {
    let bits = r.u32()?;
    if !(2..=8).contains(&bits) {
        return Err(WireError::BadField("bits outside 2..=8"));
    }
    let group_size = r.len_u64()?;
    if group_size == 0 {
        return Err(WireError::BadField("zero group size"));
    }
    let d_in = r.len_u64()?;
    let d_out = r.len_u64()?;
    if format == MatrixFormat::QuantSparse24 && d_in % 4 != 0 {
        return Err(WireError::BadField("sparse24 d_in not divisible by 4"));
    }
    let n_qwords = r.len_u64()?;
    match expected_qwords(d_in, d_out, bits, format) {
        Some(want) if want == n_qwords => {}
        _ => return Err(WireError::LengthMismatch("qweight words")),
    }
    r.check_payload(n_qwords, 4)?;
    let mut qweight = Vec::with_capacity(n_qwords);
    for _ in 0..n_qwords {
        qweight.push(r.u32()?);
    }
    let n_index = r.len_u64()?;
    let want_index = match format {
        MatrixFormat::QuantDense => 0,
        MatrixFormat::QuantSparse24 => (d_in * d_out / 2).div_ceil(4),
    };
    if n_index != want_index {
        return Err(WireError::LengthMismatch("index bytes"));
    }
    r.check_payload(n_index, 1)?;
    let mut indices = vec![0u8; n_index];
    for b in indices.iter_mut() {
        *b = r.u8()?;
    }
    let n_scales = r.len_u64()?;
    if n_scales
        != d_out
            .checked_mul(d_in.div_ceil(group_size))
            .ok_or(WireError::LengthMismatch("scales"))?
    {
        return Err(WireError::LengthMismatch("scales"));
    }
    r.check_payload(n_scales, 4)?;
    let mut scales = Vec::with_capacity(n_scales);
    for _ in 0..n_scales {
        scales.push(r.f32()?);
    }
    Ok(CompressedMatrix {
        d_in,
        d_out,
        spec: QuantSpec::new(bits, group_size),
        format,
        qweight,
        indices,
        scales,
    })
}

/// Appends the wire form of one sign/scale (BitDelta) matrix.
fn encode_sign(sm: &SignMatrix, out: &mut Vec<u8>) {
    out.push(FORMAT_SIGN);
    out.push(match sm.scope {
        SignScope::PerMatrix => 0,
        SignScope::PerRow => 1,
    });
    out.extend_from_slice(&(sm.d_in as u64).to_le_bytes());
    out.extend_from_slice(&(sm.d_out as u64).to_le_bytes());
    out.extend_from_slice(&(sm.signs.len() as u64).to_le_bytes());
    for w in &sm.signs {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out.extend_from_slice(&(sm.scales.len() as u64).to_le_bytes());
    for s in &sm.scales {
        out.extend_from_slice(&s.to_le_bytes());
    }
}

/// Decodes a sign/scale matrix whose format tag has already been consumed.
fn decode_sign_body(r: &mut Reader<'_>) -> Result<SignMatrix, WireError> {
    let scope = match r.u8()? {
        0 => SignScope::PerMatrix,
        1 => SignScope::PerRow,
        t => return Err(WireError::BadTag(t)),
    };
    let d_in = r.len_u64()?;
    let d_out = r.len_u64()?;
    let n_words = r.len_u64()?;
    let want_words = d_in
        .checked_mul(d_out)
        .map(|n| n.div_ceil(32))
        .ok_or(WireError::LengthMismatch("sign words"))?;
    if n_words != want_words {
        return Err(WireError::LengthMismatch("sign words"));
    }
    r.check_payload(n_words, 4)?;
    let mut signs = Vec::with_capacity(n_words);
    for _ in 0..n_words {
        signs.push(r.u32()?);
    }
    let n_scales = r.len_u64()?;
    let want_scales = match scope {
        SignScope::PerMatrix => 1,
        SignScope::PerRow => d_out,
    };
    if n_scales != want_scales {
        return Err(WireError::LengthMismatch("sign scales"));
    }
    r.check_payload(n_scales, 4)?;
    let mut scales = Vec::with_capacity(n_scales);
    for _ in 0..n_scales {
        scales.push(r.f32()?);
    }
    Ok(SignMatrix {
        d_in,
        d_out,
        scope,
        scales,
        signs,
    })
}

/// Appends the wire form of one mixed-precision low-rank matrix.
///
/// The band cap is enforced at construction, so encoding is infallible;
/// the assert keeps a hand-built over-limit value from producing bytes
/// the decoder would refuse.
fn encode_lowrank(lr: &LowRankMatrix, out: &mut Vec<u8>) {
    assert!(
        lr.bands.len() <= MAX_BANDS,
        "at most {MAX_BANDS} low-rank bands per layer"
    );
    out.push(FORMAT_LOWRANK);
    out.extend_from_slice(&(lr.d_in as u64).to_le_bytes());
    out.extend_from_slice(&(lr.d_out as u64).to_le_bytes());
    out.extend_from_slice(&(lr.bands.len() as u16).to_le_bytes());
    for band in &lr.bands {
        encode_matrix(&band.p, out);
        encode_matrix(&band.q, out);
    }
}

/// Decodes a low-rank matrix whose format tag has already been consumed.
fn decode_lowrank_body(r: &mut Reader<'_>) -> Result<LowRankMatrix, WireError> {
    let d_in = r.len_u64()?;
    let d_out = r.len_u64()?;
    let n_bands = r.u16()? as usize;
    if n_bands > MAX_BANDS {
        return Err(WireError::BadField("too many low-rank bands"));
    }
    let mut bands = Vec::with_capacity(n_bands);
    for _ in 0..n_bands {
        let p = decode_matrix(r)?;
        let q = decode_matrix(r)?;
        // Factor rows are singular directions: p is (rank x d_in), q is
        // (rank x d_out) in stored orientation.
        if p.d_in != d_in || q.d_in != d_out || p.d_out != q.d_out {
            return Err(WireError::LengthMismatch("low-rank band dims"));
        }
        bands.push(LowRankBand { p, q });
    }
    Ok(LowRankMatrix { d_in, d_out, bands })
}

/// Appends the wire form of one packed layer (any method-zoo format).
pub fn encode_layer(layer: &PackedLayer, out: &mut Vec<u8>) {
    match layer {
        PackedLayer::Quant(cm) => encode_matrix(cm, out),
        PackedLayer::Sign(sm) => encode_sign(sm, out),
        PackedLayer::LowRank(lr) => encode_lowrank(lr, out),
    }
}

/// Decodes one packed layer, consuming its bytes from the reader. Accepts
/// every format tag, including the version-1 quantized records.
pub fn decode_layer(r: &mut Reader<'_>) -> Result<PackedLayer, WireError> {
    match r.u8()? {
        FORMAT_DENSE => Ok(PackedLayer::Quant(decode_matrix_body(
            r,
            MatrixFormat::QuantDense,
        )?)),
        FORMAT_SPARSE24 => Ok(PackedLayer::Quant(decode_matrix_body(
            r,
            MatrixFormat::QuantSparse24,
        )?)),
        FORMAT_SIGN => Ok(PackedLayer::Sign(decode_sign_body(r)?)),
        FORMAT_LOWRANK => Ok(PackedLayer::LowRank(decode_lowrank_body(r)?)),
        t => Err(WireError::BadTag(t)),
    }
}

/// Appends the wire form of a dense FP32 matrix.
pub fn encode_dense(m: &Matrix, out: &mut Vec<u8>) {
    out.extend_from_slice(&(m.rows() as u64).to_le_bytes());
    out.extend_from_slice(&(m.cols() as u64).to_le_bytes());
    for &v in m.data() {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Decodes a dense FP32 matrix, consuming its bytes from the reader.
pub fn decode_dense(r: &mut Reader<'_>) -> Result<Matrix, WireError> {
    let rows = r.len_u64()?;
    let cols = r.len_u64()?;
    let n = rows
        .checked_mul(cols)
        .ok_or(WireError::LengthMismatch("dense matrix size"))?;
    r.check_payload(n, 4)?;
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(r.f32()?);
    }
    Ok(Matrix::from_vec(rows, cols, data))
}

/// Appends the wire form of a [`DeltaCompressConfig`].
pub fn encode_config(cfg: &DeltaCompressConfig, out: &mut Vec<u8>) {
    out.extend_from_slice(&cfg.bits.to_le_bytes());
    out.extend_from_slice(&(cfg.group_size as u64).to_le_bytes());
    out.push(cfg.sparse24 as u8);
    out.extend_from_slice(&cfg.damp.to_le_bytes());
    out.push(cfg.lossless as u8);
}

fn decode_bool(r: &mut Reader<'_>) -> Result<bool, WireError> {
    match r.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        t => Err(WireError::BadTag(t)),
    }
}

/// Decodes a [`DeltaCompressConfig`], consuming its bytes.
pub fn decode_config(r: &mut Reader<'_>) -> Result<DeltaCompressConfig, WireError> {
    Ok(DeltaCompressConfig {
        bits: r.u32()?,
        group_size: r.len_u64()?,
        sparse24: decode_bool(r)?,
        damp: r.f32()?,
        lossless: decode_bool(r)?,
    })
}

/// Appends the wire form of a [`SizeReport`].
pub fn encode_report(rep: &SizeReport, out: &mut Vec<u8>) {
    out.extend_from_slice(&(rep.compressed_linear_bytes as u64).to_le_bytes());
    out.extend_from_slice(&(rep.uncompressed_rest_bytes as u64).to_le_bytes());
    out.extend_from_slice(&(rep.full_fp16_bytes as u64).to_le_bytes());
    match rep.lossless_linear_bytes {
        Some(b) => {
            out.push(1);
            out.extend_from_slice(&(b as u64).to_le_bytes());
        }
        None => out.push(0),
    }
}

/// Decodes a [`SizeReport`], consuming its bytes.
pub fn decode_report(r: &mut Reader<'_>) -> Result<SizeReport, WireError> {
    let compressed_linear_bytes = r.len_u64()?;
    let uncompressed_rest_bytes = r.len_u64()?;
    let full_fp16_bytes = r.len_u64()?;
    let lossless_linear_bytes = if decode_bool(r)? {
        Some(r.len_u64()?)
    } else {
        None
    };
    Ok(SizeReport {
        compressed_linear_bytes,
        uncompressed_rest_bytes,
        full_fp16_bytes,
        lossless_linear_bytes,
    })
}

/// Serializes a whole compressed delta to wire bytes (current version).
pub fn encode_delta(cd: &CompressedDelta) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&DELTA_WIRE_VERSION.to_le_bytes());
    out.push(cd.codec.as_u8());
    encode_config(&cd.config, &mut out);
    encode_report(&cd.report, &mut out);
    out.extend_from_slice(&(cd.layers.len() as u32).to_le_bytes());
    for (name, layer) in &cd.layers {
        put_name(&mut out, name);
        encode_layer(layer, &mut out);
    }
    out.extend_from_slice(&(cd.rest.len() as u32).to_le_bytes());
    for (name, m) in &cd.rest {
        put_name(&mut out, name);
        encode_dense(m, &mut out);
    }
    out
}

/// Deserializes a compressed delta from wire bytes, requiring the record
/// to span the input exactly. Both version-2 records and pre-method-zoo
/// version-1 records (no codec byte; quantized layers only) decode; v1
/// deltas report [`CodecId::SparseGptStar`].
pub fn decode_delta(bytes: &[u8]) -> Result<CompressedDelta, WireError> {
    let mut r = Reader::new(bytes);
    let version = r.u16()?;
    let codec = match version {
        1 => CodecId::SparseGptStar,
        2 => CodecId::from_u8(r.u8()?).ok_or(WireError::BadField("unknown codec id"))?,
        v => return Err(WireError::BadVersion(v)),
    };
    let config = decode_config(&mut r)?;
    let report = decode_report(&mut r)?;
    let n_layers = r.u32()? as usize;
    let mut layers = BTreeMap::new();
    for _ in 0..n_layers {
        let name = r.name()?;
        let layer = if version == 1 {
            PackedLayer::Quant(decode_matrix(&mut r)?)
        } else {
            decode_layer(&mut r)?
        };
        layers.insert(name, layer);
    }
    let n_rest = r.u32()? as usize;
    let mut rest = BTreeMap::new();
    for _ in 0..n_rest {
        let name = r.name()?;
        let m = decode_dense(&mut r)?;
        rest.insert(name, m);
    }
    if !r.is_done() {
        return Err(WireError::TrailingBytes);
    }
    Ok(CompressedDelta {
        layers,
        rest,
        codec,
        config,
        report,
    })
}

/// Convenience: encodes one matrix as a standalone record.
pub fn matrix_to_bytes(cm: &CompressedMatrix) -> Vec<u8> {
    let mut out = Vec::new();
    encode_matrix(cm, &mut out);
    out
}

/// Convenience: decodes one standalone matrix record, requiring it to span
/// the input exactly.
pub fn matrix_from_bytes(bytes: &[u8]) -> Result<CompressedMatrix, WireError> {
    let mut r = Reader::new(bytes);
    let cm = decode_matrix(&mut r)?;
    if !r.is_done() {
        return Err(WireError::TrailingBytes);
    }
    Ok(cm)
}

/// Convenience: encodes one packed layer as a standalone record.
pub fn layer_to_bytes(layer: &PackedLayer) -> Vec<u8> {
    let mut out = Vec::new();
    encode_layer(layer, &mut out);
    out
}

/// Convenience: decodes one standalone packed-layer record, requiring it
/// to span the input exactly.
pub fn layer_from_bytes(bytes: &[u8]) -> Result<PackedLayer, WireError> {
    let mut r = Reader::new(bytes);
    let layer = decode_layer(&mut r)?;
    if !r.is_done() {
        return Err(WireError::TrailingBytes);
    }
    Ok(layer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::quantize_slice;
    use dz_tensor::Rng;

    fn dense_fixture(d_out: usize, d_in: usize, bits: u32, seed: u64) -> CompressedMatrix {
        let mut rng = Rng::seeded(seed);
        let spec = QuantSpec::new(bits, 8);
        let wt = Matrix::randn(d_out, d_in, 0.05, &mut rng);
        let mut levels = Vec::new();
        let mut scales = Vec::new();
        for r in 0..d_out {
            let (l, s) = quantize_slice(wt.row(r), spec);
            levels.extend(l);
            scales.extend(s);
        }
        CompressedMatrix::from_dense(d_out, d_in, &levels, scales, spec)
    }

    fn sparse_fixture(d_out: usize, d_in: usize, bits: u32, seed: u64) -> CompressedMatrix {
        let mut rng = Rng::seeded(seed);
        let spec = QuantSpec::new(bits, 8);
        let qmax = spec.qmax();
        let mut levels = vec![0i32; d_out * d_in];
        let mut mask = vec![false; d_out * d_in];
        for r in 0..d_out {
            for g in 0..d_in / 4 {
                let first = rng.below(4);
                let mut second = rng.below(4);
                while second == first {
                    second = rng.below(4);
                }
                for k in [first, second] {
                    let i = r * d_in + g * 4 + k;
                    mask[i] = true;
                    levels[i] = rng.below((2 * qmax + 1) as usize) as i32 - qmax;
                }
            }
        }
        let scales = vec![0.07f32; d_out * d_in.div_ceil(8)];
        CompressedMatrix::from_sparse24(d_out, d_in, &levels, &mask, scales, spec)
    }

    #[test]
    fn matrix_round_trip_dense_and_sparse() {
        for bits in [2u32, 3, 4, 8] {
            let cm = dense_fixture(6, 16, bits, bits as u64);
            let back = matrix_from_bytes(&matrix_to_bytes(&cm)).unwrap();
            assert_eq!(back, cm, "dense bits={bits}");
        }
        for bits in [2u32, 4] {
            let cm = sparse_fixture(5, 16, bits, bits as u64 + 7);
            let back = matrix_from_bytes(&matrix_to_bytes(&cm)).unwrap();
            assert_eq!(back, cm, "sparse bits={bits}");
        }
    }

    #[test]
    fn matrix_decode_rejects_truncation_everywhere() {
        let bytes = matrix_to_bytes(&sparse_fixture(4, 16, 4, 3));
        for cut in 0..bytes.len() {
            assert!(
                matrix_from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn matrix_decode_rejects_bad_tag_and_lengths() {
        let mut bytes = matrix_to_bytes(&dense_fixture(3, 8, 4, 9));
        bytes[0] = 9; // Unknown format tag.
        assert_eq!(matrix_from_bytes(&bytes), Err(WireError::BadTag(9)));
        let mut bytes = matrix_to_bytes(&dense_fixture(3, 8, 4, 9));
        bytes[1] = 77; // bits = 77.
        assert_eq!(
            matrix_from_bytes(&bytes),
            Err(WireError::BadField("bits outside 2..=8"))
        );
    }

    #[test]
    fn hostile_huge_lengths_fail_before_allocating() {
        // A header declaring consistent but astronomical dimensions must
        // be rejected by the remaining-input bound, not by attempting a
        // terabyte allocation.
        let mut bytes = Vec::new();
        bytes.push(0u8); // dense
        bytes.extend_from_slice(&2u32.to_le_bytes()); // bits
        bytes.extend_from_slice(&8u64.to_le_bytes()); // group_size
        let d: u64 = 1 << 20;
        bytes.extend_from_slice(&d.to_le_bytes()); // d_in
        bytes.extend_from_slice(&d.to_le_bytes()); // d_out
        let n_qwords = (d * d * 2).div_ceil(32);
        bytes.extend_from_slice(&n_qwords.to_le_bytes());
        assert_eq!(matrix_from_bytes(&bytes), Err(WireError::Truncated));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = matrix_to_bytes(&dense_fixture(3, 8, 4, 11));
        bytes.push(0);
        assert_eq!(matrix_from_bytes(&bytes), Err(WireError::TrailingBytes));
    }

    #[test]
    fn dense_matrix_round_trip() {
        let mut rng = Rng::seeded(5);
        let m = Matrix::randn(7, 9, 1.0, &mut rng);
        let mut out = Vec::new();
        encode_dense(&m, &mut out);
        let mut r = Reader::new(&out);
        let back = decode_dense(&mut r).unwrap();
        assert!(r.is_done());
        assert_eq!(back, m);
    }

    fn sign_layer(seed: u64, scope: SignScope) -> PackedLayer {
        let mut rng = Rng::seeded(seed);
        let delta = Matrix::randn(20, 12, 0.01, &mut rng);
        PackedLayer::Sign(SignMatrix::from_delta(&delta, scope))
    }

    fn lowrank_layer(seed: u64) -> PackedLayer {
        let mut rng = Rng::seeded(seed);
        let delta = Matrix::randn(24, 16, 0.01, &mut rng);
        PackedLayer::LowRank(LowRankMatrix::from_delta(&delta, &[(8, 2), (2, 4)]))
    }

    #[test]
    fn codec_layers_round_trip() {
        for layer in [
            sign_layer(31, SignScope::PerMatrix),
            sign_layer(32, SignScope::PerRow),
            lowrank_layer(33),
            PackedLayer::Quant(dense_fixture(5, 12, 4, 34)),
        ] {
            let back = layer_from_bytes(&layer_to_bytes(&layer)).unwrap();
            assert_eq!(back, layer);
        }
    }

    #[test]
    fn codec_layers_reject_truncation_everywhere() {
        for layer in [sign_layer(41, SignScope::PerRow), lowrank_layer(42)] {
            let bytes = layer_to_bytes(&layer);
            for cut in 0..bytes.len() {
                assert!(
                    layer_from_bytes(&bytes[..cut]).is_err(),
                    "cut at {cut} must fail"
                );
            }
        }
    }

    #[test]
    fn lowrank_rejects_inconsistent_band_dims() {
        let PackedLayer::LowRank(mut lr) = lowrank_layer(43) else {
            unreachable!()
        };
        // Corrupt a band: swap p and q so rows no longer match d_in/d_out.
        let band = &mut lr.bands[0];
        std::mem::swap(&mut band.p, &mut band.q);
        let bytes = layer_to_bytes(&PackedLayer::LowRank(lr));
        assert_eq!(
            layer_from_bytes(&bytes),
            Err(WireError::LengthMismatch("low-rank band dims"))
        );
    }

    #[test]
    fn layer_decode_rejects_unknown_tag() {
        let mut bytes = layer_to_bytes(&sign_layer(44, SignScope::PerRow));
        bytes[0] = 99;
        assert_eq!(layer_from_bytes(&bytes), Err(WireError::BadTag(99)));
    }
}
