//! The delta-compression **method zoo**: a [`DeltaCodec`] trait unifying
//! the SparseGPT-starred ΔCompress pipeline with alternative delta codecs
//! from the literature, all producing the same [`CompressedDelta`] artifact
//! so ratio, quality, and serving cost sweep through one path.
//!
//! Implemented codecs:
//!
//! * [`SparseGptCodec`] — the paper's pipeline (OBS solver, group
//!   quantization, optional 2:4 sparsity) behind the trait,
//! * [`BitDeltaCodec`] — BitDelta-style 1-bit compression: the delta of a
//!   fine-tune survives `sign(Δ)` plus a single L2-optimal scale per
//!   matrix (or per output row), ~16x smaller than FP16 before the
//!   lossless stage,
//! * [`DeltaComeCodec`] — Delta-CoMe-style mixed-precision low-rank
//!   compression: the delta's singular spectrum is split into bands, the
//!   top singular directions quantized at high precision and the tail at
//!   2-3 bits, with error feedback between bands (each band fits the
//!   residual left by the previous ones).
//!
//! Every codec's output rides the existing wire/`.dza` path, so its packed
//! byte size flows into `serve::cost` load charges and the cluster
//! simulator automatically — smaller deltas mean measurably faster
//! swap-ins.

use crate::pack::CompressedMatrix;
use crate::pipeline::{
    collect_rest, delta_compress, size_report_for, CompressedDelta, DeltaCompressConfig,
};
use crate::quant::{quantize_slice, QuantSpec};
use dz_model::transformer::Params;
use dz_tensor::linalg::svd_thin;
use dz_tensor::Matrix;
use std::collections::BTreeMap;

/// Stable identifier of the codec that produced a delta. The `u8` values
/// are frozen: they appear in wire records and `.dza` tensor headers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CodecId {
    /// SparseGPT-starred ΔCompress (OBS + group quant + optional 2:4).
    SparseGptStar,
    /// BitDelta-style 1-bit sign/scale.
    BitDelta,
    /// Delta-CoMe-style mixed-precision low-rank.
    DeltaCome,
}

impl CodecId {
    /// Frozen wire value.
    pub fn as_u8(self) -> u8 {
        match self {
            CodecId::SparseGptStar => 0,
            CodecId::BitDelta => 1,
            CodecId::DeltaCome => 2,
        }
    }

    /// Parses a wire value.
    pub fn from_u8(v: u8) -> Option<CodecId> {
        match v {
            0 => Some(CodecId::SparseGptStar),
            1 => Some(CodecId::BitDelta),
            2 => Some(CodecId::DeltaCome),
            _ => None,
        }
    }

    /// Human-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            CodecId::SparseGptStar => "sparsegpt-star",
            CodecId::BitDelta => "bitdelta",
            CodecId::DeltaCome => "delta-come",
        }
    }
}

/// Scale granularity of a [`SignMatrix`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignScope {
    /// One scale for the whole matrix (BitDelta's original form).
    PerMatrix,
    /// One scale per output row (slightly larger, slightly tighter fit).
    PerRow,
}

/// A BitDelta-packed matrix: 1 sign bit per weight plus FP16-counted
/// scales, stored output-major like [`CompressedMatrix`].
///
/// The scale is the L2-optimal coefficient for fixed signs:
/// `argmin_a Σ (w_i - a·sign(w_i))² = mean |w_i|` over its scope.
#[derive(Debug, Clone, PartialEq)]
pub struct SignMatrix {
    /// Input dimension (columns of each stored row).
    pub d_in: usize,
    /// Output dimension (number of stored rows).
    pub d_out: usize,
    /// Scale granularity.
    pub scope: SignScope,
    /// Scales: 1 entry ([`SignScope::PerMatrix`]) or `d_out` entries.
    pub scales: Vec<f32>,
    /// Sign bits (1 = positive), output-major, LSB-first in each word.
    pub signs: Vec<u32>,
}

impl SignMatrix {
    /// Packs a delta given in the model's `(d_in, d_out)` weight
    /// orientation.
    pub fn from_delta(delta: &Matrix, scope: SignScope) -> Self {
        let (d_in, d_out) = delta.shape();
        let total = d_in * d_out;
        let mut signs = vec![0u32; total.div_ceil(32)];
        let mut row_abs_sum = vec![0.0f64; d_out];
        for (r, abs_sum) in row_abs_sum.iter_mut().enumerate() {
            for c in 0..d_in {
                let v = delta.get(c, r);
                *abs_sum += v.abs() as f64;
                if v > 0.0 {
                    let i = r * d_in + c;
                    signs[i / 32] |= 1 << (i % 32);
                }
            }
        }
        let scales = match scope {
            SignScope::PerMatrix => {
                vec![(row_abs_sum.iter().sum::<f64>() / total.max(1) as f64) as f32]
            }
            SignScope::PerRow => row_abs_sum
                .iter()
                .map(|s| (*s / d_in.max(1) as f64) as f32)
                .collect(),
        };
        SignMatrix {
            d_in,
            d_out,
            scope,
            scales,
            signs,
        }
    }

    /// Scale of output row `r`.
    #[inline]
    pub fn scale_of_row(&self, r: usize) -> f32 {
        match self.scope {
            SignScope::PerMatrix => self.scales[0],
            SignScope::PerRow => self.scales[r],
        }
    }

    /// Sign (`±1.0`) of `(row r, input c)`.
    #[inline]
    pub fn sign_at(&self, r: usize, c: usize) -> f32 {
        let i = r * self.d_in + c;
        if (self.signs[i / 32] >> (i % 32)) & 1 == 1 {
            1.0
        } else {
            -1.0
        }
    }

    /// Dequantizes into the model's `(d_in, d_out)` weight orientation.
    pub fn dequantize(&self) -> Matrix {
        let mut w = Matrix::zeros(self.d_in, self.d_out);
        for r in 0..self.d_out {
            let a = self.scale_of_row(r);
            for c in 0..self.d_in {
                w.set(c, r, a * self.sign_at(r, c));
            }
        }
        w
    }

    /// Exact storage footprint in bytes (scales counted as FP16).
    pub fn packed_bytes(&self) -> usize {
        (self.d_in * self.d_out).div_ceil(8) + self.scales.len() * 2
    }

    /// FP16 bytes of the uncompressed equivalent.
    pub fn fp16_bytes(&self) -> usize {
        self.d_in * self.d_out * 2
    }

    /// Serializes the packed payload (for the lossless stage).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.packed_bytes() + 8);
        for w in &self.signs {
            out.extend_from_slice(&w.to_le_bytes());
        }
        for s in &self.scales {
            // bf16-style truncation, matching CompressedMatrix::to_bytes.
            out.extend_from_slice(&((s.to_bits() >> 16) as u16).to_le_bytes());
        }
        out
    }
}

/// One precision band of a [`LowRankMatrix`]: `rank` singular directions
/// of the (residual) delta, both factors group-quantized at `bits`.
///
/// `p` stores `Uᵣ·diag(Sᵣ)` transposed — one stored row per singular
/// direction of length `d_in` — and `q` stores `Vᵣᵀ` the same way with
/// rows of length `d_out`, so every stored row has uniform magnitude (one
/// singular vector scaled by one σ) and group quantization fits it well.
#[derive(Debug, Clone, PartialEq)]
pub struct LowRankBand {
    /// Quantized left factor (stored rows = rank, columns = `d_in`).
    pub p: CompressedMatrix,
    /// Quantized right factor (stored rows = rank, columns = `d_out`).
    pub q: CompressedMatrix,
}

impl LowRankBand {
    /// Bits per value of the band's factors.
    pub fn bits(&self) -> u32 {
        self.p.spec.bits
    }

    /// Number of singular directions the band carries.
    pub fn rank(&self) -> usize {
        self.p.d_out
    }

    /// The band's contribution in `(d_in, d_out)` weight orientation.
    pub fn dequantize(&self) -> Matrix {
        // p.dequantize() -> (d_in, rank) = P; q.dequantize() -> (d_out, rank).
        self.p.dequantize().matmul_nt(&self.q.dequantize())
    }
}

/// A Delta-CoMe-packed matrix: mixed-precision quantized low-rank bands,
/// fitted with error feedback (band `k+1` approximates the residual left
/// by bands `1..=k`, including their quantization error).
#[derive(Debug, Clone, PartialEq)]
pub struct LowRankMatrix {
    /// Input dimension.
    pub d_in: usize,
    /// Output dimension.
    pub d_out: usize,
    /// Bands in fitting order (highest-precision first by convention).
    pub bands: Vec<LowRankBand>,
}

/// Group size used when quantizing low-rank factors.
const BAND_GROUP: usize = 16;

/// Upper bound on low-rank bands per layer. Enforced symmetrically at
/// construction ([`LowRankMatrix::from_delta`]) and decode, so a value
/// that encodes always decodes.
pub const MAX_BANDS: usize = 64;

impl LowRankMatrix {
    /// Packs a delta given in `(d_in, d_out)` weight orientation.
    ///
    /// `bands` lists `(bits, rank)` pairs, e.g. `[(8, 2), (3, 4), (2, 8)]`.
    /// Ranks are clamped to the delta's spectrum; a band whose quantized
    /// fit would *increase* the residual Frobenius norm is dropped, which
    /// makes reconstruction error monotone non-increasing in the band
    /// budget by construction.
    ///
    /// # Panics
    ///
    /// Panics if any band's bits are outside `2..=8` or more than
    /// [`MAX_BANDS`] bands are requested.
    pub fn from_delta(delta: &Matrix, bands: &[(u32, usize)]) -> Self {
        assert!(
            bands.len() <= MAX_BANDS,
            "at most {MAX_BANDS} low-rank bands per layer"
        );
        let (d_in, d_out) = delta.shape();
        let mut residual = delta.clone();
        let mut fitted = Vec::new();
        for &(bits, rank) in bands {
            let spec = QuantSpec::new(bits, BAND_GROUP);
            let svd = svd_thin(&residual);
            let r = rank.min(svd.rank());
            if r == 0 {
                continue;
            }
            // Pᵀ rows: u_j * σ_j over the input dimension.
            let mut pt = Matrix::zeros(r, d_in);
            for j in 0..r {
                let sj = svd.s[j];
                for i in 0..d_in {
                    pt.set(j, i, svd.u.get(i, j) * sj);
                }
            }
            // Vᵀ rows over the output dimension.
            let mut qt = Matrix::zeros(r, d_out);
            for j in 0..r {
                for i in 0..d_out {
                    qt.set(j, i, svd.vt.get(j, i));
                }
            }
            let band = LowRankBand {
                p: quantize_rows(&pt, spec),
                q: quantize_rows(&qt, spec),
            };
            let next = residual.sub(&band.dequantize());
            // Rate-distortion guard: only spend bytes on bands that
            // strictly reduce the residual (a zero residual stores
            // nothing, and a band that makes things worse is dropped).
            if next.frob_norm() < residual.frob_norm() {
                residual = next;
                fitted.push(band);
            }
        }
        LowRankMatrix {
            d_in,
            d_out,
            bands: fitted,
        }
    }

    /// Dequantizes into the model's `(d_in, d_out)` weight orientation.
    pub fn dequantize(&self) -> Matrix {
        let mut w = Matrix::zeros(self.d_in, self.d_out);
        for band in &self.bands {
            w.add_assign(&band.dequantize());
        }
        w
    }

    /// Exact storage footprint in bytes (factor scales counted as FP16).
    pub fn packed_bytes(&self) -> usize {
        self.bands
            .iter()
            .map(|b| b.p.packed_bytes() + b.q.packed_bytes())
            .sum()
    }

    /// FP16 bytes of the uncompressed equivalent.
    pub fn fp16_bytes(&self) -> usize {
        self.d_in * self.d_out * 2
    }

    /// Serializes the packed payload (for the lossless stage).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for band in &self.bands {
            out.extend(band.p.to_bytes());
            out.extend(band.q.to_bytes());
        }
        out
    }
}

/// Round-to-nearest group quantization of a dense matrix, stored row-major
/// (stored rows = `m.rows()`).
fn quantize_rows(m: &Matrix, spec: QuantSpec) -> CompressedMatrix {
    let mut levels = Vec::with_capacity(m.len());
    let mut scales = Vec::new();
    for r in 0..m.rows() {
        let (l, s) = quantize_slice(m.row(r), spec);
        levels.extend(l);
        scales.extend(s);
    }
    CompressedMatrix::from_dense(m.rows(), m.cols(), &levels, scales, spec)
}

/// One packed linear-layer delta, in whichever format its codec emits.
///
/// This is the layer-level currency of the method zoo: [`CompressedDelta`]
/// maps layer names to `PackedLayer`s, the wire/`.dza` formats tag each
/// record with its variant, and byte accounting (what the serving cost
/// model charges for swap-ins) is uniform across formats.
#[derive(Debug, Clone, PartialEq)]
pub enum PackedLayer {
    /// Group-quantized (optionally 2:4-sparse) levels — the starred
    /// pipeline and the AWQ/SparseGPT baselines.
    Quant(CompressedMatrix),
    /// BitDelta-style 1-bit sign/scale.
    Sign(SignMatrix),
    /// Delta-CoMe-style mixed-precision low-rank bands.
    LowRank(LowRankMatrix),
}

impl PackedLayer {
    /// Input dimension.
    pub fn d_in(&self) -> usize {
        match self {
            PackedLayer::Quant(m) => m.d_in,
            PackedLayer::Sign(m) => m.d_in,
            PackedLayer::LowRank(m) => m.d_in,
        }
    }

    /// Output dimension.
    pub fn d_out(&self) -> usize {
        match self {
            PackedLayer::Quant(m) => m.d_out,
            PackedLayer::Sign(m) => m.d_out,
            PackedLayer::LowRank(m) => m.d_out,
        }
    }

    /// Dequantizes into the model's `(d_in, d_out)` weight orientation.
    pub fn dequantize(&self) -> Matrix {
        match self {
            PackedLayer::Quant(m) => m.dequantize(),
            PackedLayer::Sign(m) => m.dequantize(),
            PackedLayer::LowRank(m) => m.dequantize(),
        }
    }

    /// Exact storage footprint in bytes.
    pub fn packed_bytes(&self) -> usize {
        match self {
            PackedLayer::Quant(m) => m.packed_bytes(),
            PackedLayer::Sign(m) => m.packed_bytes(),
            PackedLayer::LowRank(m) => m.packed_bytes(),
        }
    }

    /// FP16 bytes of the uncompressed equivalent.
    pub fn fp16_bytes(&self) -> usize {
        match self {
            PackedLayer::Quant(m) => m.fp16_bytes(),
            PackedLayer::Sign(m) => m.fp16_bytes(),
            PackedLayer::LowRank(m) => m.fp16_bytes(),
        }
    }

    /// Serializes the packed payload (for the lossless stage).
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            PackedLayer::Quant(m) => m.to_bytes(),
            PackedLayer::Sign(m) => m.to_bytes(),
            PackedLayer::LowRank(m) => m.to_bytes(),
        }
    }

    /// The quantized form, if this layer uses it (the SBMM serving
    /// kernels consume this representation directly).
    pub fn as_quant(&self) -> Option<&CompressedMatrix> {
        match self {
            PackedLayer::Quant(m) => Some(m),
            _ => None,
        }
    }

    /// The codec family this layer's format belongs to — what `.dza`
    /// tensor headers record, so a tensor's record format is inspectable
    /// without decoding its page (independently of the artifact-level
    /// codec, which may differ in mixed-format artifacts).
    pub fn codec_id(&self) -> CodecId {
        match self {
            PackedLayer::Quant(_) => CodecId::SparseGptStar,
            PackedLayer::Sign(_) => CodecId::BitDelta,
            PackedLayer::LowRank(_) => CodecId::DeltaCome,
        }
    }
}

/// A delta-compression method: turns a `(base, finetuned)` pair into a
/// [`CompressedDelta`] artifact plus the reconstructed servable
/// parameters.
///
/// Codecs that need no activation calibration ignore `calib`.
pub trait DeltaCodec {
    /// Stable codec identifier (recorded in wire records and `.dza`
    /// tensor headers).
    fn id(&self) -> CodecId;

    /// Configuration-bearing label for reports, e.g. `"bitdelta-1bit/row"`.
    fn label(&self) -> String;

    /// Compresses the delta of `finetuned` against `base`.
    fn compress(
        &self,
        base: &Params,
        finetuned: &Params,
        calib: &[Vec<usize>],
    ) -> (CompressedDelta, Params);
}

/// The paper's SparseGPT-starred ΔCompress pipeline behind the trait.
#[derive(Debug, Clone, Copy)]
pub struct SparseGptCodec {
    /// Full pipeline configuration.
    pub config: DeltaCompressConfig,
}

impl SparseGptCodec {
    /// The `Nbit★` configuration.
    pub fn starred(bits: u32) -> Self {
        SparseGptCodec {
            config: DeltaCompressConfig::starred(bits),
        }
    }
}

impl DeltaCodec for SparseGptCodec {
    fn id(&self) -> CodecId {
        CodecId::SparseGptStar
    }

    fn label(&self) -> String {
        format!(
            "sparsegpt-{}bit{}",
            self.config.bits,
            if self.config.sparse24 { "*" } else { "" }
        )
    }

    fn compress(
        &self,
        base: &Params,
        finetuned: &Params,
        calib: &[Vec<usize>],
    ) -> (CompressedDelta, Params) {
        delta_compress(base, finetuned, calib, self.config)
    }
}

/// Shared driver for calibration-free codecs: packs each linear layer's
/// delta with `pack`, reconstructs `base + dequantize(packed)`, and
/// carries the FP16 rest.
fn compress_direct(
    base: &Params,
    finetuned: &Params,
    codec: CodecId,
    config: DeltaCompressConfig,
    pack: impl Fn(&Matrix) -> PackedLayer,
) -> (CompressedDelta, Params) {
    assert_eq!(base.config, finetuned.config, "model config mismatch");
    let mut layers = BTreeMap::new();
    let mut reconstructed = finetuned.clone();
    for name in base.linear_layer_names() {
        let w_b = base.get(&name).expect("linear exists");
        let w_f = finetuned.get(&name).expect("linear exists");
        let packed = pack(&w_f.sub(w_b));
        reconstructed.set(&name, w_b.add(&packed.dequantize()));
        layers.insert(name, packed);
    }
    let report = size_report_for(base, &layers, config.lossless);
    let rest = collect_rest(finetuned, &layers);
    (
        CompressedDelta {
            layers,
            rest,
            codec,
            config,
            report,
        },
        reconstructed,
    )
}

/// BitDelta-style codec: 1-bit signs plus L2-optimal scales.
#[derive(Debug, Clone, Copy)]
pub struct BitDeltaCodec {
    /// Scale granularity (the codec's only "bit budget" knob).
    pub scope: SignScope,
    /// Run the optional lossless stage when reporting sizes.
    pub lossless: bool,
}

impl BitDeltaCodec {
    /// BitDelta with one scale per matrix (the original formulation).
    pub fn per_matrix() -> Self {
        BitDeltaCodec {
            scope: SignScope::PerMatrix,
            lossless: false,
        }
    }

    /// BitDelta with one scale per output row.
    pub fn per_row() -> Self {
        BitDeltaCodec {
            scope: SignScope::PerRow,
            lossless: false,
        }
    }

    fn placeholder_config(&self) -> DeltaCompressConfig {
        DeltaCompressConfig {
            bits: 1,
            group_size: 1,
            sparse24: false,
            damp: 0.0,
            lossless: self.lossless,
        }
    }
}

impl DeltaCodec for BitDeltaCodec {
    fn id(&self) -> CodecId {
        CodecId::BitDelta
    }

    fn label(&self) -> String {
        match self.scope {
            SignScope::PerMatrix => "bitdelta-1bit/matrix".into(),
            SignScope::PerRow => "bitdelta-1bit/row".into(),
        }
    }

    fn compress(
        &self,
        base: &Params,
        finetuned: &Params,
        _calib: &[Vec<usize>],
    ) -> (CompressedDelta, Params) {
        let scope = self.scope;
        compress_direct(
            base,
            finetuned,
            CodecId::BitDelta,
            self.placeholder_config(),
            |delta| PackedLayer::Sign(SignMatrix::from_delta(delta, scope)),
        )
    }
}

/// Delta-CoMe-style codec: mixed-precision low-rank bands per layer.
#[derive(Debug, Clone)]
pub struct DeltaComeCodec {
    /// `(bits, rank)` per band, highest precision first.
    pub bands: Vec<(u32, usize)>,
    /// Run the optional lossless stage when reporting sizes.
    pub lossless: bool,
}

impl DeltaComeCodec {
    /// A custom band allocation.
    pub fn with_bands(bands: Vec<(u32, usize)>) -> Self {
        DeltaComeCodec {
            bands,
            lossless: false,
        }
    }

    /// The low bit budget: 8/3/2-bit bands over ranks 2/4/8.
    pub fn low_budget() -> Self {
        Self::with_bands(vec![(8, 2), (3, 4), (2, 8)])
    }

    /// The high bit budget: 8/3/2-bit bands over ranks 4/8/16.
    pub fn high_budget() -> Self {
        Self::with_bands(vec![(8, 4), (3, 8), (2, 16)])
    }

    fn placeholder_config(&self) -> DeltaCompressConfig {
        DeltaCompressConfig {
            bits: self.bands.iter().map(|&(b, _)| b).max().unwrap_or(2),
            group_size: BAND_GROUP,
            sparse24: false,
            damp: 0.0,
            lossless: self.lossless,
        }
    }
}

impl DeltaCodec for DeltaComeCodec {
    fn id(&self) -> CodecId {
        CodecId::DeltaCome
    }

    fn label(&self) -> String {
        let bands: Vec<String> = self
            .bands
            .iter()
            .map(|(b, r)| format!("{b}b.r{r}"))
            .collect();
        format!("delta-come-{}", bands.join("+"))
    }

    fn compress(
        &self,
        base: &Params,
        finetuned: &Params,
        _calib: &[Vec<usize>],
    ) -> (CompressedDelta, Params) {
        let bands = self.bands.clone();
        compress_direct(
            base,
            finetuned,
            CodecId::DeltaCome,
            self.placeholder_config(),
            move |delta| PackedLayer::LowRank(LowRankMatrix::from_delta(delta, &bands)),
        )
    }
}

/// The default method zoo swept by `exp bench-compress`: every codec at
/// two bit budgets.
pub fn codec_zoo() -> Vec<Box<dyn DeltaCodec>> {
    vec![
        Box::new(SparseGptCodec::starred(4)),
        Box::new(SparseGptCodec::starred(2)),
        Box::new(BitDeltaCodec::per_matrix()),
        Box::new(BitDeltaCodec::per_row()),
        Box::new(DeltaComeCodec::low_budget()),
        Box::new(DeltaComeCodec::high_budget()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dz_tensor::Rng;

    fn random_delta(d_in: usize, d_out: usize, seed: u64) -> Matrix {
        let mut rng = Rng::seeded(seed);
        Matrix::randn(d_in, d_out, 0.01, &mut rng)
    }

    #[test]
    fn codec_ids_round_trip_and_are_frozen() {
        for id in [
            CodecId::SparseGptStar,
            CodecId::BitDelta,
            CodecId::DeltaCome,
        ] {
            assert_eq!(CodecId::from_u8(id.as_u8()), Some(id));
        }
        assert_eq!(CodecId::SparseGptStar.as_u8(), 0);
        assert_eq!(CodecId::BitDelta.as_u8(), 1);
        assert_eq!(CodecId::DeltaCome.as_u8(), 2);
        assert_eq!(CodecId::from_u8(7), None);
    }

    #[test]
    fn sign_matrix_reconstruction_never_exceeds_delta_energy() {
        // The per-scope scale is the L2 minimizer, and a = 0 recovers the
        // raw delta energy, so the reconstruction error is bounded by it.
        for (scope, seed) in [(SignScope::PerMatrix, 1u64), (SignScope::PerRow, 2)] {
            let delta = random_delta(24, 12, seed);
            let sm = SignMatrix::from_delta(&delta, scope);
            let err = delta.sub(&sm.dequantize()).frob_norm();
            assert!(err <= delta.frob_norm() + 1e-6, "{scope:?}: {err}");
        }
    }

    #[test]
    fn per_row_scales_fit_at_least_as_well_as_per_matrix() {
        let mut rng = Rng::seeded(3);
        // Rows with very different magnitudes: per-row must win.
        let mut delta = Matrix::randn(16, 8, 0.01, &mut rng);
        for c in 0..16 {
            let v = delta.get(c, 0) * 50.0;
            delta.set(c, 0, v);
        }
        let row = SignMatrix::from_delta(&delta, SignScope::PerRow);
        let mat = SignMatrix::from_delta(&delta, SignScope::PerMatrix);
        let err_row = delta.sub(&row.dequantize()).frob_norm();
        let err_mat = delta.sub(&mat.dequantize()).frob_norm();
        assert!(
            err_row <= err_mat + 1e-6,
            "row {err_row} vs matrix {err_mat}"
        );
        assert!(row.packed_bytes() > mat.packed_bytes());
    }

    #[test]
    fn sign_matrix_packs_at_least_8x_for_wide_rows() {
        let delta = random_delta(64, 64, 4);
        let sm = SignMatrix::from_delta(&delta, SignScope::PerRow);
        let ratio = sm.fp16_bytes() as f64 / sm.packed_bytes() as f64;
        assert!(ratio >= 8.0, "ratio {ratio}");
        let pm = SignMatrix::from_delta(&delta, SignScope::PerMatrix);
        assert!(pm.fp16_bytes() as f64 / pm.packed_bytes() as f64 > ratio);
    }

    #[test]
    fn low_rank_error_monotone_in_band_budget() {
        let delta = random_delta(32, 24, 5);
        let budgets: Vec<Vec<(u32, usize)>> = vec![
            vec![(8, 2)],
            vec![(8, 2), (3, 4)],
            vec![(8, 2), (3, 4), (2, 8)],
            vec![(8, 2), (3, 4), (2, 8), (2, 16)],
        ];
        let mut prev = f32::MAX;
        for bands in &budgets {
            let lr = LowRankMatrix::from_delta(&delta, bands);
            let err = delta.sub(&lr.dequantize()).frob_norm();
            assert!(err <= prev + 1e-5, "bands {bands:?}: {err} > {prev}");
            prev = err;
        }
    }

    #[test]
    fn low_rank_captures_a_genuinely_low_rank_delta() {
        let mut rng = Rng::seeded(6);
        let u = Matrix::randn(20, 2, 0.1, &mut rng);
        let v = Matrix::randn(2, 16, 0.1, &mut rng);
        let delta = u.matmul(&v);
        let lr = LowRankMatrix::from_delta(&delta, &[(8, 2)]);
        let rel = delta.sub(&lr.dequantize()).frob_norm() / delta.frob_norm();
        assert!(rel < 0.05, "relative error {rel}");
        assert!(lr.packed_bytes() < delta.len() * 2 / 4);
    }

    #[test]
    fn low_rank_zero_delta_is_free_and_exact() {
        let delta = Matrix::zeros(16, 16);
        let lr = LowRankMatrix::from_delta(&delta, &[(8, 2), (2, 4)]);
        assert_eq!(lr.dequantize(), delta);
        // The guard drops bands that cannot reduce an already-zero
        // residual, so nothing is stored.
        assert!(lr.bands.is_empty());
        assert_eq!(lr.packed_bytes(), 0);
    }

    #[test]
    fn packed_layer_accessors_are_consistent() {
        let delta = random_delta(16, 12, 7);
        let layers = [
            PackedLayer::Sign(SignMatrix::from_delta(&delta, SignScope::PerRow)),
            PackedLayer::LowRank(LowRankMatrix::from_delta(&delta, &[(8, 2), (2, 4)])),
        ];
        for layer in &layers {
            assert_eq!(layer.d_in(), 16);
            assert_eq!(layer.d_out(), 12);
            assert_eq!(layer.fp16_bytes(), 16 * 12 * 2);
            assert!(layer.packed_bytes() > 0);
            assert!(layer.packed_bytes() < layer.fp16_bytes());
            assert_eq!(layer.dequantize().shape(), (16, 12));
            assert!(layer.as_quant().is_none());
            assert!(!layer.to_bytes().is_empty());
        }
    }

    #[test]
    fn codec_zoo_has_three_codecs_at_two_budgets() {
        let zoo = codec_zoo();
        assert_eq!(zoo.len(), 6);
        let mut by_id: BTreeMap<CodecId, usize> = BTreeMap::new();
        for codec in &zoo {
            *by_id.entry(codec.id()).or_default() += 1;
        }
        assert_eq!(by_id.len(), 3, "three distinct codecs");
        assert!(by_id.values().all(|&n| n >= 2), "two budgets each");
        // Labels are unique (they encode the budget).
        let labels: std::collections::BTreeSet<String> = zoo.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), zoo.len());
    }
}
