//! Baseline compressors the paper compares against.
//!
//! * **SparseGPT-direct** — the identical OBS solver applied to the
//!   *fine-tuned weights themselves* rather than the delta. The paper's
//!   Table 1 shows this degrades accuracy substantially at the same
//!   sparsity/bit budget; the wider, outlier-laden weight distribution is
//!   simply harder to fit on a coarse grid.
//! * **AWQ** — activation-aware weight quantization: per-input-channel
//!   scales chosen by a small grid search to protect salient channels, then
//!   round-to-nearest 4-bit group quantization. No sparsity, no error
//!   propagation.

use crate::calib::{channel_mean_abs, inputs_for};
use crate::obs::{compress_matrix, hessian_from_inputs, output_mse, ObsConfig};
use crate::pack::CompressedMatrix;
use crate::pipeline::SizeReport;
use crate::quant::{quantize_slice, QuantSpec};
use dz_model::transformer::Params;
use dz_tensor::Matrix;
use std::collections::BTreeMap;

/// A directly compressed model (weights, not deltas).
#[derive(Debug, Clone)]
pub struct CompressedModel {
    /// Packed linear layers keyed by stable name.
    pub layers: BTreeMap<String, CompressedMatrix>,
    /// Byte accounting (same semantics as the delta report).
    pub report: SizeReport,
    /// The reconstructed, servable parameters.
    pub params: Params,
}

fn report_for(base: &Params, layers: &BTreeMap<String, CompressedMatrix>) -> SizeReport {
    let full = base.fp16_bytes();
    let compressed: usize = layers.values().map(|c| c.packed_bytes()).sum();
    let linear_fp16: usize = layers.values().map(|c| c.fp16_bytes()).sum();
    SizeReport {
        compressed_linear_bytes: compressed,
        uncompressed_rest_bytes: full - linear_fp16,
        full_fp16_bytes: full,
        lossless_linear_bytes: None,
    }
}

/// SparseGPT applied directly to the fine-tuned model weights.
///
/// Uses the same layer-by-layer propagation as ΔCompress, except the
/// compressed object is `w_f` itself and reconstruction does not re-add a
/// base (there is none).
pub fn sparsegpt_direct(
    finetuned: &Params,
    calib: &[Vec<usize>],
    bits: u32,
    group_size: usize,
) -> CompressedModel {
    let obs_cfg = ObsConfig {
        spec: QuantSpec::new(bits, group_size),
        sparse24: true,
        damp: 0.05,
    };
    let mut work = finetuned.clone();
    let mut layers = BTreeMap::new();
    for name in finetuned.linear_layer_names() {
        let x = inputs_for(&work, calib, &name);
        let h = hessian_from_inputs(&[&x]);
        let w_f = finetuned.get(&name).expect("linear exists");
        let res = compress_matrix(w_f, &h, &obs_cfg);
        work.set(&name, res.reconstructed.clone());
        layers.insert(name, res.packed);
    }
    let report = report_for(finetuned, &layers);
    CompressedModel {
        layers,
        report,
        params: work,
    }
}

/// One AWQ-scaled, RTN-quantized linear layer; returns `(packed, rec, s)`.
fn awq_layer(
    w: &Matrix, // (d_in, d_out)
    x: &Matrix, // (tokens, d_in)
    spec: QuantSpec,
) -> (CompressedMatrix, Matrix, Vec<f32>) {
    let act = channel_mean_abs(x);
    let refs = [x];
    let mut best: Option<(f64, CompressedMatrix, Matrix, Vec<f32>)> = None;
    for alpha in [0.0f32, 0.25, 0.5, 0.75, 1.0] {
        // Per-channel scale s_c = act_c^alpha, normalized to unit geomean so
        // the overall weight magnitude stays put.
        let mut s: Vec<f32> = act.iter().map(|a| a.max(1e-5).powf(alpha)).collect();
        let log_mean = s.iter().map(|v| (*v as f64).ln()).sum::<f64>() / s.len() as f64;
        let norm = (log_mean).exp() as f32;
        for v in &mut s {
            *v /= norm;
        }
        // Scale rows of W (input channels), quantize, and fold the inverse
        // scale into the reconstruction.
        let mut ws = w.clone();
        for (c, &sc) in s.iter().enumerate() {
            for j in 0..ws.cols() {
                ws.set(c, j, ws.get(c, j) * sc);
            }
        }
        // Quantize output-major.
        let wst = ws.transpose();
        let mut levels = Vec::with_capacity(wst.len());
        let mut scales = Vec::new();
        for r in 0..wst.rows() {
            let (l, sc) = quantize_slice(wst.row(r), spec);
            levels.extend(l);
            scales.extend(sc);
        }
        let packed = CompressedMatrix::from_dense(wst.rows(), wst.cols(), &levels, scales, spec);
        let mut rec = packed.dequantize(); // (d_in, d_out), still scaled.
        for (c, &sc) in s.iter().enumerate() {
            for j in 0..rec.cols() {
                rec.set(c, j, rec.get(c, j) / sc);
            }
        }
        let mse = output_mse(w, &rec, &refs);
        if best.as_ref().is_none_or(|(b, _, _, _)| mse < *b) {
            best = Some((mse, packed, rec, s));
        }
    }
    let (_, packed, rec, s) = best.expect("grid search is non-empty");
    (packed, rec, s)
}

/// AWQ 4-bit quantization of a fine-tuned model (no sparsity).
pub fn awq_quantize(
    finetuned: &Params,
    calib: &[Vec<usize>],
    bits: u32,
    group_size: usize,
) -> CompressedModel {
    let spec = QuantSpec::new(bits, group_size);
    let mut out = finetuned.clone();
    let mut layers = BTreeMap::new();
    let mut extra_scale_bytes = 0usize;
    for name in finetuned.linear_layer_names() {
        let x = inputs_for(finetuned, calib, &name);
        let w = finetuned.get(&name).expect("linear exists");
        let (packed, rec, s) = awq_layer(w, &x, spec);
        extra_scale_bytes += s.len() * 2; // Per-channel scales at FP16.
        out.set(&name, rec);
        layers.insert(name, packed);
    }
    let mut report = report_for(finetuned, &layers);
    report.compressed_linear_bytes += extra_scale_bytes;
    CompressedModel {
        layers,
        report,
        params: out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calib::calibration_set;
    use dz_model::tasks::Corpus;
    use dz_model::train::{pretrain, TrainConfig};
    use dz_model::transformer::test_config;
    use dz_tensor::Rng;

    fn trained_model() -> Params {
        let cfg = test_config();
        let mut rng = Rng::seeded(1);
        let mut p = Params::init(cfg, &mut rng);
        let corpus = Corpus::new(cfg.max_seq);
        pretrain(&mut p, &corpus, TrainConfig::pretrain(60));
        p
    }

    #[test]
    fn sparsegpt_direct_compresses_all_linears() {
        let model = trained_model();
        let corpus = Corpus::new(model.config.max_seq);
        let calib = calibration_set(&corpus, 4, 2);
        let cm = sparsegpt_direct(&model, &calib, 4, 16);
        assert_eq!(cm.layers.len(), model.linear_layer_names().len());
        assert!(cm.report.model_ratio() > 1.0);
        // Weights actually changed (lossy) and are 2:4 sparse.
        let w = &cm.params.layers[0].wq;
        assert!(w.max_abs_diff(&model.layers[0].wq) > 0.0);
        assert!(w.zero_fraction() >= 0.45, "{}", w.zero_fraction());
    }

    #[test]
    fn awq_keeps_outputs_closer_than_plain_rtn() {
        let model = trained_model();
        let corpus = Corpus::new(model.config.max_seq);
        let calib = calibration_set(&corpus, 4, 3);
        let name = "layer0.wq";
        let x = inputs_for(&model, &calib, name);
        let w = model.get(name).unwrap();
        let spec = QuantSpec::new(2, 16);
        let (_, rec_awq, _) = awq_layer(w, &x, spec);
        // Plain RTN = alpha 0 path only.
        let wst = w.transpose();
        let mut levels = Vec::new();
        let mut scales = Vec::new();
        for r in 0..wst.rows() {
            let (l, s) = quantize_slice(wst.row(r), spec);
            levels.extend(l);
            scales.extend(s);
        }
        let rtn = CompressedMatrix::from_dense(wst.rows(), wst.cols(), &levels, scales, spec)
            .dequantize();
        let refs = [&x];
        let awq_mse = output_mse(w, &rec_awq, &refs);
        let rtn_mse = output_mse(w, &rtn, &refs);
        assert!(
            awq_mse <= rtn_mse * 1.0001,
            "awq {awq_mse} should be <= rtn {rtn_mse}"
        );
    }

    #[test]
    fn awq_ratio_is_lower_than_sparse_configs() {
        // AWQ has no sparsity: its ratio must trail the 2:4 + 4bit config,
        // mirroring Table 1's AWQ column.
        let model = trained_model();
        let corpus = Corpus::new(model.config.max_seq);
        let calib = calibration_set(&corpus, 4, 5);
        let awq = awq_quantize(&model, &calib, 4, 16);
        let sgpt = sparsegpt_direct(&model, &calib, 4, 16);
        assert!(awq.report.model_ratio() < sgpt.report.model_ratio());
        assert!(awq.report.model_ratio() > 1.0);
    }

    #[test]
    fn awq_params_stay_finite() {
        let model = trained_model();
        let corpus = Corpus::new(model.config.max_seq);
        let calib = calibration_set(&corpus, 3, 7);
        let awq = awq_quantize(&model, &calib, 4, 16);
        awq.params.for_each(|name, m| {
            assert!(m.all_finite(), "{name} has non-finite values");
        });
    }
}
