//! Symmetric group quantization.
//!
//! Weights are quantized in groups of `group_size` consecutive elements
//! along the input dimension, each group sharing one FP16 scale. The grid is
//! symmetric around zero with `2^(bits-1) - 1` positive levels (so 2-bit
//! uses `{-1, 0, +1}` — exactly the regime the paper pushes deltas to).
//!
//! The key empirical point the paper makes (Figure 3) is that *deltas* have
//! a much tighter value distribution than weights, so the same bit budget
//! yields a denser grid and a smaller error. The tests quantify that here.

/// Quantization grid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuantSpec {
    /// Bits per value (2..=8).
    pub bits: u32,
    /// Elements sharing one scale.
    pub group_size: usize,
}

impl QuantSpec {
    /// Creates a spec.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `2..=8` or `group_size == 0`.
    pub fn new(bits: u32, group_size: usize) -> Self {
        assert!((2..=8).contains(&bits), "bits must be in 2..=8");
        assert!(group_size > 0, "group_size must be positive");
        QuantSpec { bits, group_size }
    }

    /// Largest positive level of the symmetric grid.
    pub fn qmax(&self) -> i32 {
        (1 << (self.bits - 1)) - 1
    }
}

/// Scale for one group: `max|w| / qmax`, with a floor to avoid div-by-zero.
pub fn group_scale(values: &[f32], qmax: i32) -> f32 {
    let max_abs = values.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    if max_abs == 0.0 {
        1.0
    } else {
        max_abs / qmax as f32
    }
}

/// Quantizes one value to the integer grid.
#[inline]
pub fn quantize_value(v: f32, scale: f32, qmax: i32) -> i32 {
    let q = (v / scale).round() as i32;
    q.clamp(-qmax, qmax)
}

/// Dequantizes an integer level.
#[inline]
pub fn dequantize_value(q: i32, scale: f32) -> f32 {
    q as f32 * scale
}

/// Round-to-nearest quantization of a whole slice with per-group scales.
///
/// Returns `(levels, scales)`; `levels[i]` belongs to group `i / group_size`.
pub fn quantize_slice(values: &[f32], spec: QuantSpec) -> (Vec<i32>, Vec<f32>) {
    let qmax = spec.qmax();
    let n_groups = values.len().div_ceil(spec.group_size);
    let mut scales = Vec::with_capacity(n_groups);
    let mut levels = Vec::with_capacity(values.len());
    for g in 0..n_groups {
        let start = g * spec.group_size;
        let end = (start + spec.group_size).min(values.len());
        let scale = group_scale(&values[start..end], qmax);
        scales.push(scale);
        for &v in &values[start..end] {
            levels.push(quantize_value(v, scale, qmax));
        }
    }
    (levels, scales)
}

/// Reconstructs a slice from levels and scales.
pub fn dequantize_slice(levels: &[i32], scales: &[f32], group_size: usize) -> Vec<f32> {
    levels
        .iter()
        .enumerate()
        .map(|(i, &q)| dequantize_value(q, scales[i / group_size]))
        .collect()
}

/// Mean squared quantization error of round-to-nearest on a slice.
pub fn rtn_mse(values: &[f32], spec: QuantSpec) -> f64 {
    let (levels, scales) = quantize_slice(values, spec);
    let rec = dequantize_slice(&levels, &scales, spec.group_size);
    values
        .iter()
        .zip(rec.iter())
        .map(|(a, b)| {
            let d = (a - b) as f64;
            d * d
        })
        .sum::<f64>()
        / values.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dz_tensor::Rng;

    #[test]
    fn qmax_per_bits() {
        assert_eq!(QuantSpec::new(2, 8).qmax(), 1);
        assert_eq!(QuantSpec::new(3, 8).qmax(), 3);
        assert_eq!(QuantSpec::new(4, 8).qmax(), 7);
        assert_eq!(QuantSpec::new(8, 8).qmax(), 127);
    }

    #[test]
    fn round_trip_error_bounded_by_half_step() {
        let mut rng = Rng::seeded(1);
        let values: Vec<f32> = (0..256).map(|_| rng.normal() * 0.1).collect();
        let spec = QuantSpec::new(4, 16);
        let (levels, scales) = quantize_slice(&values, spec);
        let rec = dequantize_slice(&levels, &scales, spec.group_size);
        for (g, chunk) in values.chunks(16).enumerate() {
            let scale = scales[g];
            for (i, v) in chunk.iter().enumerate() {
                let err = (v - rec[g * 16 + i]).abs();
                assert!(err <= scale * 0.5 + 1e-6, "err {err} > half-step {scale}");
            }
        }
    }

    #[test]
    fn zero_group_round_trips_exactly() {
        let values = vec![0.0f32; 32];
        let spec = QuantSpec::new(2, 8);
        let (levels, scales) = quantize_slice(&values, spec);
        assert!(levels.iter().all(|&q| q == 0));
        let rec = dequantize_slice(&levels, &scales, 8);
        assert_eq!(rec, values);
    }

    #[test]
    fn max_element_survives_exactly_at_grid_edge() {
        // The scale is chosen so the max-magnitude element maps to +-qmax.
        let values = vec![0.01, -0.5, 0.25, 0.1];
        let spec = QuantSpec::new(4, 4);
        let (levels, scales) = quantize_slice(&values, spec);
        assert_eq!(levels[1], -7);
        assert!((dequantize_value(levels[1], scales[0]) - (-0.5)).abs() < 1e-6);
    }

    #[test]
    fn narrow_distributions_quantize_better() {
        // The paper's Figure 3 insight: deltas (tight range) lose less than
        // weights (wide range, outliers) at the same bit width.
        let mut rng = Rng::seeded(2);
        let weights: Vec<f32> = (0..4096)
            .map(|i| {
                let v = rng.normal() * 0.05;
                // Inject strong outliers like real weight matrices have;
                // they blow up the group scale and wash out small weights.
                if i % 61 == 0 {
                    v + rng.normal().signum() * 1.5
                } else {
                    v
                }
            })
            .collect();
        let deltas: Vec<f32> = (0..4096).map(|_| rng.normal() * 0.01).collect();
        let spec = QuantSpec::new(4, 64);
        let w_rel = rtn_mse(&weights, spec)
            / weights.iter().map(|v| (*v as f64).powi(2)).sum::<f64>()
            * weights.len() as f64;
        let d_rel = rtn_mse(&deltas, spec)
            / deltas.iter().map(|v| (*v as f64).powi(2)).sum::<f64>()
            * deltas.len() as f64;
        assert!(
            d_rel < w_rel,
            "delta rel-MSE {d_rel} should beat weight rel-MSE {w_rel}"
        );
    }

    #[test]
    fn ragged_final_group_handled() {
        let values: Vec<f32> = (0..10).map(|i| i as f32 / 10.0).collect();
        let spec = QuantSpec::new(4, 4);
        let (levels, scales) = quantize_slice(&values, spec);
        assert_eq!(levels.len(), 10);
        assert_eq!(scales.len(), 3);
        let rec = dequantize_slice(&levels, &scales, 4);
        assert_eq!(rec.len(), 10);
    }

    #[test]
    #[should_panic(expected = "bits must be in 2..=8")]
    fn rejects_1_bit() {
        let _ = QuantSpec::new(1, 8);
    }
}
