//! ΔCompress — Algorithm 1 of the paper.
//!
//! For each linear layer, in forward order:
//!
//! 1. extract the delta `Δ = w_f - w_b`,
//! 2. compress `Δ` with the OBS solver calibrated on `X_n`, the inputs the
//!    layer sees under the *progressively reconstructed* model,
//! 3. reconstruct `ŵ = QM + w_b` and substitute it, so `X_{n+1}` for the
//!    next layer reflects compression error incurred so far.
//!
//! Step 3 is the paper's key departure from running SparseGPT on the model:
//! without re-adding the base weights the propagated activations collapse
//! (deltas are tiny) and calibration fails. The ablation test below
//! reproduces that effect.

use crate::calib::inputs_for;
use crate::codec::{CodecId, PackedLayer};
use crate::obs::{compress_matrix, hessian_from_inputs, ObsConfig};
use crate::quant::QuantSpec;
use dz_model::transformer::Params;
use std::collections::BTreeMap;

/// Configuration of the full ΔCompress pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeltaCompressConfig {
    /// Bits per delta weight (2 or 4 in the paper).
    pub bits: u32,
    /// Quantization group size along the input dimension.
    pub group_size: usize,
    /// Apply 2:4 structured sparsity (the paper's ★ configurations).
    pub sparse24: bool,
    /// Hessian damping fraction.
    pub damp: f32,
    /// Run the optional lossless stage and record its effect.
    pub lossless: bool,
}

impl DeltaCompressConfig {
    /// The paper's `Nbit★` configuration (N-bit + 50% structured sparsity).
    pub fn starred(bits: u32) -> Self {
        DeltaCompressConfig {
            bits,
            group_size: 16,
            sparse24: true,
            damp: 0.05,
            lossless: false,
        }
    }

    fn obs(&self) -> ObsConfig {
        ObsConfig {
            spec: QuantSpec::new(self.bits, self.group_size),
            sparse24: self.sparse24,
            damp: self.damp,
        }
    }
}

/// Byte-level accounting of one compressed artifact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeReport {
    /// Packed bytes of all compressed linear layers.
    pub compressed_linear_bytes: usize,
    /// FP16 bytes of everything left uncompressed (embeddings, norms, ...).
    pub uncompressed_rest_bytes: usize,
    /// FP16 bytes of the full model.
    pub full_fp16_bytes: usize,
    /// Bytes after the optional lossless stage (packed linears only).
    pub lossless_linear_bytes: Option<usize>,
}

impl SizeReport {
    /// Whole-model compression ratio (the paper's Table 1 metric): full
    /// FP16 size over compressed-linears + uncompressed-rest.
    pub fn model_ratio(&self) -> f64 {
        self.full_fp16_bytes as f64
            / (self.compressed_linear_bytes + self.uncompressed_rest_bytes) as f64
    }

    /// Delta-only compression ratio (what swapping cost scales with).
    pub fn delta_ratio(&self) -> f64 {
        let linear_fp16 = self.full_fp16_bytes - self.uncompressed_rest_bytes;
        linear_fp16 as f64 / self.compressed_linear_bytes.max(1) as f64
    }

    /// Ratio including the lossless stage, if it ran.
    pub fn lossless_delta_ratio(&self) -> Option<f64> {
        self.lossless_linear_bytes.map(|b| {
            let linear_fp16 = self.full_fp16_bytes - self.uncompressed_rest_bytes;
            linear_fp16 as f64 / b.max(1) as f64
        })
    }
}

/// A compressed model delta: packed per-layer matrices plus accounting.
///
/// Besides the packed linear-layer deltas, the artifact carries FP16 copies
/// of every parameter ΔCompress leaves uncompressed (embeddings, biases,
/// norms) — those change during fine-tuning too and must ship with the
/// delta. Their bytes are what `uncompressed_rest_bytes` accounts for.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedDelta {
    /// Packed delta per linear layer, keyed by stable parameter name.
    /// The layer format varies with the codec (see
    /// [`PackedLayer`]).
    pub layers: BTreeMap<String, PackedLayer>,
    /// FP16 parameters outside the compressed set, keyed by stable name.
    pub rest: BTreeMap<String, dz_tensor::Matrix>,
    /// The method-zoo codec that produced the delta.
    pub codec: CodecId,
    /// The configuration that produced it (only fully meaningful for the
    /// OBS pipeline; other codecs record nominal values).
    pub config: DeltaCompressConfig,
    /// Byte accounting.
    pub report: SizeReport,
}

impl CompressedDelta {
    /// Total packed bytes of the delta (what gets swapped at serving time).
    pub fn packed_bytes(&self) -> usize {
        self.report.compressed_linear_bytes
    }

    /// Serves as the on-disk payload for the lossless stage / disk model.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for cm in self.layers.values() {
            out.extend(cm.to_bytes());
        }
        out
    }

    /// Reconstructs full fine-tuned parameters: `base + dequant(delta)` for
    /// compressed layers, stored FP16 values for everything else.
    pub fn reconstruct(&self, base: &Params) -> Params {
        let mut out = base.clone();
        for (name, value) in &self.rest {
            out.set(name, value.clone());
        }
        for (name, cm) in &self.layers {
            let w = base
                .get(name)
                .expect("layer exists in base")
                .add(&cm.dequantize());
            out.set(name, w);
        }
        out
    }
}

/// Collects the FP16 parameters that ride along uncompressed; shared by
/// every method-zoo codec.
pub(crate) fn collect_rest(
    finetuned: &Params,
    compressed: &BTreeMap<String, PackedLayer>,
) -> BTreeMap<String, dz_tensor::Matrix> {
    let mut rest = BTreeMap::new();
    finetuned.for_each(|name, m| {
        if !compressed.contains_key(name) {
            rest.insert(name.to_string(), m.clone());
        }
    });
    rest
}

/// Byte accounting for a set of packed layers against a base model;
/// shared by every method-zoo codec.
pub(crate) fn size_report_for(
    base: &Params,
    layers: &BTreeMap<String, PackedLayer>,
    lossless: bool,
) -> SizeReport {
    let full = base.fp16_bytes();
    let compressed_linear: usize = layers.values().map(|c| c.packed_bytes()).sum();
    let linear_fp16: usize = layers.values().map(|c| c.fp16_bytes()).sum();
    let rest = full - linear_fp16;
    let lossless_linear = if lossless {
        let mut total = 0usize;
        for cm in layers.values() {
            total += dz_lossless::compress(&cm.to_bytes()).len();
        }
        Some(total)
    } else {
        None
    };
    SizeReport {
        compressed_linear_bytes: compressed_linear,
        uncompressed_rest_bytes: rest,
        full_fp16_bytes: full,
        lossless_linear_bytes: lossless_linear,
    }
}

/// Runs ΔCompress (Algorithm 1) and returns the compressed delta together
/// with the reconstructed (servable) parameters.
///
/// # Panics
///
/// Panics if `base` and `finetuned` have different shapes.
pub fn delta_compress(
    base: &Params,
    finetuned: &Params,
    calib: &[Vec<usize>],
    config: DeltaCompressConfig,
) -> (CompressedDelta, Params) {
    assert_eq!(base.config, finetuned.config, "model config mismatch");
    let obs_cfg = config.obs();
    // Work holds the progressively reconstructed model (Line 6-7 of Alg. 1).
    let mut work = finetuned.clone();
    let mut layers = BTreeMap::new();
    for name in base.linear_layer_names() {
        // X_n: inputs under the reconstructed-so-far model.
        let x = inputs_for(&work, calib, &name);
        let h = hessian_from_inputs(&[&x]);
        let w_b = base.get(&name).expect("linear exists");
        let w_f = finetuned.get(&name).expect("linear exists");
        let delta = w_f.sub(w_b);
        let res = compress_matrix(&delta, &h, &obs_cfg);
        // Reconstruct the weight so the next layer calibrates on realistic
        // activations.
        let w_hat = w_b.add(&res.reconstructed);
        work.set(&name, w_hat);
        layers.insert(name, PackedLayer::Quant(res.packed));
    }
    let report = size_report_for(base, &layers, config.lossless);
    let rest = collect_rest(finetuned, &layers);
    (
        CompressedDelta {
            layers,
            rest,
            codec: CodecId::SparseGptStar,
            config,
            report,
        },
        work,
    )
}

/// Ablation: ΔCompress *without* per-layer weight reconstruction — the
/// calibration activations are propagated through the raw deltas instead,
/// which the paper identifies as the failure mode (vanishing activations).
pub fn delta_compress_no_reconstruct(
    base: &Params,
    finetuned: &Params,
    calib: &[Vec<usize>],
    config: DeltaCompressConfig,
) -> (CompressedDelta, Params) {
    assert_eq!(base.config, finetuned.config, "model config mismatch");
    let obs_cfg = config.obs();
    // Delta-only model: activations vanish in deeper layers.
    let mut delta_model = finetuned.clone();
    {
        let base_t = base.tensors();
        for (dm, bm) in delta_model.tensors_mut().into_iter().zip(base_t) {
            *dm = dm.sub(bm);
        }
    }
    let mut layers = BTreeMap::new();
    let mut reconstructed = base.clone();
    for name in base.linear_layer_names() {
        let x = inputs_for(&delta_model, calib, &name);
        let h = hessian_from_inputs(&[&x]);
        let w_b = base.get(&name).expect("linear exists");
        let w_f = finetuned.get(&name).expect("linear exists");
        let delta = w_f.sub(w_b);
        let res = compress_matrix(&delta, &h, &obs_cfg);
        let w_hat = w_b.add(&res.reconstructed);
        reconstructed.set(&name, w_hat);
        layers.insert(name, PackedLayer::Quant(res.packed));
    }
    let report = size_report_for(base, &layers, config.lossless);
    let rest = collect_rest(finetuned, &layers);
    (
        CompressedDelta {
            layers,
            rest,
            codec: CodecId::SparseGptStar,
            config,
            report,
        },
        reconstructed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calib::calibration_set;
    use dz_model::tasks::{Corpus, SentimentTask};
    use dz_model::train::{finetune_fmt, pretrain, TrainConfig};
    use dz_model::transformer::test_config;
    use dz_tensor::Rng;

    fn trained_pair() -> (Params, Params) {
        let cfg = test_config();
        let mut rng = Rng::seeded(1);
        let mut base = Params::init(cfg, &mut rng);
        let corpus = Corpus::new(cfg.max_seq);
        pretrain(&mut base, &corpus, TrainConfig::pretrain(60));
        let mut tuned = base.clone();
        finetune_fmt(&mut tuned, &SentimentTask, TrainConfig::finetune(60));
        (base, tuned)
    }

    #[test]
    fn delta_compress_produces_all_linear_layers() {
        let (base, tuned) = trained_pair();
        let corpus = Corpus::new(base.config.max_seq);
        let calib = calibration_set(&corpus, 6, 3);
        let (cd, rec) = delta_compress(&base, &tuned, &calib, DeltaCompressConfig::starred(4));
        assert_eq!(cd.layers.len(), base.linear_layer_names().len());
        // Reconstructed parameters only differ from base in linear layers.
        assert_eq!(rec.tok_emb, tuned.tok_emb);
        assert_eq!(rec.layers[0].bq, tuned.layers[0].bq);
        // And the linear layers are near (not equal to) the tuned ones.
        let diff = rec.layers[0].wq.max_abs_diff(&tuned.layers[0].wq);
        assert!(diff > 0.0, "compression should be lossy");
        let drift = rec.layers[0].wq.max_abs_diff(&base.layers[0].wq);
        let delta_mag = tuned.layers[0].wq.max_abs_diff(&base.layers[0].wq);
        assert!(drift <= delta_mag * 1.5 + 1e-4);
    }

    #[test]
    fn reconstruct_matches_returned_params() {
        let (base, tuned) = trained_pair();
        let corpus = Corpus::new(base.config.max_seq);
        let calib = calibration_set(&corpus, 4, 5);
        let (cd, rec) = delta_compress(&base, &tuned, &calib, DeltaCompressConfig::starred(4));
        let rebuilt = cd.reconstruct(&base);
        let rect = rec.tensors();
        for (a, b) in rebuilt.tensors().into_iter().zip(rect) {
            assert!(a.max_abs_diff(b) < 1e-5);
        }
    }

    #[test]
    fn ratio_accounting_is_consistent() {
        let (base, tuned) = trained_pair();
        let corpus = Corpus::new(base.config.max_seq);
        let calib = calibration_set(&corpus, 4, 7);
        for bits in [2u32, 4] {
            let (cd, _) = delta_compress(&base, &tuned, &calib, DeltaCompressConfig::starred(bits));
            let r = cd.report;
            assert!(r.compressed_linear_bytes > 0);
            assert!(
                r.model_ratio() > 1.0,
                "bits={bits} ratio {}",
                r.model_ratio()
            );
            assert!(r.delta_ratio() > r.model_ratio());
            // 2-bit deltas must pack tighter than 4-bit.
            if bits == 2 {
                let (cd4, _) =
                    delta_compress(&base, &tuned, &calib, DeltaCompressConfig::starred(4));
                assert!(cd.packed_bytes() < cd4.packed_bytes());
            }
        }
    }

    #[test]
    fn lossless_stage_runs_and_reports() {
        let (base, tuned) = trained_pair();
        let corpus = Corpus::new(base.config.max_seq);
        let calib = calibration_set(&corpus, 4, 9);
        let mut cfg = DeltaCompressConfig::starred(2);
        cfg.lossless = true;
        let (cd, _) = delta_compress(&base, &tuned, &calib, cfg);
        let lb = cd.report.lossless_linear_bytes.expect("lossless ran");
        assert!(lb > 0);
        assert!(cd.report.lossless_delta_ratio().unwrap() > 0.0);
    }

    #[test]
    fn compressed_model_keeps_task_accuracy() {
        // The headline claim at miniature scale: ΔCompress(4bit*) stays
        // close to the FMT model's accuracy.
        let cfg = test_config();
        let mut rng = Rng::seeded(11);
        let mut base = Params::init(cfg, &mut rng);
        let corpus = Corpus::new(cfg.max_seq);
        pretrain(&mut base, &corpus, TrainConfig::pretrain(80));
        let mut tuned = base.clone();
        finetune_fmt(
            &mut tuned,
            &SentimentTask,
            TrainConfig {
                steps: 150,
                batch: 8,
                lr: 3e-3,
                clip: 1.0,
                seed: 4321,
            },
        );
        let fmt_acc =
            dz_model::eval::task_accuracy(&tuned, &SentimentTask, 200, &mut Rng::seeded(2));
        assert!(fmt_acc > 0.8, "fmt acc {fmt_acc}");
        let calib = calibration_set(&corpus, 8, 13);
        let (_, rec) = delta_compress(&base, &tuned, &calib, DeltaCompressConfig::starred(4));
        let rec_acc = dz_model::eval::task_accuracy(&rec, &SentimentTask, 200, &mut Rng::seeded(2));
        assert!(
            rec_acc > fmt_acc - 0.15,
            "compressed acc {rec_acc} vs fmt {fmt_acc}"
        );
    }
}
