//! Bit-packed storage formats for compressed matrices.
//!
//! The formats mirror what the paper's GPU kernels consume (Figure 5):
//!
//! * **QuantDense** — every level packed at `bits` per value,
//! * **QuantSparse24** — 2:4 structured sparsity: per group of 4 inputs only
//!   the 2 kept levels are stored, plus one 2-bit in-group position index per
//!   kept value (so a group costs `2*bits + 4` bits instead of `4*bits`).
//!
//! Matrices are stored output-major (`d_out` rows of `d_in` inputs), i.e.
//! transposed relative to the model's `(d_in, d_out)` weights, so that 2:4
//! groups are contiguous exactly like the hardware layout. Scales are
//! per-(row, group) and counted as FP16 in all byte accounting.

use crate::quant::{dequantize_value, QuantSpec};
use dz_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Storage layout of a [`CompressedMatrix`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MatrixFormat {
    /// Dense quantized levels.
    QuantDense,
    /// 2:4 structured sparse quantized levels with position indices.
    QuantSparse24,
}

/// A packed, quantized (optionally 2:4-sparse) matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedMatrix {
    /// Input dimension (columns of each stored row).
    pub d_in: usize,
    /// Output dimension (number of stored rows).
    pub d_out: usize,
    /// Quantization grid.
    pub spec: QuantSpec,
    /// Storage layout.
    pub format: MatrixFormat,
    /// Packed biased levels, little-endian within each `u32`.
    pub qweight: Vec<u32>,
    /// 2-bit in-group position indices (4 per byte), sparse format only.
    pub indices: Vec<u8>,
    /// Per-(row, group) scales, row-major `(d_out, n_groups)`.
    pub scales: Vec<f32>,
}

/// Packs a sequence of biased levels at `bits` per value into `u32` words.
fn pack_levels(levels: impl Iterator<Item = u32>, bits: u32) -> Vec<u32> {
    let mut out = Vec::new();
    let mut acc = 0u64;
    let mut filled = 0u32;
    for v in levels {
        debug_assert!(v < (1 << bits));
        acc |= (v as u64) << filled;
        filled += bits;
        while filled >= 32 {
            out.push((acc & 0xFFFF_FFFF) as u32);
            acc >>= 32;
            filled -= 32;
        }
    }
    if filled > 0 {
        out.push((acc & 0xFFFF_FFFF) as u32);
    }
    out
}

/// Reads the `i`-th `bits`-wide biased level from packed words.
#[inline]
fn read_level(packed: &[u32], i: usize, bits: u32) -> u32 {
    let bit = i * bits as usize;
    let word = bit / 32;
    let off = (bit % 32) as u32;
    let mask = (1u64 << bits) - 1;
    let lo = (packed[word] as u64) >> off;
    let v = if off + bits > 32 {
        lo | ((packed[word + 1] as u64) << (32 - off))
    } else {
        lo
    };
    (v & mask) as u32
}

impl CompressedMatrix {
    /// Builds a dense-quantized matrix from levels in output-major order.
    ///
    /// `levels[r * d_in + c]` is the signed level of input `c` of output row
    /// `r`; `scales[r * n_groups + g]` its group scale.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches.
    pub fn from_dense(
        d_out: usize,
        d_in: usize,
        levels: &[i32],
        scales: Vec<f32>,
        spec: QuantSpec,
    ) -> Self {
        assert_eq!(levels.len(), d_out * d_in, "levels length mismatch");
        let n_groups = d_in.div_ceil(spec.group_size);
        assert_eq!(scales.len(), d_out * n_groups, "scales length mismatch");
        let qmax = spec.qmax();
        let packed = pack_levels(
            levels.iter().map(|&q| {
                debug_assert!(q.abs() <= qmax);
                (q + qmax) as u32
            }),
            spec.bits,
        );
        CompressedMatrix {
            d_in,
            d_out,
            spec,
            format: MatrixFormat::QuantDense,
            qweight: packed,
            indices: Vec::new(),
            scales,
        }
    }

    /// Builds a 2:4-sparse matrix from full levels plus a keep-mask.
    ///
    /// The mask must keep exactly 2 of every 4 consecutive inputs in every
    /// row. Kept levels are stored in order; each gets a 2-bit in-group
    /// position index.
    ///
    /// # Panics
    ///
    /// Panics if `d_in % 4 != 0` or the mask violates the 2:4 constraint.
    pub fn from_sparse24(
        d_out: usize,
        d_in: usize,
        levels: &[i32],
        mask: &[bool],
        scales: Vec<f32>,
        spec: QuantSpec,
    ) -> Self {
        assert_eq!(d_in % 4, 0, "2:4 needs d_in divisible by 4");
        assert_eq!(levels.len(), d_out * d_in);
        assert_eq!(mask.len(), d_out * d_in);
        let n_groups = d_in.div_ceil(spec.group_size);
        assert_eq!(scales.len(), d_out * n_groups, "scales length mismatch");
        let qmax = spec.qmax();
        let mut kept_levels = Vec::with_capacity(d_out * d_in / 2);
        let mut idx_nibbles = Vec::with_capacity(d_out * d_in / 2);
        for r in 0..d_out {
            for g4 in 0..d_in / 4 {
                let base = r * d_in + g4 * 4;
                let kept: Vec<usize> = (0..4).filter(|&k| mask[base + k]).collect();
                assert_eq!(
                    kept.len(),
                    2,
                    "row {r} group {g4}: mask must keep exactly 2 of 4"
                );
                for &k in &kept {
                    kept_levels.push((levels[base + k] + qmax) as u32);
                    idx_nibbles.push(k as u8);
                }
            }
        }
        let qweight = pack_levels(kept_levels.into_iter(), spec.bits);
        // Pack 2-bit indices, 4 per byte.
        let mut indices = vec![0u8; idx_nibbles.len().div_ceil(4)];
        for (i, &p) in idx_nibbles.iter().enumerate() {
            indices[i / 4] |= p << ((i % 4) * 2);
        }
        CompressedMatrix {
            d_in,
            d_out,
            spec,
            format: MatrixFormat::QuantSparse24,
            qweight,
            indices,
            scales,
        }
    }

    /// Number of groups per row.
    pub fn groups_per_row(&self) -> usize {
        self.d_in.div_ceil(self.spec.group_size)
    }

    /// Scale of input column `c` in output row `r`.
    #[inline]
    pub fn scale_at(&self, r: usize, c: usize) -> f32 {
        self.scales[r * self.groups_per_row() + c / self.spec.group_size]
    }

    /// The signed level of `(row r, input c)`, resolving sparsity.
    pub fn level_at(&self, r: usize, c: usize) -> i32 {
        let qmax = self.spec.qmax();
        match self.format {
            MatrixFormat::QuantDense => {
                read_level(&self.qweight, r * self.d_in + c, self.spec.bits) as i32 - qmax
            }
            MatrixFormat::QuantSparse24 => {
                let g4 = c / 4;
                let within = (c % 4) as u8;
                let kept_base = (r * self.d_in) / 2 + g4 * 2;
                for slot in 0..2 {
                    let i = kept_base + slot;
                    let pos = (self.indices[i / 4] >> ((i % 4) * 2)) & 0b11;
                    if pos == within {
                        return read_level(&self.qweight, i, self.spec.bits) as i32 - qmax;
                    }
                }
                0
            }
        }
    }

    /// Dequantizes into the model's `(d_in, d_out)` weight orientation.
    pub fn dequantize(&self) -> Matrix {
        let mut w = Matrix::zeros(self.d_in, self.d_out);
        for r in 0..self.d_out {
            for c in 0..self.d_in {
                let q = self.level_at(r, c);
                if q != 0 {
                    w.set(c, r, dequantize_value(q, self.scale_at(r, c)));
                }
            }
        }
        w
    }

    /// Exact storage footprint in bytes (scales counted as FP16).
    pub fn packed_bytes(&self) -> usize {
        let value_count = match self.format {
            MatrixFormat::QuantDense => self.d_out * self.d_in,
            MatrixFormat::QuantSparse24 => self.d_out * self.d_in / 2,
        };
        let value_bits = value_count * self.spec.bits as usize;
        let index_bits = match self.format {
            MatrixFormat::QuantDense => 0,
            MatrixFormat::QuantSparse24 => value_count * 2,
        };
        let scale_bytes = self.scales.len() * 2;
        value_bits.div_ceil(8) + index_bits.div_ceil(8) + scale_bytes
    }

    /// FP16 bytes of the uncompressed equivalent.
    pub fn fp16_bytes(&self) -> usize {
        self.d_in * self.d_out * 2
    }

    /// Serializes the packed payload (for the lossless stage / disk model).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.packed_bytes() + 16);
        for w in &self.qweight {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out.extend_from_slice(&self.indices);
        for s in &self.scales {
            // Truncate to bf16-style 2-byte form for realistic entropy.
            let bits = s.to_bits();
            out.extend_from_slice(&((bits >> 16) as u16).to_le_bytes());
        }
        out
    }

    /// Fraction of stored levels that are exactly zero.
    pub fn zero_level_fraction(&self) -> f64 {
        let mut zeros = 0usize;
        let mut total = 0usize;
        for r in 0..self.d_out {
            for c in 0..self.d_in {
                if self.level_at(r, c) == 0 {
                    zeros += 1;
                }
                total += 1;
            }
        }
        zeros as f64 / total.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::quantize_slice;
    use dz_tensor::Rng;

    fn dense_fixture(
        d_out: usize,
        d_in: usize,
        bits: u32,
        seed: u64,
    ) -> (Matrix, CompressedMatrix) {
        let mut rng = Rng::seeded(seed);
        let spec = QuantSpec::new(bits, 8);
        let wt = Matrix::randn(d_out, d_in, 0.05, &mut rng); // Output-major.
        let mut levels = Vec::new();
        let mut scales = Vec::new();
        for r in 0..d_out {
            let (l, s) = quantize_slice(wt.row(r), spec);
            levels.extend(l);
            scales.extend(s);
        }
        let cm = CompressedMatrix::from_dense(d_out, d_in, &levels, scales, spec);
        (wt, cm)
    }

    #[test]
    fn dense_pack_unpack_round_trip() {
        for bits in [2u32, 3, 4, 8] {
            let (wt, cm) = dense_fixture(6, 16, bits, bits as u64);
            let deq = cm.dequantize(); // (d_in, d_out)
            assert_eq!(deq.shape(), (16, 6));
            // Per-element error bounded by half a step of that group's scale.
            for r in 0..6 {
                for c in 0..16 {
                    let err = (deq.get(c, r) - wt.get(r, c)).abs();
                    let bound = cm.scale_at(r, c) * 0.5 + 1e-6;
                    assert!(err <= bound, "bits={bits} err {err} bound {bound}");
                }
            }
        }
    }

    #[test]
    fn levels_round_trip_exactly() {
        let (_, cm) = dense_fixture(4, 12, 4, 7);
        // Reading every level back must stay within the grid.
        for r in 0..4 {
            for c in 0..12 {
                let q = cm.level_at(r, c);
                assert!(q.abs() <= cm.spec.qmax());
            }
        }
    }

    fn sparse_fixture(seed: u64, bits: u32) -> (Vec<i32>, Vec<bool>, CompressedMatrix) {
        let mut rng = Rng::seeded(seed);
        let (d_out, d_in) = (5, 16);
        let spec = QuantSpec::new(bits, 8);
        let qmax = spec.qmax();
        let mut levels = vec![0i32; d_out * d_in];
        let mut mask = vec![false; d_out * d_in];
        for r in 0..d_out {
            for g in 0..d_in / 4 {
                // Keep two random distinct positions per group.
                let first = rng.below(4);
                let mut second = rng.below(4);
                while second == first {
                    second = rng.below(4);
                }
                for k in [first, second] {
                    let i = r * d_in + g * 4 + k;
                    mask[i] = true;
                    levels[i] = rng.below((2 * qmax + 1) as usize) as i32 - qmax;
                }
            }
        }
        let scales = vec![0.1f32; d_out * 2];
        let cm = CompressedMatrix::from_sparse24(d_out, d_in, &levels, &mask, scales, spec);
        (levels, mask, cm)
    }

    #[test]
    fn sparse_pack_unpack_round_trip() {
        for bits in [2u32, 4] {
            let (levels, mask, cm) = sparse_fixture(bits as u64 + 10, bits);
            for r in 0..5 {
                for c in 0..16 {
                    let i = r * 16 + c;
                    let expect = if mask[i] { levels[i] } else { 0 };
                    assert_eq!(cm.level_at(r, c), expect, "bits={bits} r={r} c={c}");
                }
            }
        }
    }

    #[test]
    fn sparse_dequantize_zeroes_pruned_positions() {
        let (_, mask, cm) = sparse_fixture(3, 4);
        let deq = cm.dequantize();
        for r in 0..5 {
            for c in 0..16 {
                if !mask[r * 16 + c] {
                    assert_eq!(deq.get(c, r), 0.0);
                }
            }
        }
    }

    #[test]
    fn packed_bytes_match_paper_figure5_arithmetic() {
        // 128 FP16 values = 256 bytes. 2:4 + 4-bit: 64 values * 4 bits = 32
        // bytes + 64 indices * 2 bits = 16 bytes (plus scales).
        let spec = QuantSpec::new(4, 128);
        let levels = vec![1i32; 128];
        let mask: Vec<bool> = (0..128).map(|i| i % 4 < 2).collect();
        let cm = CompressedMatrix::from_sparse24(1, 128, &levels, &mask, vec![0.1], spec);
        // 32 (values) + 16 (indices) + 2 (one fp16 scale) = 50 bytes.
        assert_eq!(cm.packed_bytes(), 32 + 16 + 2);
        assert_eq!(cm.fp16_bytes(), 256);
        let ratio = cm.fp16_bytes() as f64 / cm.packed_bytes() as f64;
        assert!((ratio - 5.12).abs() < 0.01, "ratio {ratio}");

        // 2-bit variant: 16 + 16 + 2 = 34 bytes -> ~7.5x.
        let spec2 = QuantSpec::new(2, 128);
        let cm2 =
            CompressedMatrix::from_sparse24(1, 128, &vec![1i32; 128], &mask, vec![0.1], spec2);
        assert_eq!(cm2.packed_bytes(), 16 + 16 + 2);
    }

    #[test]
    #[should_panic(expected = "mask must keep exactly 2 of 4")]
    fn sparse_rejects_bad_mask() {
        let spec = QuantSpec::new(4, 8);
        let levels = vec![0i32; 8];
        let mask = vec![true; 8]; // Keeps 4 of 4.
        let _ = CompressedMatrix::from_sparse24(1, 8, &levels, &mask, vec![1.0], spec);
    }

    #[test]
    fn to_bytes_length_tracks_packed_bytes() {
        let (_, cm) = dense_fixture(7, 24, 4, 21);
        let bytes = cm.to_bytes();
        // Serialized form uses whole u32 words, so it can exceed the exact
        // bit count, but never by more than 4 bytes per section.
        assert!(bytes.len() >= cm.packed_bytes());
        assert!(bytes.len() <= cm.packed_bytes() + 8);
    }

    #[test]
    fn zero_fraction_reflects_sparsity() {
        let (_, _, cm) = sparse_fixture(9, 4);
        assert!(cm.zero_level_fraction() >= 0.5);
    }
}
