//! The SparseGPT-style optimal-brain-surgeon solver.
//!
//! Solves `argmin_W' || W X - W' X ||^2` (Eq. 1 of the paper) subject to the
//! target format: 2:4 structured sparsity and/or a low-bit quantization
//! grid. Columns (input features) are processed in order; the error each
//! column's rounding/pruning introduces is propagated to not-yet-processed
//! columns through the upper Cholesky factor `U` of the inverse Hessian
//! (`H^{-1} = U^T U`), exactly as GPTQ/SparseGPT do.
//!
//! For the 2:4 pattern, at every 4-column boundary each output row selects
//! the 2 columns with the smallest saliency `w^2 / U_cc^2` to prune, the
//! standard SparseGPT criterion.

use crate::pack::CompressedMatrix;
use crate::quant::{group_scale, QuantSpec};
use dz_tensor::linalg;
use dz_tensor::Matrix;

/// Solver configuration.
#[derive(Debug, Clone, Copy)]
pub struct ObsConfig {
    /// Quantization grid.
    pub spec: QuantSpec,
    /// Apply 2:4 structured pruning before quantization.
    pub sparse24: bool,
    /// Hessian damping as a fraction of the mean diagonal.
    pub damp: f32,
}

impl ObsConfig {
    /// The paper's default configuration for a given bit width.
    pub fn with_bits(bits: u32) -> Self {
        ObsConfig {
            spec: QuantSpec::new(bits, 16),
            sparse24: true,
            damp: 0.05,
        }
    }
}

/// Result of compressing one matrix.
#[derive(Debug, Clone)]
pub struct ObsResult {
    /// The packed representation.
    pub packed: CompressedMatrix,
    /// Dense reconstruction in the model's `(d_in, d_out)` orientation.
    pub reconstructed: Matrix,
}

/// Accumulates the (undamped) Hessian `X^T X` from layer inputs.
///
/// Each `x` is `(tokens, d_in)`; the result is `(d_in, d_in)`.
///
/// # Panics
///
/// Panics if inputs disagree on `d_in` or none are given.
pub fn hessian_from_inputs(inputs: &[&Matrix]) -> Matrix {
    assert!(!inputs.is_empty(), "need at least one calibration input");
    let d = inputs[0].cols();
    let mut h = Matrix::zeros(d, d);
    for x in inputs {
        assert_eq!(x.cols(), d, "calibration width mismatch");
        h.add_assign(&x.matmul_tn(x));
    }
    h
}

/// Compresses `w` (model orientation `(d_in, d_out)`) against Hessian `h`.
///
/// Returns the packed matrix plus its dense reconstruction. With
/// `h = identity` and `sparse24 = false` this reduces exactly to
/// round-to-nearest group quantization (verified in tests).
///
/// # Panics
///
/// Panics if shapes are inconsistent, or `sparse24` is set and
/// `d_in % 4 != 0` or the group size is not a multiple of 4.
pub fn compress_matrix(w: &Matrix, h: &Matrix, cfg: &ObsConfig) -> ObsResult {
    let (d_in, d_out) = w.shape();
    assert_eq!(h.shape(), (d_in, d_in), "hessian shape mismatch");
    if cfg.sparse24 {
        assert_eq!(d_in % 4, 0, "2:4 needs d_in divisible by 4");
        assert_eq!(
            cfg.spec.group_size % 4,
            0,
            "group size must align with 2:4 groups"
        );
    }
    // Damped Hessian; damping keeps the Cholesky well conditioned even when
    // calibration activations are rank deficient.
    let mut hd = h.clone();
    let mean_diag: f32 = (0..d_in).map(|i| hd.get(i, i)).sum::<f32>() / d_in as f32;
    let damp = (cfg.damp * mean_diag).max(1e-6);
    for i in 0..d_in {
        hd.set(i, i, hd.get(i, i) + damp);
    }
    let u = linalg::cholesky_inverse_upper(&hd).expect("damped Hessian must be positive definite");

    // Work in output-major orientation: rows = outputs.
    let mut wt = w.transpose(); // (d_out, d_in)
    let qmax = cfg.spec.qmax();
    let group = cfg.spec.group_size;
    let n_groups = d_in.div_ceil(group);
    let mut levels = vec![0i32; d_out * d_in];
    let mut mask = vec![true; d_out * d_in];
    let mut scales = vec![1.0f32; d_out * n_groups];
    let mut err = vec![0.0f32; d_out];

    for j in 0..d_in {
        // New scale group: compute per-row scales from the current
        // (error-compensated) values.
        if j % group == 0 {
            let end = (j + group).min(d_in);
            for r in 0..d_out {
                scales[r * n_groups + j / group] = group_scale(&wt.row(r)[j..end], qmax);
            }
        }
        // New 2:4 group: decide which two columns each row prunes.
        if cfg.sparse24 && j % 4 == 0 {
            for r in 0..d_out {
                let row = wt.row(r);
                let mut sal: Vec<(f32, usize)> = (0..4)
                    .map(|k| {
                        let c = j + k;
                        let ucc = u.get(c, c);
                        let s = row[c] * row[c] / (ucc * ucc).max(1e-12);
                        (s, c)
                    })
                    .collect();
                sal.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("saliency NaN"));
                // Prune the two lowest-saliency columns.
                mask[r * d_in + sal[0].1] = false;
                mask[r * d_in + sal[1].1] = false;
            }
        }
        let ujj = u.get(j, j);
        for r in 0..d_out {
            let wv = wt.get(r, j);
            let keep = mask[r * d_in + j];
            let scale = scales[r * n_groups + j / group];
            let q = if keep {
                let q = (wv / scale).round() as i32;
                q.clamp(-qmax, qmax)
            } else {
                0
            };
            levels[r * d_in + j] = q;
            let deq = q as f32 * scale;
            err[r] = (wv - deq) / ujj;
            wt.set(r, j, deq);
        }
        // Propagate the error to unprocessed columns.
        for k in (j + 1)..d_in {
            let ujk = u.get(j, k);
            if ujk == 0.0 {
                continue;
            }
            for (r, &e) in err.iter().enumerate() {
                let cur = wt.get(r, k);
                wt.set(r, k, cur - e * ujk);
            }
        }
    }

    let packed = if cfg.sparse24 {
        // Normalize the mask so exactly two survive per group even when a
        // kept value also quantized to zero (format stores positions only).
        CompressedMatrix::from_sparse24(d_out, d_in, &levels, &mask, scales, cfg.spec)
    } else {
        CompressedMatrix::from_dense(d_out, d_in, &levels, scales, cfg.spec)
    };
    let reconstructed = packed.dequantize();
    ObsResult {
        packed,
        reconstructed,
    }
}

/// Mean squared output error `||X W - X W'||^2 / numel` on given inputs.
pub fn output_mse(w: &Matrix, w_rec: &Matrix, inputs: &[&Matrix]) -> f64 {
    let mut total = 0.0f64;
    let mut count = 0usize;
    for x in inputs {
        let y = x.matmul(w);
        let yr = x.matmul(w_rec);
        for (a, b) in y.data().iter().zip(yr.data().iter()) {
            let d = (a - b) as f64;
            total += d * d;
            count += 1;
        }
    }
    total / count.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::quantize_slice;
    use dz_tensor::Rng;

    fn random_inputs(n: usize, t: usize, d: usize, seed: u64) -> Vec<Matrix> {
        let mut rng = Rng::seeded(seed);
        (0..n).map(|_| Matrix::randn(t, d, 1.0, &mut rng)).collect()
    }

    /// Correlated inputs make error propagation matter.
    fn correlated_inputs(n: usize, t: usize, d: usize, seed: u64) -> Vec<Matrix> {
        let mut rng = Rng::seeded(seed);
        let mixer = Matrix::randn(d, d, 1.0, &mut rng);
        (0..n)
            .map(|_| {
                // Low-dimensional latent expanded to d dims => correlated cols.
                let z = Matrix::randn(t, d / 2, 1.0, &mut rng);
                let expand = mixer.submatrix(0, 0, d / 2, d);
                let mut x = z.matmul(&expand);
                x.add_assign(&Matrix::randn(t, d, 0.05, &mut rng));
                x
            })
            .collect()
    }

    #[test]
    fn identity_hessian_dense_reduces_to_rtn() {
        let mut rng = Rng::seeded(1);
        let w = Matrix::randn(16, 6, 0.05, &mut rng);
        let h = Matrix::identity(16);
        let cfg = ObsConfig {
            spec: QuantSpec::new(4, 16),
            sparse24: false,
            damp: 1e-6,
        };
        let res = compress_matrix(&w, &h, &cfg);
        // RTN reference, computed row-wise in output-major orientation.
        // With an identity Hessian U is a multiple of I, so no propagation
        // crosses columns and scales match RTN's.
        let wt = w.transpose();
        for r in 0..6 {
            let (levels, scales) = quantize_slice(wt.row(r), cfg.spec);
            for c in 0..16 {
                let expect = levels[c] as f32 * scales[c / 16];
                let got = res.reconstructed.get(c, r);
                assert!(
                    (expect - got).abs() < 1e-5,
                    "r={r} c={c}: rtn {expect} vs obs {got}"
                );
            }
        }
    }

    #[test]
    fn hessian_from_inputs_is_gram_matrix() {
        let xs = random_inputs(3, 8, 5, 2);
        let refs: Vec<&Matrix> = xs.iter().collect();
        let h = hessian_from_inputs(&refs);
        assert_eq!(h.shape(), (5, 5));
        // Symmetric and PSD diagonal.
        for i in 0..5 {
            assert!(h.get(i, i) > 0.0);
            for j in 0..5 {
                assert!((h.get(i, j) - h.get(j, i)).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn obs_beats_rtn_on_correlated_inputs() {
        let mut rng = Rng::seeded(3);
        let (d_in, d_out) = (32, 12);
        let w = Matrix::randn(d_in, d_out, 0.1, &mut rng);
        let xs = correlated_inputs(4, 16, d_in, 4);
        let refs: Vec<&Matrix> = xs.iter().collect();
        let h = hessian_from_inputs(&refs);
        let cfg = ObsConfig {
            spec: QuantSpec::new(2, 16),
            sparse24: false,
            damp: 0.05,
        };
        let obs = compress_matrix(&w, &h, &cfg);
        let rtn = compress_matrix(&w, &Matrix::identity(d_in), &cfg);
        let obs_mse = output_mse(&w, &obs.reconstructed, &refs);
        let rtn_mse = output_mse(&w, &rtn.reconstructed, &refs);
        assert!(obs_mse < rtn_mse, "obs {obs_mse} should beat rtn {rtn_mse}");
    }

    #[test]
    fn sparse24_mask_is_structural() {
        let mut rng = Rng::seeded(5);
        let w = Matrix::randn(16, 8, 0.1, &mut rng);
        let xs = random_inputs(2, 12, 16, 6);
        let refs: Vec<&Matrix> = xs.iter().collect();
        let h = hessian_from_inputs(&refs);
        let cfg = ObsConfig {
            spec: QuantSpec::new(4, 16),
            sparse24: true,
            damp: 0.05,
        };
        let res = compress_matrix(&w, &h, &cfg);
        // Reconstruction must have >= 2 zeros in every 4-input group of
        // every output column.
        let rec = &res.reconstructed; // (d_in, d_out)
        for out in 0..8 {
            for g in 0..16 / 4 {
                let zeros = (0..4).filter(|&k| rec.get(g * 4 + k, out) == 0.0).count();
                assert!(zeros >= 2, "out {out} group {g}: {zeros} zeros");
            }
        }
        assert!(res.packed.zero_level_fraction() >= 0.5);
    }

    #[test]
    fn small_magnitude_delta_compresses_with_low_relative_error() {
        // Delta-like input: tight distribution, no outliers.
        let mut rng = Rng::seeded(7);
        let delta = Matrix::randn(32, 16, 0.01, &mut rng);
        let xs = random_inputs(3, 16, 32, 8);
        let refs: Vec<&Matrix> = xs.iter().collect();
        let h = hessian_from_inputs(&refs);
        let cfg = ObsConfig::with_bits(4);
        let res = compress_matrix(&delta, &h, &cfg);
        let rel = output_mse(&delta, &res.reconstructed, &refs)
            / output_mse(&delta, &Matrix::zeros(32, 16), &refs);
        assert!(rel < 0.35, "relative output error {rel}");
    }

    #[test]
    fn output_mse_zero_for_identical_weights() {
        let mut rng = Rng::seeded(9);
        let w = Matrix::randn(8, 4, 1.0, &mut rng);
        let xs = random_inputs(2, 8, 8, 10);
        let refs: Vec<&Matrix> = xs.iter().collect();
        assert_eq!(output_mse(&w, &w, &refs), 0.0);
    }

    #[test]
    #[should_panic(expected = "2:4 needs d_in divisible by 4")]
    fn sparse_requires_divisible_width() {
        let w = Matrix::zeros(6, 4);
        let h = Matrix::identity(6);
        let cfg = ObsConfig::with_bits(4);
        let _ = compress_matrix(&w, &h, &cfg);
    }
}
