//! Calibration-set activation capture.
//!
//! ΔCompress calibrates on a small sample of sequences (the paper uses 256
//! prompts from UltraChat). For each linear projection we need the matrix of
//! inputs it sees, both to build the OBS Hessian and to score output error.

use dz_model::tasks::Corpus;
use dz_model::transformer::{forward_probe, Params};
use dz_tensor::{Matrix, Rng};

/// Generates a synthetic calibration set of `n` sequences.
pub fn calibration_set(corpus: &Corpus, n: usize, seed: u64) -> Vec<Vec<usize>> {
    let mut rng = Rng::seeded(seed);
    (0..n).map(|_| corpus.sample(&mut rng)).collect()
}

/// Stacks the inputs seen by one linear projection across sequences.
///
/// Returns a `(total_tokens, d_in)` matrix for the projection named
/// `target` under the given parameters.
///
/// # Panics
///
/// Panics if `target` names no linear projection in the model.
pub fn inputs_for(params: &Params, seqs: &[Vec<usize>], target: &str) -> Matrix {
    let mut chunks: Vec<Matrix> = Vec::with_capacity(seqs.len());
    for seq in seqs {
        forward_probe(params, seq, &mut |name, x| {
            if name == target {
                chunks.push(x.clone());
            }
        });
    }
    assert!(
        !chunks.is_empty(),
        "no activations recorded for target {target}"
    );
    let refs: Vec<&Matrix> = chunks.iter().collect();
    Matrix::vstack(&refs)
}

/// Mean absolute activation per input channel (used by the AWQ baseline).
pub fn channel_mean_abs(x: &Matrix) -> Vec<f32> {
    let mut acc = vec![0.0f64; x.cols()];
    for r in 0..x.rows() {
        for (c, v) in x.row(r).iter().enumerate() {
            acc[c] += v.abs() as f64;
        }
    }
    acc.into_iter()
        .map(|v| (v / x.rows().max(1) as f64) as f32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dz_model::transformer::test_config;

    #[test]
    fn calibration_set_is_deterministic() {
        let corpus = Corpus::new(24);
        let a = calibration_set(&corpus, 8, 42);
        let b = calibration_set(&corpus, 8, 42);
        assert_eq!(a, b);
        let c = calibration_set(&corpus, 8, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn inputs_for_every_linear_have_right_width() {
        let cfg = test_config();
        let mut rng = Rng::seeded(1);
        let params = Params::init(cfg, &mut rng);
        let corpus = Corpus::new(cfg.max_seq);
        let seqs = calibration_set(&corpus, 4, 7);
        let total_tokens: usize = seqs.iter().map(|s| s.len()).sum();
        for name in params.linear_layer_names() {
            let x = inputs_for(&params, &seqs, &name);
            let expected_width = params.get(&name).unwrap().rows();
            assert_eq!(x.cols(), expected_width, "{name}");
            assert_eq!(x.rows(), total_tokens, "{name}");
            assert!(x.all_finite(), "{name}");
        }
    }

    #[test]
    #[should_panic(expected = "no activations recorded")]
    fn unknown_target_panics() {
        let cfg = test_config();
        let mut rng = Rng::seeded(2);
        let params = Params::init(cfg, &mut rng);
        let _ = inputs_for(&params, &[vec![1, 2, 3]], "layer9.nope");
    }

    #[test]
    fn channel_mean_abs_matches_manual() {
        let x = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, 0.0]]);
        let m = channel_mean_abs(&x);
        assert!((m[0] - 2.0).abs() < 1e-6);
        assert!((m[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn probe_logits_match_forward_full() {
        // The probing forward must compute the same function as training.
        let cfg = test_config();
        let mut rng = Rng::seeded(3);
        let params = Params::init(cfg, &mut rng);
        let ids = vec![1usize, 10, 11, 12, 2];
        let via_probe = forward_probe(&params, &ids, &mut |_, _| {});
        let via_full = dz_model::transformer::forward_full(&params, &ids);
        assert!(
            via_probe.max_abs_diff(&via_full) < 1e-3,
            "probe and training forward disagree: {}",
            via_probe.max_abs_diff(&via_full)
        );
    }
}
