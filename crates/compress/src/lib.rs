//! ΔCompress and friends: post-training compression of model deltas.
//!
//! This crate implements the paper's compression stack from scratch:
//!
//! * [`quant`] — symmetric group quantization grids (2/3/4/8 bit),
//! * [`obs`] — the SparseGPT-style optimal-brain-surgeon solver: joint
//!   2:4 structured pruning + quantization with inverse-Hessian error
//!   propagation (Eq. 1 of the paper),
//! * [`pack`] — hardware-style bit-packed storage for dense-quantized and
//!   2:4-sparse matrices (values + 2-bit indices), with exact byte
//!   accounting used for every compression-ratio figure,
//! * [`calib`] — calibration-set activation capture and Hessian assembly,
//! * [`pipeline`] — ΔCompress itself (Algorithm 1): per-layer delta
//!   extraction, compression, weight reconstruction and activation
//!   propagation, plus the optional lossless stage,
//! * [`baselines`] — SparseGPT-direct and AWQ applied to the fine-tuned
//!   weights, the paper's comparison points,
//! * [`codec`] — the delta-compression **method zoo**: the [`DeltaCodec`]
//!   trait plus BitDelta-style 1-bit sign/scale and Delta-CoMe-style
//!   mixed-precision low-rank codecs alongside the starred pipeline.

pub mod baselines;
pub mod calib;
pub mod codec;
pub mod obs;
pub mod pack;
pub mod pipeline;
pub mod quant;
pub mod wire;

pub use codec::{
    codec_zoo, BitDeltaCodec, CodecId, DeltaCodec, DeltaComeCodec, LowRankMatrix, PackedLayer,
    SignMatrix, SignScope, SparseGptCodec,
};
pub use pack::{CompressedMatrix, MatrixFormat};
pub use pipeline::{CompressedDelta, DeltaCompressConfig, SizeReport};
pub use wire::WireError;
