//! The Model Manager: bases, variants, adapters, lineage, metadata, and
//! persistence of delta variants through the content-addressed registry.

use crate::DzError;
use dz_compress::pipeline::CompressedDelta;
use dz_model::lora::LoraAdapter;
use dz_model::rosa::RosaAdapter;
use dz_model::transformer::Params;
use dz_store::{ArtifactId, Digest, Registry, Sha256};

/// Handle to a registered base model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BaseId(pub usize);

/// Handle to a registered variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VariantId(pub usize);

/// What a variant physically is in the zoo.
pub enum VariantArtifact {
    /// A ΔCompressed full-model-tuning delta.
    Delta(Box<CompressedDelta>),
    /// A LoRA adapter.
    Lora(Box<LoraAdapter>),
    /// A RoSA adapter (low-rank + sparse, §8's PEFT extension).
    Rosa(Box<RosaAdapter>),
}

impl VariantArtifact {
    /// Bytes the artifact occupies when swapped (packed linears + FP16 rest
    /// for deltas; FP16 pairs for adapters; pairs plus coordinate-format
    /// non-zeros for RoSA).
    pub fn swap_bytes(&self) -> usize {
        match self {
            VariantArtifact::Delta(d) => {
                d.report.compressed_linear_bytes + d.report.uncompressed_rest_bytes
            }
            VariantArtifact::Lora(a) => a.fp16_bytes(),
            VariantArtifact::Rosa(a) => a.serving_bytes(),
        }
    }
}

/// Metadata of one registered variant.
pub struct VariantInfo {
    /// Registered name (unique across the zoo).
    pub name: String,
    /// Lineage: the base the variant derives from.
    pub base: BaseId,
    /// The stored artifact.
    pub artifact: VariantArtifact,
}

/// Content hash of a base model's parameters: every tensor's name, shape,
/// and little-endian FP32 data, in the model's canonical tensor order.
/// This is the lineage stamp recorded in `.dza` manifests.
pub fn params_hash(params: &Params) -> Digest {
    let mut h = Sha256::new();
    params.for_each(|name, m| {
        h.update(&(name.len() as u64).to_le_bytes());
        h.update(name.as_bytes());
        h.update(&(m.rows() as u64).to_le_bytes());
        h.update(&(m.cols() as u64).to_le_bytes());
        for &v in m.data() {
            h.update(&v.to_le_bytes());
        }
    });
    h.finalize()
}

struct BaseEntry {
    name: String,
    params: Params,
    content_hash: Digest,
}

/// Registry of bases and variants.
#[derive(Default)]
pub struct ModelManager {
    bases: Vec<BaseEntry>,
    variants: Vec<VariantInfo>,
}

impl ModelManager {
    /// Registers a base model under a unique name.
    pub fn add_base(&mut self, name: &str, params: Params) -> Result<BaseId, DzError> {
        if self.bases.iter().any(|b| b.name == name) {
            return Err(DzError::DuplicateName(name.to_string()));
        }
        let content_hash = params_hash(&params);
        self.bases.push(BaseEntry {
            name: name.to_string(),
            params,
            content_hash,
        });
        Ok(BaseId(self.bases.len() - 1))
    }

    /// Registers a variant artifact under a unique name.
    pub fn add_variant(
        &mut self,
        name: &str,
        base: BaseId,
        artifact: VariantArtifact,
    ) -> Result<VariantId, DzError> {
        if base.0 >= self.bases.len() {
            return Err(DzError::UnknownBase);
        }
        if self.variants.iter().any(|v| v.name == name) {
            return Err(DzError::DuplicateName(name.to_string()));
        }
        self.variants.push(VariantInfo {
            name: name.to_string(),
            base,
            artifact,
        });
        Ok(VariantId(self.variants.len() - 1))
    }

    /// Base parameters, if the id is valid.
    pub fn base_params(&self, id: BaseId) -> Option<&Params> {
        self.bases.get(id.0).map(|b| &b.params)
    }

    /// Base name, if valid.
    pub fn base_name(&self, id: BaseId) -> Option<&str> {
        self.bases.get(id.0).map(|b| b.name.as_str())
    }

    /// Variant info, if valid.
    pub fn variant(&self, id: VariantId) -> Option<&VariantInfo> {
        self.variants.get(id.0)
    }

    /// Looks a variant up by name.
    pub fn variant_by_name(&self, name: &str) -> Option<VariantId> {
        self.variants
            .iter()
            .position(|v| v.name == name)
            .map(VariantId)
    }

    /// All variants of a base (the "delta zoo" view).
    pub fn variants_of(&self, base: BaseId) -> Vec<VariantId> {
        self.variants
            .iter()
            .enumerate()
            .filter(|(_, v)| v.base == base)
            .map(|(i, _)| VariantId(i))
            .collect()
    }

    /// Content hash of a base's parameters (its lineage identity).
    pub fn base_hash(&self, id: BaseId) -> Option<Digest> {
        self.bases.get(id.0).map(|b| b.content_hash)
    }

    /// Persists a delta variant into the registry as a `.dza` artifact
    /// stamped with its base's content hash; returns the artifact id.
    ///
    /// Adapter variants have no delta artifact and return
    /// [`DzError::NotADelta`].
    pub fn persist_variant(
        &self,
        id: VariantId,
        registry: &Registry,
    ) -> Result<ArtifactId, DzError> {
        let info = self.variant(id).ok_or(DzError::UnknownVariant)?;
        let VariantArtifact::Delta(delta) = &info.artifact else {
            return Err(DzError::NotADelta);
        };
        let base_hash = self.base_hash(info.base).ok_or(DzError::UnknownBase)?;
        registry
            .publish_delta(&info.name, base_hash, delta)
            .map_err(|e| DzError::Storage(e.to_string()))
    }

    /// Registers a variant from a stored `.dza` artifact, decoding the
    /// delta and verifying its recorded lineage against `base`'s content
    /// hash. The variant takes the name recorded in the manifest.
    pub fn register_variant_from_artifact(
        &mut self,
        base: BaseId,
        registry: &Registry,
        id: &ArtifactId,
    ) -> Result<VariantId, DzError> {
        let expected = self.base_hash(base).ok_or(DzError::UnknownBase)?;
        let mut reader = registry
            .open_artifact(id)
            .map_err(|e| DzError::Storage(e.to_string()))?;
        let manifest = reader.manifest();
        manifest
            .verify_base(&expected)
            .map_err(|e| DzError::Storage(e.to_string()))?;
        let name = manifest.name.clone();
        let delta = reader
            .read_delta()
            .map_err(|e| DzError::Storage(e.to_string()))?;
        self.add_variant(&name, base, VariantArtifact::Delta(Box::new(delta)))
    }

    /// Number of registered bases.
    pub fn n_bases(&self) -> usize {
        self.bases.len()
    }

    /// Number of registered variants.
    pub fn n_variants(&self) -> usize {
        self.variants.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dz_model::transformer::test_config;
    use dz_tensor::Rng;

    fn params() -> Params {
        Params::init(test_config(), &mut Rng::seeded(1))
    }

    #[test]
    fn base_registration_and_lookup() {
        let mut m = ModelManager::default();
        let b = m.add_base("llama", params()).unwrap();
        assert_eq!(m.base_name(b), Some("llama"));
        assert!(m.base_params(b).is_some());
        assert_eq!(m.n_bases(), 1);
        assert!(m.base_params(BaseId(5)).is_none());
    }

    #[test]
    fn variant_lineage() {
        let mut m = ModelManager::default();
        let b1 = m.add_base("llama", params()).unwrap();
        let b2 = m.add_base("gemma", params()).unwrap();
        let mut rng = Rng::seeded(2);
        let adapter = dz_model::lora::LoraAdapter::init(
            m.base_params(b1).unwrap(),
            dz_model::lora::LoraConfig::rank(2),
            &mut rng,
        );
        let v = m
            .add_variant("vicuna-lora", b1, VariantArtifact::Lora(Box::new(adapter)))
            .unwrap();
        assert_eq!(m.variant(v).unwrap().base, b1);
        assert_eq!(m.variants_of(b1), vec![v]);
        assert!(m.variants_of(b2).is_empty());
        assert_eq!(m.variant_by_name("vicuna-lora"), Some(v));
        assert_eq!(m.variant_by_name("nope"), None);
    }

    #[test]
    fn unknown_base_rejected() {
        let mut m = ModelManager::default();
        let mut rng = Rng::seeded(3);
        let p = params();
        let adapter =
            dz_model::lora::LoraAdapter::init(&p, dz_model::lora::LoraConfig::rank(2), &mut rng);
        assert_eq!(
            m.add_variant("x", BaseId(0), VariantArtifact::Lora(Box::new(adapter)))
                .err(),
            Some(DzError::UnknownBase)
        );
    }

    #[test]
    fn swap_bytes_reflect_artifact_kind() {
        let p = params();
        let mut rng = Rng::seeded(4);
        let adapter =
            dz_model::lora::LoraAdapter::init(&p, dz_model::lora::LoraConfig::rank(2), &mut rng);
        let lora_bytes = VariantArtifact::Lora(Box::new(adapter)).swap_bytes();
        assert!(lora_bytes > 0);
        assert!(lora_bytes < p.fp16_bytes());
    }
}
