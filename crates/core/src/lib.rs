//! DeltaZip: efficient serving of multiple full-model-tuned LLMs.
//!
//! This crate is the public face of the reproduction. It mirrors the
//! paper's architecture (Figure 4):
//!
//! * the **Delta Compressor** — [`DeltaZip::register_fmt_variant`] extracts
//!   and ΔCompresses the delta of a registered fine-tuned model against its
//!   base (Algorithm 1),
//! * the **Model Manager** — tracks bases, variants, adapters, lineage and
//!   compression metadata ([`manager`]),
//! * the **Serving Engine** — [`DeltaZip::generate_batch`] actually decodes
//!   batched requests for *different* variants through the decoupled
//!   base-plus-SBMM path on CPU, and [`DeltaZip::simulate`] replays traces
//!   on the calibrated GPU performance model for the paper's end-to-end
//!   serving experiments.
//!
//! # Examples
//!
//! ```
//! use deltazip::{DeltaZip, DzError};
//! use dz_compress::pipeline::DeltaCompressConfig;
//! use dz_model::tasks::{Corpus, SentimentTask};
//! use dz_model::train::{finetune_fmt, pretrain, TrainConfig};
//! use dz_model::transformer::{test_config, Params};
//! use dz_tensor::Rng;
//!
//! # fn main() -> Result<(), DzError> {
//! // Train a tiny base and one fine-tuned variant.
//! let cfg = test_config();
//! let mut rng = Rng::seeded(1);
//! let mut base = Params::init(cfg, &mut rng);
//! let corpus = Corpus::new(cfg.max_seq);
//! pretrain(&mut base, &corpus, TrainConfig::pretrain(30));
//! let mut tuned = base.clone();
//! finetune_fmt(&mut tuned, &SentimentTask, TrainConfig::finetune(20));
//!
//! // Register with DeltaZip and serve.
//! let mut dz = DeltaZip::new();
//! let base_id = dz.register_base("tiny-base", base)?;
//! let variant = dz.register_fmt_variant(
//!     "tiny-sentiment",
//!     base_id,
//!     &tuned,
//!     DeltaCompressConfig::starred(4),
//! )?;
//! let out = dz.generate(variant, &[1, 20, 21, 2], 4)?;
//! assert_eq!(out.len(), 4);
//! # Ok(())
//! # }
//! ```

pub mod manager;

use dz_compress::calib::calibration_set;
pub use dz_compress::codec::{
    codec_zoo, BitDeltaCodec, CodecId, DeltaCodec, DeltaComeCodec, SparseGptCodec,
};
use dz_compress::pipeline::{delta_compress, CompressedDelta, DeltaCompressConfig, SizeReport};
use dz_kernels::decoupled::DecoupledBatch;
use dz_kernels::{AdapterBatch, AdapterView};
use dz_model::lora::LoraAdapter;
use dz_model::rosa::RosaAdapter;
use dz_model::tasks::Corpus;
use dz_model::transformer::Params;
pub use dz_serve::{
    chrome_trace_json, write_chrome_trace, AttributedRequest, CauseBreakdown, Causes, ToppingKind,
    TraceConfig, TraceEvent, TraceLog, TraceTrack, Tracer, CAUSE_NAMES,
};
pub use dz_serve::{
    ClusterConfig, ClusterPrefetch, ClusterReport, ClusterSim, CostModel, DeltaStoreBinding,
    DeltaZipConfig, EngineBuilder, LeastLoadedRouter, LoadProfile, Metrics, PlacementAwareRouter,
    PlacementPlan, PopularityPrefetch, PrefetchConfig, PrefetchHint, PrefetchPolicy, Prefetcher,
    QueueLookahead, RoundRobinRouter, Router, SwapStats, ToppingsStats, TransferTimeline,
    VariantCatalog, VariantKind, VariantSpec,
};
use dz_serve::{DeltaZipEngine, Engine};
pub use dz_store::{
    ArtifactId, DecodeStats, DecodeThroughput, DecodedFetch, PrefetchOutcome, Registry,
    TieredDeltaStore, Warmth,
};
use dz_workload::Trace;
pub use manager::{params_hash, BaseId, ModelManager, VariantArtifact, VariantId, VariantInfo};

/// Errors surfaced by the public API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DzError {
    /// A name was registered twice.
    DuplicateName(String),
    /// The referenced base does not exist.
    UnknownBase,
    /// The referenced variant does not exist.
    UnknownVariant,
    /// A variant's shape does not match its base.
    ShapeMismatch,
    /// The requested operation needs a delta variant, not an adapter.
    NotADelta,
    /// One batch mixed delta and adapter variants; the paper serves the
    /// two paths in separate batches (§8).
    MixedServingPaths,
    /// The artifact store failed (I/O, corruption, or lineage mismatch).
    Storage(String),
}

impl std::fmt::Display for DzError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DzError::DuplicateName(n) => write!(f, "name already registered: {n}"),
            DzError::UnknownBase => write!(f, "unknown base model"),
            DzError::UnknownVariant => write!(f, "unknown variant"),
            DzError::ShapeMismatch => write!(f, "variant shape does not match base"),
            DzError::NotADelta => write!(f, "operation requires a compressed-delta variant"),
            DzError::MixedServingPaths => {
                write!(f, "deltas and adapters must be served in separate batches")
            }
            DzError::Storage(msg) => write!(f, "artifact store: {msg}"),
        }
    }
}

impl std::error::Error for DzError {}

/// The DeltaZip system facade.
#[derive(Default)]
pub struct DeltaZip {
    manager: ModelManager,
    /// Calibration sequences per base (sampled at registration).
    calib_size: usize,
    calib_seed: u64,
}

impl DeltaZip {
    /// Creates an empty system with the paper's calibration defaults
    /// (a small sample of generic sequences, 256 in the paper; scaled to
    /// the tiny models here).
    pub fn new() -> Self {
        DeltaZip {
            manager: ModelManager::default(),
            calib_size: 16,
            calib_seed: 0xCA11B,
        }
    }

    /// Overrides the calibration sample size.
    pub fn with_calibration(mut self, size: usize, seed: u64) -> Self {
        self.calib_size = size;
        self.calib_seed = seed;
        self
    }

    /// Access to the model manager (lineage, metadata).
    pub fn manager(&self) -> &ModelManager {
        &self.manager
    }

    /// Registers a pre-trained base model.
    pub fn register_base(&mut self, name: &str, params: Params) -> Result<BaseId, DzError> {
        self.manager.add_base(name, params)
    }

    /// Registers a full-model-tuned variant: extracts the delta against the
    /// base, runs ΔCompress with a synthetic calibration set, and stores the
    /// packed artifact in the delta zoo.
    pub fn register_fmt_variant(
        &mut self,
        name: &str,
        base: BaseId,
        finetuned: &Params,
        config: DeltaCompressConfig,
    ) -> Result<VariantId, DzError> {
        let base_params = self.manager.base_params(base).ok_or(DzError::UnknownBase)?;
        if base_params.config != finetuned.config {
            return Err(DzError::ShapeMismatch);
        }
        let corpus = Corpus::new(base_params.config.max_seq);
        let calib = calibration_set(&corpus, self.calib_size, self.calib_seed);
        let (delta, _) = delta_compress(base_params, finetuned, &calib, config);
        self.manager
            .add_variant(name, base, VariantArtifact::Delta(Box::new(delta)))
    }

    /// Registers a full-model-tuned variant compressed with any method-zoo
    /// codec (BitDelta, Delta-CoMe, or the starred pipeline behind the
    /// [`DeltaCodec`] trait). The resulting artifact persists, serves, and
    /// simulates exactly like a [`register_fmt_variant`] delta — only the
    /// packed format (and therefore the swap-in bytes) differs.
    ///
    /// [`register_fmt_variant`]: Self::register_fmt_variant
    pub fn register_fmt_variant_with(
        &mut self,
        name: &str,
        base: BaseId,
        finetuned: &Params,
        codec: &dyn DeltaCodec,
    ) -> Result<VariantId, DzError> {
        let base_params = self.manager.base_params(base).ok_or(DzError::UnknownBase)?;
        if base_params.config != finetuned.config {
            return Err(DzError::ShapeMismatch);
        }
        let corpus = Corpus::new(base_params.config.max_seq);
        let calib = calibration_set(&corpus, self.calib_size, self.calib_seed);
        let (delta, _) = codec.compress(base_params, finetuned, &calib);
        self.manager
            .add_variant(name, base, VariantArtifact::Delta(Box::new(delta)))
    }

    /// Registers a LoRA adapter variant (served via the PEFT path).
    pub fn register_lora(
        &mut self,
        name: &str,
        base: BaseId,
        adapter: LoraAdapter,
    ) -> Result<VariantId, DzError> {
        self.manager
            .add_variant(name, base, VariantArtifact::Lora(Box::new(adapter)))
    }

    /// Registers a RoSA adapter variant (low-rank + sparse, §8). Served via
    /// the PEFT path with its sparse component priced per non-zero.
    pub fn register_rosa(
        &mut self,
        name: &str,
        base: BaseId,
        adapter: RosaAdapter,
    ) -> Result<VariantId, DzError> {
        self.manager
            .add_variant(name, base, VariantArtifact::Rosa(Box::new(adapter)))
    }

    /// Greedy generation for a single variant through the decoupled path.
    pub fn generate(
        &self,
        variant: VariantId,
        prompt: &[usize],
        max_new: usize,
    ) -> Result<Vec<usize>, DzError> {
        let outs = self.generate_batch(&[(variant, prompt.to_vec())], max_new)?;
        Ok(outs.into_iter().next().expect("one request in, one out"))
    }

    /// Batched greedy generation across variants **of the same base**.
    ///
    /// Delta variants run through the shared-base GEMM + SBMM decoupled
    /// path (Eq. 2); LoRA/RoSA variants run through the SGMV adapter path.
    /// Mirroring §8's coarse-grained co-serving, one batch must be all
    /// deltas or all adapters — mixing returns
    /// [`DzError::MixedServingPaths`].
    pub fn generate_batch(
        &self,
        requests: &[(VariantId, Vec<usize>)],
        max_new: usize,
    ) -> Result<Vec<Vec<usize>>, DzError> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        let first_info = self
            .manager
            .variant(requests[0].0)
            .ok_or(DzError::UnknownVariant)?;
        let base_id = first_info.base;
        let is_delta = matches!(first_info.artifact, VariantArtifact::Delta(_));
        for (vid, _) in requests {
            let info = self.manager.variant(*vid).ok_or(DzError::UnknownVariant)?;
            if info.base != base_id {
                return Err(DzError::ShapeMismatch);
            }
            if matches!(info.artifact, VariantArtifact::Delta(_)) != is_delta {
                return Err(DzError::MixedServingPaths);
            }
        }
        if is_delta {
            self.generate_batch_deltas(base_id, requests, max_new)
        } else {
            self.generate_batch_adapters(base_id, requests, max_new)
        }
    }

    /// Delta-path batch: shared base GEMM plus SBMM over packed deltas.
    fn generate_batch_deltas(
        &self,
        base_id: BaseId,
        requests: &[(VariantId, Vec<usize>)],
        max_new: usize,
    ) -> Result<Vec<Vec<usize>>, DzError> {
        let base = self
            .manager
            .base_params(base_id)
            .ok_or(DzError::UnknownBase)?;
        let mut deltas: Vec<&CompressedDelta> = Vec::new();
        let mut slot_of_variant: Vec<(VariantId, usize)> = Vec::new();
        for (vid, _) in requests {
            let info = self.manager.variant(*vid).ok_or(DzError::UnknownVariant)?;
            let VariantArtifact::Delta(d) = &info.artifact else {
                return Err(DzError::NotADelta);
            };
            if !slot_of_variant.iter().any(|(v, _)| v == vid) {
                deltas.push(d);
                slot_of_variant.push((*vid, deltas.len() - 1));
            }
        }
        let mut batch = DecoupledBatch::new(base, deltas);
        let mut slots = Vec::with_capacity(requests.len());
        for (vid, prompt) in requests {
            let delta_slot = slot_of_variant
                .iter()
                .find(|(v, _)| v == vid)
                .map(|&(_, s)| s)
                .expect("registered above");
            slots.push(batch.admit(delta_slot, prompt));
        }
        for _ in 0..max_new {
            batch.decode_step();
        }
        Ok(slots
            .into_iter()
            .map(|s| batch.generated(s).to_vec())
            .collect())
    }

    /// Adapter-path batch: shared base GEMM plus grouped SGMV products.
    fn generate_batch_adapters(
        &self,
        base_id: BaseId,
        requests: &[(VariantId, Vec<usize>)],
        max_new: usize,
    ) -> Result<Vec<Vec<usize>>, DzError> {
        let base = self
            .manager
            .base_params(base_id)
            .ok_or(DzError::UnknownBase)?;
        let mut views: Vec<AdapterView<'_>> = Vec::new();
        let mut slot_of_variant: Vec<(VariantId, usize)> = Vec::new();
        for (vid, _) in requests {
            if slot_of_variant.iter().any(|(v, _)| v == vid) {
                continue;
            }
            let info = self.manager.variant(*vid).ok_or(DzError::UnknownVariant)?;
            let view = match &info.artifact {
                VariantArtifact::Lora(a) => AdapterView::from_lora(a),
                VariantArtifact::Rosa(a) => AdapterView::from_rosa(a),
                VariantArtifact::Delta(_) => return Err(DzError::MixedServingPaths),
            };
            views.push(view);
            slot_of_variant.push((*vid, views.len() - 1));
        }
        let mut batch = AdapterBatch::new(base, views);
        let mut slots = Vec::with_capacity(requests.len());
        for (vid, prompt) in requests {
            let adapter_slot = slot_of_variant
                .iter()
                .find(|(v, _)| v == vid)
                .map(|&(_, s)| s)
                .expect("registered above");
            slots.push(batch.admit(adapter_slot, prompt));
        }
        for _ in 0..max_new {
            batch.decode_step();
        }
        Ok(slots
            .into_iter()
            .map(|s| batch.generated(s).to_vec())
            .collect())
    }

    /// Reconstructs the dense fine-tuned parameters of a delta variant
    /// (for accuracy evaluation).
    pub fn reconstruct(&self, variant: VariantId) -> Result<Params, DzError> {
        let info = self
            .manager
            .variant(variant)
            .ok_or(DzError::UnknownVariant)?;
        let base = self
            .manager
            .base_params(info.base)
            .ok_or(DzError::UnknownBase)?;
        match &info.artifact {
            VariantArtifact::Delta(d) => Ok(d.reconstruct(base)),
            VariantArtifact::Lora(a) => Ok(a.merge(base)),
            VariantArtifact::Rosa(a) => Ok(a.merge(base)),
        }
    }

    /// Size accounting of a delta variant.
    pub fn size_report(&self, variant: VariantId) -> Result<SizeReport, DzError> {
        let info = self
            .manager
            .variant(variant)
            .ok_or(DzError::UnknownVariant)?;
        match &info.artifact {
            VariantArtifact::Delta(d) => Ok(d.report),
            VariantArtifact::Lora(_) | VariantArtifact::Rosa(_) => Err(DzError::NotADelta),
        }
    }

    /// Replays a trace on the calibrated GPU performance model with the
    /// DeltaZip engine (the paper's end-to-end serving path).
    pub fn simulate(&self, trace: &Trace, cost: CostModel, config: DeltaZipConfig) -> Metrics {
        DeltaZipEngine::new(cost, config).run(trace)
    }

    /// Persists a delta variant into the registry as a `.dza` artifact
    /// stamped with its base's lineage hash.
    pub fn persist_variant(
        &self,
        variant: VariantId,
        registry: &Registry,
    ) -> Result<ArtifactId, DzError> {
        self.manager.persist_variant(variant, registry)
    }

    /// Registers a variant decoded from a stored `.dza` artifact after
    /// verifying its lineage against `base`.
    pub fn register_variant_from_artifact(
        &mut self,
        base: BaseId,
        registry: &Registry,
        id: &ArtifactId,
    ) -> Result<VariantId, DzError> {
        self.manager
            .register_variant_from_artifact(base, registry, id)
    }

    /// Replays a trace across a multi-replica cluster behind a pluggable
    /// routing policy (round-robin, least-loaded, or placement-aware) —
    /// the fleet-scale serving path. See
    /// [`dz_serve::cluster`] for routers, placement plans, and SLO-aware
    /// admission control.
    pub fn simulate_cluster(
        &self,
        trace: &Trace,
        costs: Vec<CostModel>,
        config: ClusterConfig,
        router: Box<dyn Router>,
    ) -> ClusterReport {
        ClusterSim::new(costs, config, router).run(trace)
    }

    /// Replays a trace with the engine bound to a tiered artifact store:
    /// per-request load waits reflect each artifact's real compressed
    /// bytes (host hit → PCIe only; miss → disk + PCIe). Returns the
    /// binding so callers can inspect the store's load accounting.
    pub fn simulate_with_store(
        &self,
        trace: &Trace,
        cost: CostModel,
        config: DeltaZipConfig,
        binding: DeltaStoreBinding,
    ) -> (Metrics, DeltaStoreBinding) {
        let mut engine = EngineBuilder::new(cost)
            .scheduler(config)
            .store(binding)
            .build();
        let metrics = engine.run(trace);
        let binding = engine.delta_store.take().expect("binding attached above");
        (metrics, binding)
    }

    /// Replays a trace through the unified toppings engine: each model's
    /// [`VariantKind`] (base, LoRA, delta, or stacked delta+LoRA) comes
    /// from the catalog, and one continuous batch serves all four kinds
    /// subject to the scheduler's `max_toppings_per_batch` cap — delta
    /// requests dispatch through SBMM, adapters through SGMV.
    ///
    /// ```
    /// use deltazip::{CostModel, DeltaZip, DeltaZipConfig, VariantCatalog};
    /// use dz_gpusim::shapes::ModelShape;
    /// use dz_gpusim::spec::NodeSpec;
    /// use dz_workload::{PopularityDist, Trace, TraceSpec};
    ///
    /// let dz = DeltaZip::new();
    /// let trace = Trace::generate(TraceSpec {
    ///     n_models: 6,
    ///     arrival_rate: 1.0,
    ///     duration_s: 10.0,
    ///     popularity: PopularityDist::Zipf { alpha: 1.5 },
    ///     seed: 7,
    /// });
    /// let cost = CostModel::new(NodeSpec::a800_node(4), ModelShape::llama13b());
    /// let metrics = dz.simulate_toppings(
    ///     &trace,
    ///     cost,
    ///     DeltaZipConfig::default(),
    ///     VariantCatalog::interleaved(6, 16),
    /// );
    /// assert_eq!(metrics.len(), trace.len());
    /// assert_eq!(metrics.toppings.total_reqs(), trace.len());
    /// ```
    pub fn simulate_toppings(
        &self,
        trace: &Trace,
        cost: CostModel,
        config: DeltaZipConfig,
        catalog: VariantCatalog,
    ) -> Metrics {
        EngineBuilder::new(cost)
            .scheduler(config)
            .catalog(catalog)
            .build()
            .run(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dz_model::lora::LoraConfig;
    use dz_model::tasks::SentimentTask;
    use dz_model::train::{finetune_fmt, pretrain, TrainConfig};
    use dz_model::transformer::test_config;
    use dz_tensor::Rng;

    fn trained() -> (Params, Params) {
        let cfg = test_config();
        let mut rng = Rng::seeded(1);
        let mut base = Params::init(cfg, &mut rng);
        let corpus = Corpus::new(cfg.max_seq);
        pretrain(&mut base, &corpus, TrainConfig::pretrain(40));
        let mut tuned = base.clone();
        finetune_fmt(&mut tuned, &SentimentTask, TrainConfig::finetune(30));
        (base, tuned)
    }

    #[test]
    fn simulate_cluster_through_facade() {
        use dz_gpusim::shapes::ModelShape;
        use dz_gpusim::spec::NodeSpec;
        use dz_workload::{PopularityDist, TraceSpec};

        let dz = DeltaZip::new();
        let trace = Trace::generate(TraceSpec {
            n_models: 6,
            arrival_rate: 1.0,
            duration_s: 20.0,
            popularity: PopularityDist::Zipf { alpha: 1.5 },
            seed: 5,
        });
        let costs = vec![CostModel::new(NodeSpec::a800_node(2), ModelShape::llama13b()); 2];
        let plan = PlacementPlan::from_popularity(trace.spec.popularity, 6, 2);
        let report = dz.simulate_cluster(
            &trace,
            costs,
            ClusterConfig::replicas(2),
            Box::new(PlacementAwareRouter::new(plan)),
        );
        assert_eq!(report.merged.len(), trace.len());
        assert_eq!(report.goodput(), 1.0);
    }

    #[test]
    fn register_and_generate() {
        let (base, tuned) = trained();
        let mut dz = DeltaZip::new();
        let b = dz.register_base("base", base).unwrap();
        let v = dz
            .register_fmt_variant("sent", b, &tuned, DeltaCompressConfig::starred(4))
            .unwrap();
        let out = dz.generate(v, &[1, 20, 21, 2], 3).unwrap();
        assert_eq!(out.len(), 3);
        // Output must match serving the reconstructed dense model.
        let rec = dz.reconstruct(v).unwrap();
        let want = dz_model::eval::greedy_generate(&rec, &[1, 20, 21, 2], 3);
        assert_eq!(out, want);
    }

    #[test]
    fn duplicate_names_rejected() {
        let (base, _) = trained();
        let mut dz = DeltaZip::new();
        dz.register_base("b", base.clone()).unwrap();
        assert_eq!(
            dz.register_base("b", base),
            Err(DzError::DuplicateName("b".into()))
        );
    }

    #[test]
    fn shape_mismatch_rejected() {
        let (base, _) = trained();
        let mut dz = DeltaZip::new();
        let b = dz.register_base("b", base).unwrap();
        let mut other_cfg = test_config();
        other_cfg.d_model = 32;
        other_cfg.n_heads = 4;
        let mut rng = Rng::seeded(9);
        let other = Params::init(other_cfg, &mut rng);
        assert_eq!(
            dz.register_fmt_variant("x", b, &other, DeltaCompressConfig::starred(4)),
            Err(DzError::ShapeMismatch)
        );
    }

    #[test]
    fn lineage_and_reports() {
        let (base, tuned) = trained();
        let mut dz = DeltaZip::new();
        let b = dz.register_base("llama-base", base.clone()).unwrap();
        let v = dz
            .register_fmt_variant("vicuna", b, &tuned, DeltaCompressConfig::starred(2))
            .unwrap();
        let info = dz.manager().variant(v).unwrap();
        assert_eq!(info.base, b);
        assert_eq!(dz.manager().base_name(b).unwrap(), "llama-base");
        let report = dz.size_report(v).unwrap();
        assert!(report.model_ratio() > 1.0);
        // LoRA variants have no delta size report.
        let mut rng = Rng::seeded(3);
        let adapter = LoraAdapter::init(&base, LoraConfig::rank(2), &mut rng);
        let l = dz.register_lora("adapter", b, adapter).unwrap();
        assert_eq!(dz.size_report(l), Err(DzError::NotADelta));
    }

    #[test]
    fn batch_across_variants() {
        let (base, tuned) = trained();
        let mut tuned2 = base.clone();
        finetune_fmt(
            &mut tuned2,
            &dz_model::tasks::NliTask,
            TrainConfig::finetune(30),
        );
        let mut dz = DeltaZip::new();
        let b = dz.register_base("base", base).unwrap();
        let v1 = dz
            .register_fmt_variant("sent", b, &tuned, DeltaCompressConfig::starred(4))
            .unwrap();
        let v2 = dz
            .register_fmt_variant("nli", b, &tuned2, DeltaCompressConfig::starred(4))
            .unwrap();
        let outs = dz
            .generate_batch(
                &[
                    (v1, vec![1, 20, 21, 2]),
                    (v2, vec![1, 25, 2, 30, 4]),
                    (v1, vec![1, 22, 23, 2]),
                ],
                3,
            )
            .unwrap();
        assert_eq!(outs.len(), 3);
        assert!(outs.iter().all(|o| o.len() == 3));
        // Per-variant outputs must match single-variant serving.
        let solo = dz.generate(v2, &[1, 25, 2, 30, 4], 3).unwrap();
        assert_eq!(outs[1], solo);
    }

    #[test]
    fn codec_variants_register_serve_and_persist() {
        let (base, tuned) = trained();
        let mut dz = DeltaZip::new();
        let b = dz.register_base("base", base.clone()).unwrap();
        let v_bit = dz
            .register_fmt_variant_with("bit", b, &tuned, &BitDeltaCodec::per_row())
            .unwrap();
        let v_dc = dz
            .register_fmt_variant_with("dc", b, &tuned, &DeltaComeCodec::low_budget())
            .unwrap();
        // BitDelta packs far tighter than any multi-bit config.
        let bit_report = dz.size_report(v_bit).unwrap();
        assert!(
            bit_report.delta_ratio() >= 8.0,
            "{}",
            bit_report.delta_ratio()
        );
        // Serving a codec variant equals serving its reconstructed model.
        let prompt = [1usize, 20, 21, 2];
        for v in [v_bit, v_dc] {
            let out = dz.generate(v, &prompt, 3).unwrap();
            let rec = dz.reconstruct(v).unwrap();
            assert_eq!(out, dz_model::eval::greedy_generate(&rec, &prompt, 3));
        }
        // The codec id survives the registry round-trip.
        let registry = temp_registry("codec");
        let id = dz.persist_variant(v_bit, &registry).unwrap();
        let mut dz2 = DeltaZip::new();
        let b2 = dz2.register_base("base", base).unwrap();
        let v2 = dz2
            .register_variant_from_artifact(b2, &registry, &id)
            .unwrap();
        let info = dz2.manager().variant(v2).unwrap();
        let VariantArtifact::Delta(d) = &info.artifact else {
            panic!("expected delta artifact");
        };
        assert_eq!(d.codec, CodecId::BitDelta);
        assert_eq!(
            dz2.generate(v2, &prompt, 3).unwrap(),
            dz.generate(v_bit, &prompt, 3).unwrap()
        );
        std::fs::remove_dir_all(registry.root()).ok();
    }

    #[test]
    fn unknown_ids_error() {
        let dz = DeltaZip::new();
        assert_eq!(
            dz.generate(VariantId(99), &[1], 1),
            Err(DzError::UnknownVariant)
        );
    }

    #[test]
    fn rosa_registration_and_reconstruction() {
        let (base, _) = trained();
        let mut dz = DeltaZip::new();
        let b = dz.register_base("base", base.clone()).unwrap();
        let mut rng = Rng::seeded(11);
        let adapter = dz_model::rosa::RosaAdapter::init(
            &base,
            dz_model::rosa::RosaConfig::new(2, 0.01),
            &mut rng,
        );
        let v = dz.register_rosa("rosa-variant", b, adapter).unwrap();
        // Fresh adapter (B = 0, S = 0): reconstruction equals the base.
        let rec = dz.reconstruct(v).unwrap();
        let bts = base.tensors();
        for (a, c) in rec.tensors().into_iter().zip(bts) {
            assert!(a.max_abs_diff(c) < 1e-7);
        }
        // RoSA rides the adapter path: no delta size report, but it IS
        // servable, through SGMV — and matches the merged dense model.
        assert_eq!(dz.size_report(v), Err(DzError::NotADelta));
        let out = dz.generate(v, &[1, 2, 3], 2).unwrap();
        let want = dz_model::eval::greedy_generate(&rec, &[1, 2, 3], 2);
        assert_eq!(out, want);
        let info = dz.manager().variant(v).unwrap();
        assert!(info.artifact.swap_bytes() > 0);
    }

    #[test]
    fn adapter_batch_across_lora_and_rosa() {
        let (base, _) = trained();
        let mut dz = DeltaZip::new();
        let b = dz.register_base("base", base.clone()).unwrap();
        let mut rng = Rng::seeded(12);
        let mut lora = LoraAdapter::init(&base, dz_model::lora::LoraConfig::rank(2), &mut rng);
        dz_model::lora::finetune_lora(
            &base,
            &mut lora,
            &SentimentTask,
            TrainConfig {
                steps: 40,
                batch: 4,
                lr: 1e-2,
                clip: 1.0,
                seed: 13,
            },
        );
        let rosa = dz_model::rosa::RosaAdapter::init(
            &base,
            dz_model::rosa::RosaConfig::new(2, 0.02),
            &mut rng,
        );
        let v_lora = dz.register_lora("lora", b, lora).unwrap();
        let v_rosa = dz.register_rosa("rosa", b, rosa).unwrap();
        let p1 = vec![1usize, 20, 21, 2];
        let p2 = vec![1usize, 25, 2, 30, 4];
        let batch = dz
            .generate_batch(&[(v_lora, p1.clone()), (v_rosa, p2.clone())], 3)
            .unwrap();
        assert_eq!(batch[0], dz.generate(v_lora, &p1, 3).unwrap());
        assert_eq!(batch[1], dz.generate(v_rosa, &p2, 3).unwrap());
        // Adapter outputs equal dense merged-model serving.
        let merged = dz.reconstruct(v_lora).unwrap();
        assert_eq!(batch[0], dz_model::eval::greedy_generate(&merged, &p1, 3));
    }

    fn temp_registry(tag: &str) -> dz_store::Registry {
        let dir =
            std::env::temp_dir().join(format!("deltazip-core-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dz_store::Registry::open(&dir).expect("open registry")
    }

    #[test]
    fn persist_and_reload_variant_through_registry() {
        let (base, tuned) = trained();
        let mut dz = DeltaZip::new();
        let b = dz.register_base("base", base.clone()).unwrap();
        let v = dz
            .register_fmt_variant("sent", b, &tuned, DeltaCompressConfig::starred(4))
            .unwrap();
        let registry = temp_registry("roundtrip");
        let id = dz.persist_variant(v, &registry).unwrap();
        assert!(registry.contains(&id));
        registry.verify(&id).expect("artifact integrity");
        assert_eq!(registry.resolve("sent").unwrap(), id);

        // A fresh system with the same base loads the variant from disk and
        // serves identically.
        let mut dz2 = DeltaZip::new();
        let b2 = dz2.register_base("base", base).unwrap();
        let v2 = dz2
            .register_variant_from_artifact(b2, &registry, &id)
            .unwrap();
        assert_eq!(dz2.manager().variant(v2).unwrap().name, "sent");
        let prompt = [1usize, 20, 21, 2];
        assert_eq!(
            dz2.generate(v2, &prompt, 3).unwrap(),
            dz.generate(v, &prompt, 3).unwrap()
        );
        // Duplicate name on reload is still rejected.
        assert_eq!(
            dz2.register_variant_from_artifact(b2, &registry, &id),
            Err(DzError::DuplicateName("sent".into()))
        );
        std::fs::remove_dir_all(registry.root()).ok();
    }

    #[test]
    fn lineage_mismatch_is_rejected_on_reload() {
        let (base, tuned) = trained();
        let mut dz = DeltaZip::new();
        let b = dz.register_base("base", base).unwrap();
        let v = dz
            .register_fmt_variant("sent", b, &tuned, DeltaCompressConfig::starred(4))
            .unwrap();
        let registry = temp_registry("lineage");
        let id = dz.persist_variant(v, &registry).unwrap();

        // A system whose base has different weights must refuse the delta.
        let mut rng = Rng::seeded(77);
        let other = Params::init(test_config(), &mut rng);
        let mut dz2 = DeltaZip::new();
        let b2 = dz2.register_base("other-base", other).unwrap();
        match dz2.register_variant_from_artifact(b2, &registry, &id) {
            Err(DzError::Storage(msg)) => assert!(msg.contains("lineage"), "{msg}"),
            other => panic!("expected lineage error, got {other:?}"),
        }
        std::fs::remove_dir_all(registry.root()).ok();
    }

    #[test]
    fn adapters_cannot_be_persisted_as_deltas() {
        let (base, _) = trained();
        let mut dz = DeltaZip::new();
        let b = dz.register_base("base", base.clone()).unwrap();
        let mut rng = Rng::seeded(21);
        let adapter = LoraAdapter::init(&base, LoraConfig::rank(2), &mut rng);
        let l = dz.register_lora("adapter", b, adapter).unwrap();
        let registry = temp_registry("adapter");
        assert_eq!(dz.persist_variant(l, &registry), Err(DzError::NotADelta));
        std::fs::remove_dir_all(registry.root()).ok();
    }

    #[test]
    fn mixed_delta_adapter_batch_rejected() {
        let (base, tuned) = trained();
        let mut dz = DeltaZip::new();
        let b = dz.register_base("base", base.clone()).unwrap();
        let v_delta = dz
            .register_fmt_variant("delta", b, &tuned, DeltaCompressConfig::starred(4))
            .unwrap();
        let mut rng = Rng::seeded(14);
        let adapter = LoraAdapter::init(&base, dz_model::lora::LoraConfig::rank(2), &mut rng);
        let v_lora = dz.register_lora("adapter", b, adapter).unwrap();
        assert_eq!(
            dz.generate_batch(&[(v_delta, vec![1, 2]), (v_lora, vec![1, 2])], 1),
            Err(DzError::MixedServingPaths)
        );
    }
}
