//! Dense and fused-dequantize GEMM kernels.
//!
//! `quant_gemm` computes `y = x * W` directly from the packed
//! representation, decoding each output row's levels on the fly — the CPU
//! analog of a fused dequantization GEMM. For the 2:4 sparse format it only
//! touches the kept values, the same work-skipping sparse tensor cores do.

use dz_compress::pack::{CompressedMatrix, MatrixFormat};
use dz_tensor::Matrix;

/// Plain dense GEMM (the base-model path); thin alias over the tensor crate.
pub fn dense_gemm(x: &Matrix, w: &Matrix) -> Matrix {
    x.matmul(w)
}

/// Fused dequantize-GEMM: `y = x * dequant(cm)` without materializing the
/// dense weight matrix.
///
/// `x` is `(batch, d_in)`, the result `(batch, d_out)`.
///
/// # Panics
///
/// Panics if `x.cols() != cm.d_in`.
pub fn quant_gemm(x: &Matrix, cm: &CompressedMatrix) -> Matrix {
    assert_eq!(x.cols(), cm.d_in, "input width mismatch");
    let b = x.rows();
    let mut y = Matrix::zeros(b, cm.d_out);
    match cm.format {
        MatrixFormat::QuantDense => quant_gemm_dense(x, cm, &mut y),
        MatrixFormat::QuantSparse24 => quant_gemm_sparse(x, cm, &mut y),
    }
    y
}

fn quant_gemm_dense(x: &Matrix, cm: &CompressedMatrix, y: &mut Matrix) {
    let b = x.rows();
    let mut wrow = vec![0.0f32; cm.d_in];
    for r in 0..cm.d_out {
        // Decode output row r once.
        for (c, w) in wrow.iter_mut().enumerate() {
            let q = cm.level_at(r, c);
            *w = if q == 0 {
                0.0
            } else {
                q as f32 * cm.scale_at(r, c)
            };
        }
        for bi in 0..b {
            let xrow = x.row(bi);
            let mut acc = 0.0f32;
            for (xv, wv) in xrow.iter().zip(wrow.iter()) {
                acc += xv * wv;
            }
            y.set(bi, r, acc);
        }
    }
}

fn quant_gemm_sparse(x: &Matrix, cm: &CompressedMatrix, y: &mut Matrix) {
    let b = x.rows();
    // Walk only kept values: for each row, each 4-group stores 2 entries.
    let groups4 = cm.d_in / 4;
    for r in 0..cm.d_out {
        // Collect the (column, weight) pairs of this row once.
        let mut cols = [0usize; 2];
        let mut vals = [0.0f32; 2];
        for bi in 0..b {
            y.set(bi, r, 0.0);
        }
        for g4 in 0..groups4 {
            let kept_base = (r * cm.d_in) / 2 + g4 * 2;
            for slot in 0..2 {
                let i = kept_base + slot;
                let pos = (cm.indices[i / 4] >> ((i % 4) * 2)) & 0b11;
                let c = g4 * 4 + pos as usize;
                cols[slot] = c;
                let q = cm.level_at(r, c);
                vals[slot] = q as f32 * cm.scale_at(r, c);
            }
            for bi in 0..b {
                let xrow = x.row(bi);
                let add = xrow[cols[0]] * vals[0] + xrow[cols[1]] * vals[1];
                y.set(bi, r, y.get(bi, r) + add);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dz_compress::obs::{compress_matrix, ObsConfig};
    use dz_compress::quant::QuantSpec;
    use dz_tensor::Rng;

    fn packed_fixture(sparse: bool, bits: u32, seed: u64) -> (Matrix, CompressedMatrix) {
        let mut rng = Rng::seeded(seed);
        let w = Matrix::randn(16, 8, 0.05, &mut rng);
        let cfg = ObsConfig {
            spec: QuantSpec::new(bits, 16),
            sparse24: sparse,
            damp: 0.05,
        };
        let res = compress_matrix(&w, &Matrix::identity(16), &cfg);
        (res.reconstructed, res.packed)
    }

    #[test]
    fn dense_quant_gemm_matches_dequantized_matmul() {
        for bits in [2u32, 4, 8] {
            let (rec, cm) = packed_fixture(false, bits, bits as u64);
            let mut rng = Rng::seeded(99);
            let x = Matrix::randn(5, 16, 1.0, &mut rng);
            let fused = quant_gemm(&x, &cm);
            let reference = x.matmul(&rec);
            assert!(
                fused.max_abs_diff(&reference) < 1e-4,
                "bits={bits} diff {}",
                fused.max_abs_diff(&reference)
            );
        }
    }

    #[test]
    fn sparse_quant_gemm_matches_dequantized_matmul() {
        for bits in [2u32, 4] {
            let (rec, cm) = packed_fixture(true, bits, bits as u64 + 5);
            let mut rng = Rng::seeded(42);
            let x = Matrix::randn(7, 16, 1.0, &mut rng);
            let fused = quant_gemm(&x, &cm);
            let reference = x.matmul(&rec);
            assert!(
                fused.max_abs_diff(&reference) < 1e-4,
                "bits={bits} diff {}",
                fused.max_abs_diff(&reference)
            );
        }
    }

    #[test]
    fn single_row_batch_works() {
        let (rec, cm) = packed_fixture(true, 4, 11);
        let mut rng = Rng::seeded(3);
        let x = Matrix::randn(1, 16, 1.0, &mut rng);
        let fused = quant_gemm(&x, &cm);
        assert_eq!(fused.shape(), (1, 8));
        assert!(fused.max_abs_diff(&x.matmul(&rec)) < 1e-4);
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn width_mismatch_panics() {
        let (_, cm) = packed_fixture(false, 4, 13);
        let x = Matrix::zeros(2, 12);
        let _ = quant_gemm(&x, &cm);
    }
}
