//! CPU reference kernels over DeltaZip's packed delta formats.
//!
//! The paper's serving engine relies on three GPU kernels: a plain FP16
//! GEMM for the shared base model, a fused dequantize-GEMM for dense
//! quantized deltas, and a 2:4-sparse variant of it. On top of those sits
//! SBMM — *Selective Batched Matrix Multiplication* — which groups the
//! requests of a batch by their delta and runs one grouped multiply per
//! delta instead of one kernel launch per request.
//!
//! This crate provides bit-exact CPU implementations of each kernel. They
//! serve two purposes: (1) they make the decoupled serving path *actually
//! executable* (the examples generate text through base + packed delta),
//! and (2) they pin down the numerics that the `dz-gpusim` performance
//! model assigns costs to. Criterion benches over these kernels back the
//! CPU-side sanity check of Figure 6/7 shapes.
//!
//! The adapter side (Punica-style SGMV, extended with RoSA's sparse
//! component per §8) lives in [`sgmv`], with [`sgmv::AdapterBatch`] as the
//! adapter counterpart of [`decoupled::DecoupledBatch`].

pub mod decoupled;
pub mod qgemm;
pub(crate) mod runner;
pub mod sbmm;
pub mod sgmv;

pub use qgemm::{dense_gemm, quant_gemm};
pub use sbmm::{sbmm_grouped, sbmm_naive};
pub use sgmv::{sgmv_grouped, AdapterBatch, AdapterView};
