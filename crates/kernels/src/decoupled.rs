//! Decoupled base + delta execution (Eq. 2 of the paper), runnable on CPU.
//!
//! `y = w_fine-tuned x = (w_base + Δ) x ≈ w_base x  +  Δ x`
//!
//! The base-model product is shared and batched across *all* requests in
//! flight, regardless of which fine-tuned variant they target; the delta
//! product runs through SBMM over the packed low-precision matrices. The
//! decoupling happens at linear-layer granularity: results merge before
//! every non-linearity, exactly as §5.1 prescribes.
//!
//! [`DecoupledBatch`] is a miniature model runner: it decodes a batch of
//! requests for different variants in lock-step, with per-request KV caches
//! and per-variant uncompressed parameters (biases, norms, embeddings) taken
//! from each variant's delta artifact.

use crate::qgemm::dense_gemm;
use crate::runner::{argmax, attention_one, gelu_assign, layer_norm_row, Slot};
use crate::sbmm::sbmm_grouped;
use dz_compress::pack::CompressedMatrix;
use dz_compress::pipeline::CompressedDelta;
use dz_model::transformer::Params;
use dz_tensor::Matrix;

/// One decoupled linear layer: shared dense base GEMM plus SBMM deltas.
///
/// `x` is `(batch, d_in)`; `delta_idx[i]` selects the delta of request `i`.
///
/// # Panics
///
/// Panics on shape mismatches (see [`sbmm_grouped`]).
pub fn decoupled_linear(
    x: &Matrix,
    w_base: &Matrix,
    delta_idx: &[usize],
    deltas: &[&CompressedMatrix],
) -> Matrix {
    let mut y = dense_gemm(x, w_base);
    let yd = sbmm_grouped(x, delta_idx, deltas);
    y.add_assign(&yd);
    y
}

/// A batched, decoupled decoder over one base model and many variants.
pub struct DecoupledBatch<'a> {
    base: &'a Params,
    variants: Vec<&'a CompressedDelta>,
    slots: Vec<Slot>,
}

impl<'a> DecoupledBatch<'a> {
    /// Creates a runner over `base` and the given variant deltas.
    pub fn new(base: &'a Params, variants: Vec<&'a CompressedDelta>) -> Self {
        DecoupledBatch {
            base,
            variants,
            slots: Vec::new(),
        }
    }

    /// Admits a request for `variant`, processing its prompt token by token
    /// (prefill); returns the slot index.
    ///
    /// # Panics
    ///
    /// Panics if the variant index is out of range or the prompt is empty.
    pub fn admit(&mut self, variant: usize, prompt: &[usize]) -> usize {
        assert!(variant < self.variants.len(), "variant out of range");
        assert!(!prompt.is_empty(), "empty prompt");
        let last = *prompt.last().expect("non-empty");
        self.slots
            .push(Slot::new(variant, self.base.config.n_layers, last));
        let idx = self.slots.len() - 1;
        // Prefill: feed all but the last prompt token (its logits appear at
        // the first decode step).
        for &tok in &prompt[..prompt.len() - 1] {
            self.forward_one(idx, tok);
        }
        idx
    }

    /// Per-variant parameter lookup: uncompressed params come from the
    /// variant's `rest`, falling back to base for anything absent.
    fn rest_param(&self, variant: usize, name: &str) -> &Matrix {
        self.variants[variant]
            .rest
            .get(name)
            .unwrap_or_else(|| self.base.get(name).expect("param exists"))
    }

    /// Runs one token through one slot's cache (used for prefill).
    fn forward_one(&mut self, slot: usize, token: usize) {
        let _ = self.step_tokens(&[(slot, token)]);
    }

    /// Decodes one token for every active slot; returns `(slot, next)` pairs
    /// chosen greedily from the batched logits.
    pub fn decode_step(&mut self) -> Vec<(usize, usize)> {
        let work: Vec<(usize, usize)> = self
            .slots
            .iter()
            .enumerate()
            .map(|(i, s)| (i, s.last_token))
            .collect();
        let logits = self.step_tokens(&work);
        let mut out = Vec::with_capacity(work.len());
        for ((slot, _), row) in work.iter().zip(logits.iter()) {
            let next = argmax(row);
            self.slots[*slot].last_token = next;
            self.slots[*slot].generated.push(next);
            out.push((*slot, next));
        }
        out
    }

    /// Tokens generated so far by a slot.
    pub fn generated(&self, slot: usize) -> &[usize] {
        &self.slots[slot].generated
    }

    /// Core batched step: advances each `(slot, token)` by one position.
    ///
    /// All six linear projections run decoupled (shared base GEMM + SBMM);
    /// attention and normalization run per request against its own cache
    /// and variant parameters.
    fn step_tokens(&mut self, work: &[(usize, usize)]) -> Vec<Vec<f32>> {
        let cfg = &self.base.config;
        let d = cfg.d_model;
        let b = work.len();
        let delta_idx: Vec<usize> = work.iter().map(|(s, _)| self.slots[*s].variant).collect();

        // Embedding lookup per request (token + absolute position).
        let mut x = Matrix::zeros(b, d);
        for (bi, &(slot, token)) in work.iter().enumerate() {
            let pos = self.slots[slot].cache.len();
            assert!(pos < cfg.max_seq, "sequence overflow");
            let variant = self.slots[slot].variant;
            let tok_emb = self.rest_param(variant, "tok_emb");
            let pos_emb = self.rest_param(variant, "pos_emb");
            let row = x.row_mut(bi);
            for (c, v) in row.iter_mut().enumerate() {
                *v = tok_emb.get(token, c) + pos_emb.get(pos, c);
            }
        }

        let heads = cfg.n_heads;
        for li in 0..cfg.n_layers {
            let deltas_for = |field: &str| -> Vec<&CompressedMatrix> {
                self.variants
                    .iter()
                    .map(|v| {
                        v.layers
                            .get(&format!("layer{li}.{field}"))
                            .expect("delta layer exists")
                    })
                    .collect()
            };
            // Pre-attention LayerNorm, per request (variant gains/biases).
            let mut h = Matrix::zeros(b, d);
            for (bi, &(slot, _)) in work.iter().enumerate() {
                let variant = self.slots[slot].variant;
                let g = self
                    .rest_param(variant, &format!("layer{li}.ln1_g"))
                    .clone();
                let bb = self
                    .rest_param(variant, &format!("layer{li}.ln1_b"))
                    .clone();
                let src: Vec<f32> = x.row(bi).to_vec();
                layer_norm_row(&src, &g, &bb, h.row_mut(bi));
            }
            // Decoupled projections + per-variant biases.
            let base_l = &self.base.layers[li];
            let mut q = decoupled_linear(&h, &base_l.wq, &delta_idx, &deltas_for("wq"));
            let mut k = decoupled_linear(&h, &base_l.wk, &delta_idx, &deltas_for("wk"));
            let mut v = decoupled_linear(&h, &base_l.wv, &delta_idx, &deltas_for("wv"));
            for (bi, &(slot, _)) in work.iter().enumerate() {
                let variant = self.slots[slot].variant;
                for (name, m) in [("bq", &mut q), ("bk", &mut k), ("bv", &mut v)] {
                    let bias = self
                        .rest_param(variant, &format!("layer{li}.{name}"))
                        .clone();
                    for (c, val) in m.row_mut(bi).iter_mut().enumerate() {
                        *val += bias.get(0, c);
                    }
                }
            }
            // Attention per request against its own cache.
            let mut attn = Matrix::zeros(b, d);
            for (bi, &(slot, _)) in work.iter().enumerate() {
                let cache = &mut self.slots[slot].cache;
                attention_one(&q, &k, &v, bi, cache, li, heads, &mut attn);
            }
            let mut proj = decoupled_linear(&attn, &base_l.wo, &delta_idx, &deltas_for("wo"));
            for (bi, &(slot, _)) in work.iter().enumerate() {
                let variant = self.slots[slot].variant;
                let bias = self.rest_param(variant, &format!("layer{li}.bo")).clone();
                for (c, val) in proj.row_mut(bi).iter_mut().enumerate() {
                    *val += bias.get(0, c);
                }
            }
            x.add_assign(&proj);
            // MLP block.
            let mut h2 = Matrix::zeros(b, d);
            for (bi, &(slot, _)) in work.iter().enumerate() {
                let variant = self.slots[slot].variant;
                let g = self
                    .rest_param(variant, &format!("layer{li}.ln2_g"))
                    .clone();
                let bb = self
                    .rest_param(variant, &format!("layer{li}.ln2_b"))
                    .clone();
                let src: Vec<f32> = x.row(bi).to_vec();
                layer_norm_row(&src, &g, &bb, h2.row_mut(bi));
            }
            let mut up = decoupled_linear(&h2, &base_l.w1, &delta_idx, &deltas_for("w1"));
            for (bi, &(slot, _)) in work.iter().enumerate() {
                let variant = self.slots[slot].variant;
                let bias = self.rest_param(variant, &format!("layer{li}.b1")).clone();
                for (c, val) in up.row_mut(bi).iter_mut().enumerate() {
                    *val += bias.get(0, c);
                }
            }
            gelu_assign(&mut up);
            let mut down = decoupled_linear(&up, &base_l.w2, &delta_idx, &deltas_for("w2"));
            for (bi, &(slot, _)) in work.iter().enumerate() {
                let variant = self.slots[slot].variant;
                let bias = self.rest_param(variant, &format!("layer{li}.b2")).clone();
                for (c, val) in down.row_mut(bi).iter_mut().enumerate() {
                    *val += bias.get(0, c);
                }
            }
            x.add_assign(&down);
        }
        // Final norm + per-variant head.
        let mut out = Vec::with_capacity(b);
        for (bi, &(slot, _)) in work.iter().enumerate() {
            let variant = self.slots[slot].variant;
            let g = self.rest_param(variant, "lnf_g").clone();
            let bb = self.rest_param(variant, "lnf_b").clone();
            let mut xf = vec![0.0f32; d];
            let src: Vec<f32> = x.row(bi).to_vec();
            layer_norm_row(&src, &g, &bb, &mut xf);
            let head = self.rest_param(variant, "head");
            let mut logits = vec![0.0f32; self.base.config.vocab];
            for (c, l) in logits.iter_mut().enumerate() {
                let mut acc = 0.0f32;
                for (r, xv) in xf.iter().enumerate() {
                    acc += xv * head.get(r, c);
                }
                *l = acc;
            }
            out.push(logits);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dz_compress::calib::calibration_set;
    use dz_compress::pipeline::{delta_compress, DeltaCompressConfig};
    use dz_model::tasks::{Corpus, SentimentTask};
    use dz_model::train::{finetune_fmt, pretrain, TrainConfig};
    use dz_model::transformer::test_config;
    use dz_tensor::Rng;

    fn setup() -> (Params, CompressedDelta, Params) {
        let cfg = test_config();
        let mut rng = Rng::seeded(1);
        let mut base = Params::init(cfg, &mut rng);
        let corpus = Corpus::new(cfg.max_seq);
        pretrain(&mut base, &corpus, TrainConfig::pretrain(50));
        let mut tuned = base.clone();
        finetune_fmt(&mut tuned, &SentimentTask, TrainConfig::finetune(40));
        let calib = calibration_set(&corpus, 4, 3);
        let (cd, rec) = delta_compress(&base, &tuned, &calib, DeltaCompressConfig::starred(4));
        (base, cd, rec)
    }

    #[test]
    fn decoupled_linear_matches_fused_weights() {
        let (base, cd, _) = setup();
        let name = "layer0.wq";
        let w_base = base.get(name).unwrap();
        let delta = cd.layers.get(name).unwrap();
        let fused = w_base.add(&delta.dequantize());
        let mut rng = Rng::seeded(2);
        let x = Matrix::randn(5, w_base.rows(), 1.0, &mut rng);
        let decoupled = decoupled_linear(&x, w_base, &[0; 5], &[delta]);
        let reference = x.matmul(&fused);
        assert!(
            decoupled.max_abs_diff(&reference) < 1e-3,
            "diff {}",
            decoupled.max_abs_diff(&reference)
        );
    }

    #[test]
    fn batched_decode_matches_reconstructed_model() {
        let (base, cd, rec) = setup();
        let prompt = vec![1usize, 20, 21, 22, 2];
        // Reference: greedy generation on the reconstructed dense model.
        let want = dz_model::eval::greedy_generate(&rec, &prompt, 4);
        // Decoupled path.
        let mut batch = DecoupledBatch::new(&base, vec![&cd]);
        let slot = batch.admit(0, &prompt);
        for _ in 0..4 {
            batch.decode_step();
        }
        assert_eq!(batch.generated(slot), &want[..]);
    }

    #[test]
    fn multi_variant_batch_keeps_requests_separate() {
        let (base, cd, rec) = setup();
        // Second variant: a differently fine-tuned model.
        let cfg = base.config;
        let corpus = Corpus::new(cfg.max_seq);
        let mut tuned2 = base.clone();
        finetune_fmt(
            &mut tuned2,
            &dz_model::tasks::NliTask,
            TrainConfig::finetune(40),
        );
        let calib = calibration_set(&corpus, 4, 9);
        let (cd2, rec2) = delta_compress(&base, &tuned2, &calib, DeltaCompressConfig::starred(4));

        let p1 = vec![1usize, 20, 21, 2];
        let p2 = vec![1usize, 25, 2, 30, 4];
        let w1 = dz_model::eval::greedy_generate(&rec, &p1, 3);
        let w2 = dz_model::eval::greedy_generate(&rec2, &p2, 3);

        let mut batch = DecoupledBatch::new(&base, vec![&cd, &cd2]);
        let s1 = batch.admit(0, &p1);
        let s2 = batch.admit(1, &p2);
        for _ in 0..3 {
            batch.decode_step();
        }
        assert_eq!(batch.generated(s1), &w1[..], "variant 0 output diverged");
        assert_eq!(batch.generated(s2), &w2[..], "variant 1 output diverged");
    }
}
