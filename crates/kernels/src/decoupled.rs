//! Decoupled base + delta execution (Eq. 2 of the paper), runnable on CPU.
//!
//! `y = w_fine-tuned x = (w_base + Δ) x ≈ w_base x  +  Δ x`
//!
//! The base-model product is shared and batched across *all* requests in
//! flight, regardless of which fine-tuned variant they target; the delta
//! product runs through SBMM over the packed low-precision matrices. The
//! decoupling happens at linear-layer granularity: results merge before
//! every non-linearity, exactly as §5.1 prescribes.
//!
//! [`DecoupledBatch`] is a miniature model runner: it decodes a batch of
//! requests for different variants in lock-step, with per-request KV caches
//! and per-variant uncompressed parameters (biases, norms, embeddings) taken
//! from each variant's delta artifact.

use crate::qgemm::{dense_gemm, quant_gemm};
use crate::runner::{argmax, attention_one, gelu_assign, layer_norm_row, Slot};
use crate::sbmm::sbmm_grouped;
use dz_compress::pack::CompressedMatrix;
use dz_compress::pipeline::CompressedDelta;
use dz_model::transformer::Params;
use dz_tensor::Matrix;

/// One decoupled linear layer: shared dense base GEMM plus SBMM deltas.
///
/// `x` is `(batch, d_in)`; `delta_idx[i]` selects the delta of request `i`.
///
/// # Panics
///
/// Panics on shape mismatches (see [`sbmm_grouped`]).
pub fn decoupled_linear(
    x: &Matrix,
    w_base: &Matrix,
    delta_idx: &[usize],
    deltas: &[&CompressedMatrix],
) -> Matrix {
    let mut y = dense_gemm(x, w_base);
    let yd = sbmm_grouped(x, delta_idx, deltas);
    y.add_assign(&yd);
    y
}

/// A batched, decoupled decoder over one base model and many variants.
pub struct DecoupledBatch<'a> {
    base: &'a Params,
    variants: Vec<&'a CompressedDelta>,
    /// Dense delta copies for the variants (and only the variants) that
    /// use a non-quantized method-zoo codec (BitDelta / Delta-CoMe):
    /// those formats have no SBMM kernel, so their layers are dequantized
    /// once here and applied as dense per-request products. Quantized
    /// variants keep the packed SBMM path, also in mixed batches.
    dense_layers: Vec<Option<std::collections::BTreeMap<String, Matrix>>>,
    slots: Vec<Slot>,
}

impl<'a> DecoupledBatch<'a> {
    /// Creates a runner over `base` and the given variant deltas.
    pub fn new(base: &'a Params, variants: Vec<&'a CompressedDelta>) -> Self {
        let dense_layers = variants
            .iter()
            .map(|v| {
                let all_quant = v.layers.values().all(|l| l.as_quant().is_some());
                (!all_quant).then(|| {
                    v.layers
                        .iter()
                        .map(|(name, l)| (name.clone(), l.dequantize()))
                        .collect()
                })
            })
            .collect();
        DecoupledBatch {
            base,
            variants,
            dense_layers,
            slots: Vec::new(),
        }
    }

    /// Admits a request for `variant`, processing its prompt token by token
    /// (prefill); returns the slot index.
    ///
    /// # Panics
    ///
    /// Panics if the variant index is out of range or the prompt is empty.
    pub fn admit(&mut self, variant: usize, prompt: &[usize]) -> usize {
        assert!(variant < self.variants.len(), "variant out of range");
        assert!(!prompt.is_empty(), "empty prompt");
        let last = *prompt.last().expect("non-empty");
        self.slots
            .push(Slot::new(variant, self.base.config.n_layers, last));
        let idx = self.slots.len() - 1;
        // Prefill: feed all but the last prompt token (its logits appear at
        // the first decode step).
        for &tok in &prompt[..prompt.len() - 1] {
            self.forward_one(idx, tok);
        }
        idx
    }

    /// Per-variant parameter lookup: uncompressed params come from the
    /// variant's `rest`, falling back to base for anything absent.
    fn rest_param(&self, variant: usize, name: &str) -> &Matrix {
        self.variants[variant]
            .rest
            .get(name)
            .unwrap_or_else(|| self.base.get(name).expect("param exists"))
    }

    /// Runs one token through one slot's cache (used for prefill).
    fn forward_one(&mut self, slot: usize, token: usize) {
        let _ = self.step_tokens(&[(slot, token)]);
    }

    /// Decodes one token for every active slot; returns `(slot, next)` pairs
    /// chosen greedily from the batched logits.
    pub fn decode_step(&mut self) -> Vec<(usize, usize)> {
        let work: Vec<(usize, usize)> = self
            .slots
            .iter()
            .enumerate()
            .map(|(i, s)| (i, s.last_token))
            .collect();
        let logits = self.step_tokens(&work);
        let mut out = Vec::with_capacity(work.len());
        for ((slot, _), row) in work.iter().zip(logits.iter()) {
            let next = argmax(row);
            self.slots[*slot].last_token = next;
            self.slots[*slot].generated.push(next);
            out.push((*slot, next));
        }
        out
    }

    /// Tokens generated so far by a slot.
    pub fn generated(&self, slot: usize) -> &[usize] {
        &self.slots[slot].generated
    }

    /// Core batched step: advances each `(slot, token)` by one position.
    ///
    /// All six linear projections run decoupled (shared base GEMM + SBMM);
    /// attention and normalization run per request against its own cache
    /// and variant parameters.
    fn step_tokens(&mut self, work: &[(usize, usize)]) -> Vec<Vec<f32>> {
        let cfg = &self.base.config;
        let d = cfg.d_model;
        let b = work.len();
        let delta_idx: Vec<usize> = work.iter().map(|(s, _)| self.slots[*s].variant).collect();

        // Embedding lookup per request (token + absolute position).
        let mut x = Matrix::zeros(b, d);
        for (bi, &(slot, token)) in work.iter().enumerate() {
            let pos = self.slots[slot].cache.len();
            assert!(pos < cfg.max_seq, "sequence overflow");
            let variant = self.slots[slot].variant;
            let tok_emb = self.rest_param(variant, "tok_emb");
            let pos_emb = self.rest_param(variant, "pos_emb");
            let row = x.row_mut(bi);
            for (c, v) in row.iter_mut().enumerate() {
                *v = tok_emb.get(token, c) + pos_emb.get(pos, c);
            }
        }

        let heads = cfg.n_heads;
        for li in 0..cfg.n_layers {
            let variants = &self.variants;
            let dense_layers = &self.dense_layers;
            // Shared base GEMM + per-variant delta product. All-quant
            // batches take the grouped SBMM path outright; in mixed
            // batches, requests for quantized variants still run packed
            // SBMM (naive per-row) and only the non-quant variants use
            // their cached dense copies.
            let linear = move |x: &Matrix, w_base: &Matrix, idx: &[usize], field: &str| {
                let name = format!("layer{li}.{field}");
                if dense_layers.iter().all(Option::is_none) {
                    let deltas: Vec<&CompressedMatrix> = variants
                        .iter()
                        .map(|v| {
                            v.layers
                                .get(&name)
                                .expect("delta layer exists")
                                .as_quant()
                                .expect("all-quant batch")
                        })
                        .collect();
                    return decoupled_linear(x, w_base, idx, &deltas);
                }
                let mut y = dense_gemm(x, w_base);
                for (bi, &v) in idx.iter().enumerate() {
                    let xr = x.row(bi);
                    let yr = y.row_mut(bi);
                    match &dense_layers[v] {
                        // Non-quant variant: dense row product against the
                        // copy dequantized at construction.
                        Some(dense) => {
                            let d = dense.get(&name).expect("delta layer exists");
                            for (k, &xv) in xr.iter().enumerate() {
                                if xv == 0.0 {
                                    continue;
                                }
                                let drow = d.row(k);
                                for (j, yv) in yr.iter_mut().enumerate() {
                                    *yv += xv * drow[j];
                                }
                            }
                        }
                        // Quantized variant: the same fused quant_gemm the
                        // grouped SBMM path runs, on this request's row —
                        // per-row accumulation order is identical, so a
                        // quant variant's output is bit-identical whether
                        // or not non-quant variants share the batch.
                        None => {
                            let cm = variants[v]
                                .layers
                                .get(&name)
                                .expect("delta layer exists")
                                .as_quant()
                                .expect("variant without dense copy is quant");
                            let xi = Matrix::from_vec(1, xr.len(), xr.to_vec());
                            let yi = quant_gemm(&xi, cm);
                            for (j, yv) in yr.iter_mut().enumerate() {
                                *yv += yi.get(0, j);
                            }
                        }
                    }
                }
                y
            };
            // Pre-attention LayerNorm, per request (variant gains/biases).
            let mut h = Matrix::zeros(b, d);
            for (bi, &(slot, _)) in work.iter().enumerate() {
                let variant = self.slots[slot].variant;
                let g = self
                    .rest_param(variant, &format!("layer{li}.ln1_g"))
                    .clone();
                let bb = self
                    .rest_param(variant, &format!("layer{li}.ln1_b"))
                    .clone();
                let src: Vec<f32> = x.row(bi).to_vec();
                layer_norm_row(&src, &g, &bb, h.row_mut(bi));
            }
            // Decoupled projections + per-variant biases.
            let base_l = &self.base.layers[li];
            let mut q = linear(&h, &base_l.wq, &delta_idx, "wq");
            let mut k = linear(&h, &base_l.wk, &delta_idx, "wk");
            let mut v = linear(&h, &base_l.wv, &delta_idx, "wv");
            for (bi, &(slot, _)) in work.iter().enumerate() {
                let variant = self.slots[slot].variant;
                for (name, m) in [("bq", &mut q), ("bk", &mut k), ("bv", &mut v)] {
                    let bias = self
                        .rest_param(variant, &format!("layer{li}.{name}"))
                        .clone();
                    for (c, val) in m.row_mut(bi).iter_mut().enumerate() {
                        *val += bias.get(0, c);
                    }
                }
            }
            // Attention per request against its own cache.
            let mut attn = Matrix::zeros(b, d);
            for (bi, &(slot, _)) in work.iter().enumerate() {
                let cache = &mut self.slots[slot].cache;
                attention_one(&q, &k, &v, bi, cache, li, heads, &mut attn);
            }
            let mut proj = linear(&attn, &base_l.wo, &delta_idx, "wo");
            for (bi, &(slot, _)) in work.iter().enumerate() {
                let variant = self.slots[slot].variant;
                let bias = self.rest_param(variant, &format!("layer{li}.bo")).clone();
                for (c, val) in proj.row_mut(bi).iter_mut().enumerate() {
                    *val += bias.get(0, c);
                }
            }
            x.add_assign(&proj);
            // MLP block.
            let mut h2 = Matrix::zeros(b, d);
            for (bi, &(slot, _)) in work.iter().enumerate() {
                let variant = self.slots[slot].variant;
                let g = self
                    .rest_param(variant, &format!("layer{li}.ln2_g"))
                    .clone();
                let bb = self
                    .rest_param(variant, &format!("layer{li}.ln2_b"))
                    .clone();
                let src: Vec<f32> = x.row(bi).to_vec();
                layer_norm_row(&src, &g, &bb, h2.row_mut(bi));
            }
            let mut up = linear(&h2, &base_l.w1, &delta_idx, "w1");
            for (bi, &(slot, _)) in work.iter().enumerate() {
                let variant = self.slots[slot].variant;
                let bias = self.rest_param(variant, &format!("layer{li}.b1")).clone();
                for (c, val) in up.row_mut(bi).iter_mut().enumerate() {
                    *val += bias.get(0, c);
                }
            }
            gelu_assign(&mut up);
            let mut down = linear(&up, &base_l.w2, &delta_idx, "w2");
            for (bi, &(slot, _)) in work.iter().enumerate() {
                let variant = self.slots[slot].variant;
                let bias = self.rest_param(variant, &format!("layer{li}.b2")).clone();
                for (c, val) in down.row_mut(bi).iter_mut().enumerate() {
                    *val += bias.get(0, c);
                }
            }
            x.add_assign(&down);
        }
        // Final norm + per-variant head.
        let mut out = Vec::with_capacity(b);
        for (bi, &(slot, _)) in work.iter().enumerate() {
            let variant = self.slots[slot].variant;
            let g = self.rest_param(variant, "lnf_g").clone();
            let bb = self.rest_param(variant, "lnf_b").clone();
            let mut xf = vec![0.0f32; d];
            let src: Vec<f32> = x.row(bi).to_vec();
            layer_norm_row(&src, &g, &bb, &mut xf);
            let head = self.rest_param(variant, "head");
            let mut logits = vec![0.0f32; self.base.config.vocab];
            for (c, l) in logits.iter_mut().enumerate() {
                let mut acc = 0.0f32;
                for (r, xv) in xf.iter().enumerate() {
                    acc += xv * head.get(r, c);
                }
                *l = acc;
            }
            out.push(logits);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dz_compress::calib::calibration_set;
    use dz_compress::pipeline::{delta_compress, DeltaCompressConfig};
    use dz_model::tasks::{Corpus, SentimentTask};
    use dz_model::train::{finetune_fmt, pretrain, TrainConfig};
    use dz_model::transformer::test_config;
    use dz_tensor::Rng;

    fn setup() -> (Params, CompressedDelta, Params) {
        let cfg = test_config();
        let mut rng = Rng::seeded(1);
        let mut base = Params::init(cfg, &mut rng);
        let corpus = Corpus::new(cfg.max_seq);
        pretrain(&mut base, &corpus, TrainConfig::pretrain(50));
        let mut tuned = base.clone();
        finetune_fmt(&mut tuned, &SentimentTask, TrainConfig::finetune(40));
        let calib = calibration_set(&corpus, 4, 3);
        let (cd, rec) = delta_compress(&base, &tuned, &calib, DeltaCompressConfig::starred(4));
        (base, cd, rec)
    }

    #[test]
    fn decoupled_linear_matches_fused_weights() {
        let (base, cd, _) = setup();
        let name = "layer0.wq";
        let w_base = base.get(name).unwrap();
        let delta = cd.layers.get(name).unwrap().as_quant().unwrap();
        let fused = w_base.add(&delta.dequantize());
        let mut rng = Rng::seeded(2);
        let x = Matrix::randn(5, w_base.rows(), 1.0, &mut rng);
        let decoupled = decoupled_linear(&x, w_base, &[0; 5], &[delta]);
        let reference = x.matmul(&fused);
        assert!(
            decoupled.max_abs_diff(&reference) < 1e-3,
            "diff {}",
            decoupled.max_abs_diff(&reference)
        );
    }

    #[test]
    fn batched_decode_matches_reconstructed_model() {
        let (base, cd, rec) = setup();
        let prompt = vec![1usize, 20, 21, 22, 2];
        // Reference: greedy generation on the reconstructed dense model.
        let want = dz_model::eval::greedy_generate(&rec, &prompt, 4);
        // Decoupled path.
        let mut batch = DecoupledBatch::new(&base, vec![&cd]);
        let slot = batch.admit(0, &prompt);
        for _ in 0..4 {
            batch.decode_step();
        }
        assert_eq!(batch.generated(slot), &want[..]);
    }

    #[test]
    fn multi_variant_batch_keeps_requests_separate() {
        let (base, cd, rec) = setup();
        // Second variant: a differently fine-tuned model.
        let cfg = base.config;
        let corpus = Corpus::new(cfg.max_seq);
        let mut tuned2 = base.clone();
        finetune_fmt(
            &mut tuned2,
            &dz_model::tasks::NliTask,
            TrainConfig::finetune(40),
        );
        let calib = calibration_set(&corpus, 4, 9);
        let (cd2, rec2) = delta_compress(&base, &tuned2, &calib, DeltaCompressConfig::starred(4));

        let p1 = vec![1usize, 20, 21, 2];
        let p2 = vec![1usize, 25, 2, 30, 4];
        let w1 = dz_model::eval::greedy_generate(&rec, &p1, 3);
        let w2 = dz_model::eval::greedy_generate(&rec2, &p2, 3);

        let mut batch = DecoupledBatch::new(&base, vec![&cd, &cd2]);
        let s1 = batch.admit(0, &p1);
        let s2 = batch.admit(1, &p2);
        for _ in 0..3 {
            batch.decode_step();
        }
        assert_eq!(batch.generated(s1), &w1[..], "variant 0 output diverged");
        assert_eq!(batch.generated(s2), &w2[..], "variant 1 output diverged");
    }

    #[test]
    fn non_quant_codec_variants_serve_through_dense_fallback() {
        use dz_compress::codec::{BitDeltaCodec, DeltaCodec};

        let (base, cd_quant, _) = setup();
        let cfg = base.config;
        let corpus = Corpus::new(cfg.max_seq);
        let mut tuned2 = base.clone();
        finetune_fmt(
            &mut tuned2,
            &dz_model::tasks::NliTask,
            TrainConfig::finetune(40),
        );
        let calib = calibration_set(&corpus, 4, 9);
        // A BitDelta (sign/scale) variant has no SBMM kernel: the batch
        // must fall back to dense delta products and still match the
        // reconstructed model exactly — even mixed with a quantized one.
        let (cd_sign, rec_sign) = BitDeltaCodec::per_row().compress(&base, &tuned2, &calib);
        let p1 = vec![1usize, 20, 21, 2];
        let p2 = vec![1usize, 25, 2, 30, 4];
        let want_quant = {
            let mut solo = DecoupledBatch::new(&base, vec![&cd_quant]);
            let s = solo.admit(0, &p1);
            for _ in 0..3 {
                solo.decode_step();
            }
            solo.generated(s).to_vec()
        };
        let want_sign = dz_model::eval::greedy_generate(&rec_sign, &p2, 3);

        let mut batch = DecoupledBatch::new(&base, vec![&cd_quant, &cd_sign]);
        let s1 = batch.admit(0, &p1);
        let s2 = batch.admit(1, &p2);
        for _ in 0..3 {
            batch.decode_step();
        }
        assert_eq!(batch.generated(s1), &want_quant[..]);
        assert_eq!(batch.generated(s2), &want_sign[..]);
    }
}
