//! Shared machinery of the batched decode runners.
//!
//! [`crate::decoupled::DecoupledBatch`] (base + compressed deltas) and
//! [`crate::sgmv::AdapterBatch`] (base + LoRA/RoSA adapters) run the same
//! per-request transformer step and differ only in how each linear
//! projection is computed; the per-request pieces (KV-cache attention,
//! layer norm, slot bookkeeping) live here.

use dz_model::transformer::KvCache;
use dz_tensor::Matrix;

/// A request being decoded by a batch runner.
#[derive(Debug)]
pub(crate) struct Slot {
    /// Index of the variant/adapter the request targets.
    pub variant: usize,
    /// Per-request KV cache.
    pub cache: KvCache,
    /// Last token fed (next decode input).
    pub last_token: usize,
    /// Tokens generated so far.
    pub generated: Vec<usize>,
}

impl Slot {
    /// Fresh slot for `variant` starting at `last_token`.
    pub fn new(variant: usize, n_layers: usize, last_token: usize) -> Self {
        Slot {
            variant,
            cache: KvCache::new(n_layers),
            last_token,
            generated: Vec::new(),
        }
    }
}

/// Row-wise LayerNorm with gain `g` and bias `b` (both `(1, n)`).
pub(crate) fn layer_norm_row(x: &[f32], g: &Matrix, b: &Matrix, out: &mut [f32]) {
    const EPS: f32 = 1e-5;
    let n = x.len();
    let mean = x.iter().sum::<f32>() / n as f32;
    let var = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
    let inv = 1.0 / (var + EPS).sqrt();
    for c in 0..n {
        out[c] = (x[c] - mean) * inv * g.get(0, c) + b.get(0, c);
    }
}

/// One request's causal attention for layer `li` against its cache.
///
/// `q`/`k`/`v` hold the batch's projections; row `bi` belongs to this
/// request. The layer's cache is extended with the new key/value row and
/// the attention output is written to `out` row `bi`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn attention_one(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    bi: usize,
    cache: &mut KvCache,
    li: usize,
    heads: usize,
    out: &mut Matrix,
) {
    let d = q.cols();
    let dh = d / heads;
    let scale = 1.0 / (dh as f32).sqrt();
    let k_new = k.submatrix(bi, 0, 1, d);
    let v_new = v.submatrix(bi, 0, 1, d);
    // Check this layer's cache specifically: within one step the earlier
    // layers have already been extended.
    let layer_empty = cache.k[li].cols() == 0;
    let (k_all, v_all) = if layer_empty {
        (k_new, v_new)
    } else {
        (
            Matrix::vstack(&[&cache.k[li], &k_new]),
            Matrix::vstack(&[&cache.v[li], &v_new]),
        )
    };
    let total = k_all.rows();
    for hi in 0..heads {
        let mut scores = vec![0.0f32; total];
        for (j, s) in scores.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for c in 0..dh {
                acc += q.get(bi, hi * dh + c) * k_all.get(j, hi * dh + c);
            }
            *s = acc * scale;
        }
        let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for s in scores.iter_mut() {
            *s = (*s - max).exp();
            sum += *s;
        }
        let inv = 1.0 / sum;
        for c in 0..dh {
            let mut acc = 0.0f32;
            for (j, s) in scores.iter().enumerate() {
                acc += s * inv * v_all.get(j, hi * dh + c);
            }
            out.set(bi, hi * dh + c, acc);
        }
    }
    cache.k[li] = k_all;
    cache.v[li] = v_all;
}

/// Greedy argmax over a logits row.
pub(crate) fn argmax(row: &[f32]) -> usize {
    row.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
        .map(|(i, _)| i)
        .expect("non-empty vocab")
}

/// GELU (tanh approximation), applied in place.
pub(crate) fn gelu_assign(m: &mut Matrix) {
    const C: f32 = 0.797_884_6;
    m.map_assign(|v| 0.5 * v * (1.0 + (C * (v + 0.044_715 * v * v * v)).tanh()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_picks_largest() {
        assert_eq!(argmax(&[0.1, 3.0, -2.0]), 1);
        assert_eq!(argmax(&[5.0]), 0);
    }

    #[test]
    fn layer_norm_row_normalizes() {
        let g = Matrix::full(1, 4, 1.0);
        let b = Matrix::zeros(1, 4);
        let mut out = vec![0.0f32; 4];
        layer_norm_row(&[1.0, 2.0, 3.0, 4.0], &g, &b, &mut out);
        let mean: f32 = out.iter().sum::<f32>() / 4.0;
        let var: f32 = out.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }
}
