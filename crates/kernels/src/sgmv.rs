//! Punica-style SGMV adapter serving, runnable on CPU.
//!
//! Adapter variants (LoRA, and RoSA per §8) are served like deltas —
//! shared base GEMM plus a grouped per-adapter product — but the adapter
//! product is two skinny matmuls `(x A) B` scaled by `alpha/r` (SGMV:
//! segmented gather matrix-vector), plus an optional coordinate-format
//! sparse term for RoSA. [`AdapterBatch`] mirrors
//! [`crate::decoupled::DecoupledBatch`]: it decodes a batch of requests for
//! different adapters of one base in lock-step with per-request KV caches.

use crate::qgemm::dense_gemm;
use crate::runner::{argmax, attention_one, gelu_assign, layer_norm_row, Slot};
use dz_model::lora::LoraAdapter;
use dz_model::rosa::RosaAdapter;
use dz_model::transformer::Params;
use dz_tensor::Matrix;
use std::collections::BTreeMap;

/// A sparse matrix in coordinate format (RoSA's sparse component).
#[derive(Debug, Clone)]
pub struct SparseCoo {
    shape: (usize, usize),
    rows: Vec<u32>,
    cols: Vec<u32>,
    vals: Vec<f32>,
}

impl SparseCoo {
    /// Extracts the non-zeros of `values` on the support of `mask`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn from_masked(values: &Matrix, mask: &Matrix) -> Self {
        assert_eq!(values.shape(), mask.shape(), "mask shape mismatch");
        let (r, c) = values.shape();
        let mut out = SparseCoo {
            shape: (r, c),
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        };
        for i in 0..r {
            for j in 0..c {
                if mask.get(i, j) != 0.0 {
                    out.rows.push(i as u32);
                    out.cols.push(j as u32);
                    out.vals.push(values.get(i, j));
                }
            }
        }
        out
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Matrix shape `(d_in, d_out)`.
    pub fn shape(&self) -> (usize, usize) {
        self.shape
    }

    /// Accumulates `y += x * S` for one activation row.
    ///
    /// # Panics
    ///
    /// Panics if row lengths do not match the sparse shape.
    pub fn accumulate_row(&self, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.shape.0, "input row length mismatch");
        assert_eq!(y.len(), self.shape.1, "output row length mismatch");
        for ((&r, &c), &v) in self.rows.iter().zip(&self.cols).zip(&self.vals) {
            y[c as usize] += x[r as usize] * v;
        }
    }
}

/// One adapted projection: `y += scale * (x A) B (+ x S)`.
pub struct AdapterWeights<'a> {
    /// Down projection `(d_in, r)`.
    pub a: &'a Matrix,
    /// Up projection `(r, d_out)`.
    pub b: &'a Matrix,
    /// Effective scale `alpha / r`.
    pub scale: f32,
    /// RoSA sparse component, if any.
    pub sparse: Option<SparseCoo>,
}

/// A variant's adapter resolved to per-projection weights, keyed by the
/// stable parameter name (`layer{i}.{field}`).
pub struct AdapterView<'a> {
    by_name: BTreeMap<String, AdapterWeights<'a>>,
}

impl<'a> AdapterView<'a> {
    /// View of a plain LoRA adapter.
    pub fn from_lora(adapter: &'a LoraAdapter) -> Self {
        let scale = adapter.scale();
        let by_name = adapter
            .pairs
            .iter()
            .map(|p| {
                (
                    p.name.clone(),
                    AdapterWeights {
                        a: &p.a,
                        b: &p.b,
                        scale,
                        sparse: None,
                    },
                )
            })
            .collect();
        AdapterView { by_name }
    }

    /// View of a RoSA adapter (low-rank pairs plus sparse components).
    pub fn from_rosa(adapter: &'a RosaAdapter) -> Self {
        let scale = adapter.scale();
        let by_name = adapter
            .pairs
            .iter()
            .zip(&adapter.sparse)
            .map(|(p, s)| {
                (
                    p.name.clone(),
                    AdapterWeights {
                        a: &p.a,
                        b: &p.b,
                        scale,
                        sparse: Some(SparseCoo::from_masked(&s.values, &s.mask)),
                    },
                )
            })
            .collect();
        AdapterView { by_name }
    }

    /// The adapter weights for a projection, if it is adapted.
    pub fn get(&self, name: &str) -> Option<&AdapterWeights<'a>> {
        self.by_name.get(name)
    }
}

/// Grouped adapter product: for each request row `i`,
/// `y[i] = scale_j (x[i] A_j) B_j + x[i] S_j` with `j = adapter_idx[i]`;
/// rows whose adapter does not adapt this projection contribute zero.
///
/// Requests are bucketed per adapter so each group's two skinny matmuls
/// run on a contiguous gather, mirroring the SBMM reorder (§5.2).
///
/// # Panics
///
/// Panics if `adapter_idx` is out of range or lengths mismatch.
pub fn sgmv_grouped(
    x: &Matrix,
    adapter_idx: &[usize],
    adapters: &[Option<&AdapterWeights<'_>>],
    d_out: usize,
) -> Matrix {
    assert_eq!(x.rows(), adapter_idx.len(), "assignment length mismatch");
    let mut y = Matrix::zeros(x.rows(), d_out);
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); adapters.len()];
    for (i, &ai) in adapter_idx.iter().enumerate() {
        assert!(ai < adapters.len(), "adapter index {ai} out of range");
        buckets[ai].push(i);
    }
    for (ai, rows) in buckets.iter().enumerate() {
        let Some(w) = adapters[ai] else { continue };
        if rows.is_empty() {
            continue;
        }
        let mut xg = Matrix::zeros(rows.len(), x.cols());
        for (gr, &i) in rows.iter().enumerate() {
            xg.row_mut(gr).copy_from_slice(x.row(i));
        }
        // Two skinny GEMMs: (g, d_in)(d_in, r) then (g, r)(r, d_out).
        let xa = dense_gemm(&xg, w.a);
        let mut yg = dense_gemm(&xa, w.b);
        yg.scale_assign(w.scale);
        if let Some(sparse) = &w.sparse {
            for (gr, &i) in rows.iter().enumerate() {
                let _ = i;
                sparse.accumulate_row(xg.row(gr), yg.row_mut(gr));
            }
        }
        for (gr, &i) in rows.iter().enumerate() {
            for (c, v) in yg.row(gr).iter().enumerate() {
                let cur = y.get(i, c);
                y.set(i, c, cur + v);
            }
        }
    }
    y
}

/// A batched adapter decoder over one base model and many adapters.
///
/// Unlike [`crate::decoupled::DecoupledBatch`], every non-projection
/// parameter (embeddings, norms, biases, head) comes from the shared base —
/// adapters only touch the linear projections.
pub struct AdapterBatch<'a> {
    base: &'a Params,
    adapters: Vec<AdapterView<'a>>,
    slots: Vec<Slot>,
}

impl<'a> AdapterBatch<'a> {
    /// Creates a runner over `base` and the given adapters.
    pub fn new(base: &'a Params, adapters: Vec<AdapterView<'a>>) -> Self {
        AdapterBatch {
            base,
            adapters,
            slots: Vec::new(),
        }
    }

    /// Admits a request for `adapter`, prefilling its prompt; returns the
    /// slot index.
    ///
    /// # Panics
    ///
    /// Panics if the adapter index is out of range or the prompt is empty.
    pub fn admit(&mut self, adapter: usize, prompt: &[usize]) -> usize {
        assert!(adapter < self.adapters.len(), "adapter out of range");
        assert!(!prompt.is_empty(), "empty prompt");
        let last = *prompt.last().expect("non-empty");
        self.slots
            .push(Slot::new(adapter, self.base.config.n_layers, last));
        let idx = self.slots.len() - 1;
        for &tok in &prompt[..prompt.len() - 1] {
            let _ = self.step_tokens(&[(idx, tok)]);
        }
        idx
    }

    /// Decodes one token for every active slot; returns `(slot, next)`.
    pub fn decode_step(&mut self) -> Vec<(usize, usize)> {
        let work: Vec<(usize, usize)> = self
            .slots
            .iter()
            .enumerate()
            .map(|(i, s)| (i, s.last_token))
            .collect();
        let logits = self.step_tokens(&work);
        let mut out = Vec::with_capacity(work.len());
        for ((slot, _), row) in work.iter().zip(logits.iter()) {
            let next = argmax(row);
            self.slots[*slot].last_token = next;
            self.slots[*slot].generated.push(next);
            out.push((*slot, next));
        }
        out
    }

    /// Tokens generated so far by a slot.
    pub fn generated(&self, slot: usize) -> &[usize] {
        &self.slots[slot].generated
    }

    /// Shared base linear plus the grouped adapter product and base bias.
    fn linear(
        &self,
        x: &Matrix,
        w_base: &Matrix,
        bias: &Matrix,
        name: &str,
        adapter_idx: &[usize],
    ) -> Matrix {
        let mut y = dense_gemm(x, w_base);
        let views: Vec<Option<&AdapterWeights<'_>>> =
            self.adapters.iter().map(|v| v.get(name)).collect();
        if views.iter().any(Option::is_some) {
            let ya = sgmv_grouped(x, adapter_idx, &views, w_base.cols());
            y.add_assign(&ya);
        }
        for bi in 0..y.rows() {
            for (c, v) in y.row_mut(bi).iter_mut().enumerate() {
                *v += bias.get(0, c);
            }
        }
        y
    }

    /// Core batched step (same wiring as the decoupled runner, base-only
    /// non-projection parameters).
    fn step_tokens(&mut self, work: &[(usize, usize)]) -> Vec<Vec<f32>> {
        let cfg = &self.base.config;
        let d = cfg.d_model;
        let b = work.len();
        let adapter_idx: Vec<usize> = work.iter().map(|(s, _)| self.slots[*s].variant).collect();

        let mut x = Matrix::zeros(b, d);
        for (bi, &(slot, token)) in work.iter().enumerate() {
            let pos = self.slots[slot].cache.len();
            assert!(pos < cfg.max_seq, "sequence overflow");
            let row = x.row_mut(bi);
            for (c, v) in row.iter_mut().enumerate() {
                *v = self.base.tok_emb.get(token, c) + self.base.pos_emb.get(pos, c);
            }
        }

        let heads = cfg.n_heads;
        for li in 0..cfg.n_layers {
            let l = &self.base.layers[li];
            let mut h = Matrix::zeros(b, d);
            for bi in 0..b {
                let src: Vec<f32> = x.row(bi).to_vec();
                layer_norm_row(&src, &l.ln1_g, &l.ln1_b, h.row_mut(bi));
            }
            let q = self.linear(&h, &l.wq, &l.bq, &format!("layer{li}.wq"), &adapter_idx);
            let k = self.linear(&h, &l.wk, &l.bk, &format!("layer{li}.wk"), &adapter_idx);
            let v = self.linear(&h, &l.wv, &l.bv, &format!("layer{li}.wv"), &adapter_idx);
            let mut attn = Matrix::zeros(b, d);
            for (bi, &(slot, _)) in work.iter().enumerate() {
                let cache = &mut self.slots[slot].cache;
                attention_one(&q, &k, &v, bi, cache, li, heads, &mut attn);
            }
            let proj = self.linear(&attn, &l.wo, &l.bo, &format!("layer{li}.wo"), &adapter_idx);
            x.add_assign(&proj);
            let mut h2 = Matrix::zeros(b, d);
            for bi in 0..b {
                let src: Vec<f32> = x.row(bi).to_vec();
                layer_norm_row(&src, &l.ln2_g, &l.ln2_b, h2.row_mut(bi));
            }
            let mut up = self.linear(&h2, &l.w1, &l.b1, &format!("layer{li}.w1"), &adapter_idx);
            gelu_assign(&mut up);
            let down = self.linear(&up, &l.w2, &l.b2, &format!("layer{li}.w2"), &adapter_idx);
            x.add_assign(&down);
        }
        let mut out = Vec::with_capacity(b);
        for bi in 0..b {
            let mut xf = vec![0.0f32; d];
            let src: Vec<f32> = x.row(bi).to_vec();
            layer_norm_row(&src, &self.base.lnf_g, &self.base.lnf_b, &mut xf);
            let mut logits = vec![0.0f32; cfg.vocab];
            for (c, lg) in logits.iter_mut().enumerate() {
                let mut acc = 0.0f32;
                for (r, xv) in xf.iter().enumerate() {
                    acc += xv * self.base.head.get(r, c);
                }
                *lg = acc;
            }
            out.push(logits);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dz_model::lora::{finetune_lora, LoraConfig};
    use dz_model::rosa::{finetune_rosa, RosaConfig};
    use dz_model::tasks::{Corpus, SentimentTask};
    use dz_model::train::{pretrain, TrainConfig};
    use dz_model::transformer::test_config;
    use dz_tensor::Rng;

    fn base() -> Params {
        let cfg = test_config();
        let mut rng = Rng::seeded(1);
        let mut p = Params::init(cfg, &mut rng);
        pretrain(&mut p, &Corpus::new(cfg.max_seq), TrainConfig::pretrain(50));
        p
    }

    fn short_train() -> TrainConfig {
        TrainConfig {
            steps: 60,
            batch: 4,
            lr: 1e-2,
            clip: 1.0,
            seed: 2,
        }
    }

    #[test]
    fn sparse_coo_matches_dense_product() {
        let mut rng = Rng::seeded(3);
        let dense = Matrix::randn(6, 5, 1.0, &mut rng);
        let mut mask = Matrix::zeros(6, 5);
        for i in 0..6 {
            mask.set(i, (i * 2) % 5, 1.0);
        }
        let masked = dense.hadamard(&mask);
        let coo = SparseCoo::from_masked(&masked, &mask);
        assert_eq!(coo.nnz(), 6);
        let x: Vec<f32> = (0..6).map(|i| i as f32 + 0.5).collect();
        let mut y = vec![0.0f32; 5];
        coo.accumulate_row(&x, &mut y);
        let want = Matrix::from_rows(&[&x]).matmul(&masked);
        for (c, &yc) in y.iter().enumerate() {
            assert!((yc - want.get(0, c)).abs() < 1e-5);
        }
    }

    #[test]
    fn sgmv_matches_per_request_dense_math() {
        let p = base();
        let mut rng = Rng::seeded(4);
        let a1 = dz_model::lora::LoraAdapter::init(&p, LoraConfig::rank(2), &mut rng);
        let a2 = dz_model::lora::LoraAdapter::init(&p, LoraConfig::rank(4), &mut rng);
        let v1 = AdapterView::from_lora(&a1);
        let v2 = AdapterView::from_lora(&a2);
        let name = "layer0.wq";
        let w = p.get(name).unwrap();
        let x = Matrix::randn(5, w.rows(), 1.0, &mut rng);
        let idx = [0usize, 1, 0, 1, 1];
        let views = [v1.get(name), v2.get(name)];
        let y = sgmv_grouped(&x, &idx, &views, w.cols());
        for (i, &ai) in idx.iter().enumerate() {
            let adapter = if ai == 0 { &a1 } else { &a2 };
            let pair = adapter.pairs.iter().find(|pr| pr.name == name).unwrap();
            let xi = x.submatrix(i, 0, 1, x.cols());
            let want = xi.matmul(&pair.a).matmul(&pair.b).scale(adapter.scale());
            for c in 0..w.cols() {
                assert!((y.get(i, c) - want.get(0, c)).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn lora_batch_matches_merged_model() {
        let p = base();
        let mut rng = Rng::seeded(5);
        let mut adapter = dz_model::lora::LoraAdapter::init(&p, LoraConfig::rank(4), &mut rng);
        finetune_lora(&p, &mut adapter, &SentimentTask, short_train());
        let merged = adapter.merge(&p);
        let prompt = vec![1usize, 20, 21, 2];
        let want = dz_model::eval::greedy_generate(&merged, &prompt, 4);
        let mut batch = AdapterBatch::new(&p, vec![AdapterView::from_lora(&adapter)]);
        let slot = batch.admit(0, &prompt);
        for _ in 0..4 {
            batch.decode_step();
        }
        assert_eq!(batch.generated(slot), &want[..]);
    }

    #[test]
    fn rosa_batch_matches_merged_model() {
        let p = base();
        let mut rng = Rng::seeded(6);
        let mut adapter = RosaAdapter::init(&p, RosaConfig::new(2, 0.05), &mut rng);
        finetune_rosa(&p, &mut adapter, &SentimentTask, short_train());
        assert!(adapter.sparse.iter().any(|s| s.nnz() > 0));
        let merged = adapter.merge(&p);
        let prompt = vec![1usize, 22, 23, 2];
        let want = dz_model::eval::greedy_generate(&merged, &prompt, 4);
        let mut batch = AdapterBatch::new(&p, vec![AdapterView::from_rosa(&adapter)]);
        let slot = batch.admit(0, &prompt);
        for _ in 0..4 {
            batch.decode_step();
        }
        assert_eq!(batch.generated(slot), &want[..]);
    }

    #[test]
    fn mixed_lora_rosa_batch_keeps_requests_separate() {
        let p = base();
        let mut rng = Rng::seeded(7);
        let mut lora = dz_model::lora::LoraAdapter::init(&p, LoraConfig::rank(2), &mut rng);
        finetune_lora(&p, &mut lora, &SentimentTask, short_train());
        let mut rosa = RosaAdapter::init(&p, RosaConfig::new(2, 0.03), &mut rng);
        finetune_rosa(&p, &mut rosa, &dz_model::tasks::NliTask, short_train());
        let m1 = lora.merge(&p);
        let m2 = rosa.merge(&p);
        let p1 = vec![1usize, 20, 21, 2];
        let p2 = vec![1usize, 25, 2, 30, 4];
        let w1 = dz_model::eval::greedy_generate(&m1, &p1, 3);
        let w2 = dz_model::eval::greedy_generate(&m2, &p2, 3);
        let mut batch = AdapterBatch::new(
            &p,
            vec![AdapterView::from_lora(&lora), AdapterView::from_rosa(&rosa)],
        );
        let s1 = batch.admit(0, &p1);
        let s2 = batch.admit(1, &p2);
        for _ in 0..3 {
            batch.decode_step();
        }
        assert_eq!(batch.generated(s1), &w1[..], "lora request diverged");
        assert_eq!(batch.generated(s2), &w2[..], "rosa request diverged");
    }

    #[test]
    #[should_panic(expected = "adapter out of range")]
    fn out_of_range_adapter_rejected() {
        let p = base();
        let mut batch = AdapterBatch::new(&p, vec![]);
        let _ = batch.admit(0, &[1, 2]);
    }
}
