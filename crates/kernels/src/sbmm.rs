//! SBMM — Selective Batched Matrix Multiplication (§5.2 of the paper).
//!
//! A serving batch mixes requests for different deltas: request `i` needs
//! `y_i = x_i * Δ_{idx(i)}`. The naive implementation loops over requests,
//! paying one "kernel launch" (here: one grouped multiply of batch 1) per
//! request plus scattered reads. SBMM instead:
//!
//! 1. reorders requests so rows sharing a delta are contiguous, and
//! 2. performs one multiply per *distinct* delta in the batch.
//!
//! Outputs are written back in the original request order, so both
//! implementations are interchangeable; tests assert bit-equality of the
//! grouped path against the naive one.

use crate::qgemm::quant_gemm;
use dz_compress::pack::CompressedMatrix;
use dz_tensor::Matrix;

/// Computes per-request delta products one request at a time (baseline).
///
/// # Panics
///
/// Panics if `delta_idx` length differs from the batch, an index is out of
/// range, or the deltas disagree on shapes.
pub fn sbmm_naive(x: &Matrix, delta_idx: &[usize], deltas: &[&CompressedMatrix]) -> Matrix {
    assert_eq!(x.rows(), delta_idx.len(), "assignment length mismatch");
    check_shapes(deltas);
    let d_out = deltas.first().map_or(0, |d| d.d_out);
    let mut y = Matrix::zeros(x.rows(), d_out);
    for (i, &di) in delta_idx.iter().enumerate() {
        let xi = x.submatrix(i, 0, 1, x.cols());
        let yi = quant_gemm(&xi, deltas[di]);
        y.set_submatrix(i, 0, &yi);
    }
    y
}

/// Grouped SBMM: one multiply per distinct delta in the batch.
///
/// # Panics
///
/// Same conditions as [`sbmm_naive`].
pub fn sbmm_grouped(x: &Matrix, delta_idx: &[usize], deltas: &[&CompressedMatrix]) -> Matrix {
    assert_eq!(x.rows(), delta_idx.len(), "assignment length mismatch");
    check_shapes(deltas);
    let d_out = deltas.first().map_or(0, |d| d.d_out);
    let mut y = Matrix::zeros(x.rows(), d_out);
    // Bucket request rows per delta (the scheduler's reorder step).
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); deltas.len()];
    for (i, &di) in delta_idx.iter().enumerate() {
        assert!(di < deltas.len(), "delta index {di} out of range");
        buckets[di].push(i);
    }
    for (di, rows) in buckets.iter().enumerate() {
        if rows.is_empty() {
            continue;
        }
        // Gather the group's inputs contiguously.
        let mut xg = Matrix::zeros(rows.len(), x.cols());
        for (gr, &i) in rows.iter().enumerate() {
            xg.row_mut(gr).copy_from_slice(x.row(i));
        }
        let yg = quant_gemm(&xg, deltas[di]);
        // Scatter back to original positions.
        for (gr, &i) in rows.iter().enumerate() {
            y.row_mut(i).copy_from_slice(yg.row(gr));
        }
    }
    y
}

fn check_shapes(deltas: &[&CompressedMatrix]) {
    if let Some(first) = deltas.first() {
        for d in deltas {
            assert_eq!(
                (d.d_in, d.d_out),
                (first.d_in, first.d_out),
                "deltas must share shapes"
            );
        }
    }
}

/// Number of distinct deltas actually referenced by a batch (the paper's
/// `N` for kernel-launch accounting).
pub fn distinct_deltas(delta_idx: &[usize]) -> usize {
    let mut seen = std::collections::BTreeSet::new();
    for &d in delta_idx {
        seen.insert(d);
    }
    seen.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dz_compress::obs::{compress_matrix, ObsConfig};
    use dz_compress::quant::QuantSpec;
    use dz_tensor::Rng;

    fn make_deltas(n: usize, d_in: usize, d_out: usize, seed: u64) -> Vec<CompressedMatrix> {
        let mut rng = Rng::seeded(seed);
        (0..n)
            .map(|_| {
                let w = Matrix::randn(d_in, d_out, 0.02, &mut rng);
                let cfg = ObsConfig {
                    spec: QuantSpec::new(4, 16),
                    sparse24: true,
                    damp: 0.05,
                };
                compress_matrix(&w, &Matrix::identity(d_in), &cfg).packed
            })
            .collect()
    }

    #[test]
    fn grouped_matches_naive_mixed_batch() {
        let deltas = make_deltas(4, 16, 8, 1);
        let refs: Vec<&CompressedMatrix> = deltas.iter().collect();
        let mut rng = Rng::seeded(2);
        let x = Matrix::randn(10, 16, 1.0, &mut rng);
        let idx = vec![0, 1, 2, 3, 0, 1, 2, 3, 0, 0];
        let a = sbmm_naive(&x, &idx, &refs);
        let b = sbmm_grouped(&x, &idx, &refs);
        assert_eq!(a, b, "grouped and naive must agree exactly");
    }

    #[test]
    fn single_delta_batch() {
        let deltas = make_deltas(1, 16, 8, 3);
        let refs: Vec<&CompressedMatrix> = deltas.iter().collect();
        let mut rng = Rng::seeded(4);
        let x = Matrix::randn(6, 16, 1.0, &mut rng);
        let idx = vec![0; 6];
        assert_eq!(sbmm_naive(&x, &idx, &refs), sbmm_grouped(&x, &idx, &refs));
    }

    #[test]
    fn skewed_assignment_preserves_row_order() {
        let deltas = make_deltas(3, 16, 8, 5);
        let refs: Vec<&CompressedMatrix> = deltas.iter().collect();
        let mut rng = Rng::seeded(6);
        let x = Matrix::randn(7, 16, 1.0, &mut rng);
        let idx = vec![2, 2, 2, 1, 2, 0, 2];
        let y = sbmm_grouped(&x, &idx, &refs);
        // Row 5 must equal delta-0 applied to x row 5 alone.
        let x5 = x.submatrix(5, 0, 1, 16);
        let y5 = quant_gemm(&x5, refs[0]);
        for c in 0..8 {
            assert_eq!(y.get(5, c), y5.get(0, c));
        }
    }

    #[test]
    fn unused_deltas_are_skipped() {
        let deltas = make_deltas(5, 16, 8, 7);
        let refs: Vec<&CompressedMatrix> = deltas.iter().collect();
        let mut rng = Rng::seeded(8);
        let x = Matrix::randn(3, 16, 1.0, &mut rng);
        let idx = vec![4, 4, 4];
        let y = sbmm_grouped(&x, &idx, &refs);
        assert_eq!(y.rows(), 3);
        assert_eq!(distinct_deltas(&idx), 1);
    }

    #[test]
    fn empty_batch_yields_empty_output() {
        let deltas = make_deltas(2, 16, 8, 9);
        let refs: Vec<&CompressedMatrix> = deltas.iter().collect();
        let x = Matrix::zeros(0, 16);
        let y = sbmm_grouped(&x, &[], &refs);
        assert_eq!(y.rows(), 0);
    }

    #[test]
    #[should_panic(expected = "delta index 3 out of range")]
    fn bad_index_panics() {
        let deltas = make_deltas(2, 16, 8, 10);
        let refs: Vec<&CompressedMatrix> = deltas.iter().collect();
        let x = Matrix::zeros(1, 16);
        let _ = sbmm_grouped(&x, &[3], &refs);
    }
}
