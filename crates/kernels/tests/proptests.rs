//! Property-based tests: the packed kernels must agree with dense
//! references for arbitrary shapes, formats, and batch assignments.

use dz_compress::obs::{compress_matrix, ObsConfig};
use dz_compress::pack::CompressedMatrix;
use dz_compress::quant::QuantSpec;
use dz_kernels::{quant_gemm, sbmm_grouped, sbmm_naive};
use dz_tensor::{Matrix, Rng};
use proptest::prelude::*;

fn packed(seed: u64, d_in: usize, d_out: usize, bits: u32, sparse: bool) -> CompressedMatrix {
    let mut rng = Rng::seeded(seed);
    let w = Matrix::randn(d_in, d_out, 0.03, &mut rng);
    let cfg = ObsConfig {
        spec: QuantSpec::new(bits, 8),
        sparse24: sparse,
        damp: 0.05,
    };
    compress_matrix(&w, &Matrix::identity(d_in), &cfg).packed
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn quant_gemm_matches_dense_reference(
        seed in any::<u64>(),
        blocks in 1usize..6,
        d_out in 1usize..24,
        batch in 1usize..12,
        bits in 2u32..8,
        sparse in any::<bool>(),
    ) {
        let d_in = blocks * 8;
        let cm = packed(seed, d_in, d_out, bits, sparse);
        let x = Matrix::randn(batch, d_in, 1.0, &mut Rng::seeded(seed ^ 1));
        let fused = quant_gemm(&x, &cm);
        let dense = x.matmul(&cm.dequantize());
        prop_assert!(fused.max_abs_diff(&dense) < 1e-3,
            "diff {}", fused.max_abs_diff(&dense));
    }

    #[test]
    fn sbmm_grouped_equals_naive_for_any_assignment(
        seed in any::<u64>(),
        n_deltas in 1usize..6,
        assignment in proptest::collection::vec(0usize..6, 1..24),
    ) {
        let assignment: Vec<usize> = assignment.into_iter().map(|a| a % n_deltas).collect();
        let deltas: Vec<CompressedMatrix> = (0..n_deltas)
            .map(|i| packed(seed ^ i as u64, 16, 8, 4, true))
            .collect();
        let refs: Vec<&CompressedMatrix> = deltas.iter().collect();
        let x = Matrix::randn(assignment.len(), 16, 1.0, &mut Rng::seeded(seed ^ 99));
        prop_assert_eq!(
            sbmm_naive(&x, &assignment, &refs),
            sbmm_grouped(&x, &assignment, &refs)
        );
    }
}
