//! The delta artifact store end to end: ΔCompress two variants, publish
//! them as content-addressed `.dza` artifacts, stream them back through
//! the tiered disk→host cache, and watch the serving engine charge load
//! waits by each artifact's real compressed bytes (§5.4 hierarchical
//! delta management).
//!
//! ```text
//! cargo run --release --example delta_zoo_store
//! ```

use deltazip::DeltaZip;
use dz_compress::pipeline::DeltaCompressConfig;
use dz_gpusim::shapes::ModelShape;
use dz_gpusim::spec::NodeSpec;
use dz_model::tasks::{Corpus, NliTask, SentimentTask};
use dz_model::train::{finetune_fmt, pretrain, TrainConfig};
use dz_model::transformer::{test_config, Params};
use dz_serve::{CostModel, DeltaStoreBinding, DeltaZipConfig};
use dz_store::{Registry, TieredDeltaStore};
use dz_tensor::Rng;
use dz_workload::{PopularityDist, Trace, TraceSpec};

fn main() {
    // Train a tiny base and two full-model-tuned variants.
    let cfg = test_config();
    let mut rng = Rng::seeded(7);
    let mut base = Params::init(cfg, &mut rng);
    let corpus = Corpus::new(cfg.max_seq);
    pretrain(&mut base, &corpus, TrainConfig::pretrain(40));
    let mut sent = base.clone();
    finetune_fmt(&mut sent, &SentimentTask, TrainConfig::finetune(25));
    let mut nli = base.clone();
    finetune_fmt(&mut nli, &NliTask, TrainConfig::finetune(25));

    let mut dz = DeltaZip::new();
    let b = dz.register_base("tiny-base", base).expect("register base");
    let v4 = dz
        .register_fmt_variant("sentiment-4bit", b, &sent, DeltaCompressConfig::starred(4))
        .expect("register 4-bit variant");
    let v2 = dz
        .register_fmt_variant("nli-2bit", b, &nli, DeltaCompressConfig::starred(2))
        .expect("register 2-bit variant");

    // Publish both into a content-addressed zoo directory.
    let zoo_dir = std::env::temp_dir().join(format!("dz-zoo-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&zoo_dir);
    let registry = Registry::open(&zoo_dir).expect("open registry");
    let id4 = dz.persist_variant(v4, &registry).expect("persist 4-bit");
    let id2 = dz.persist_variant(v2, &registry).expect("persist 2-bit");

    println!("zoo at {}", zoo_dir.display());
    for (name, id) in registry.refs().expect("refs") {
        let size = registry.size_of(&id).expect("size");
        println!("  {name:<16} -> {}.dza  ({size} bytes)", &id.hex()[..12]);
        registry
            .verify(&id)
            .expect("content hash matches file name");
    }

    // Serve a Zipf trace over the two variants, charging loads from real
    // artifact bytes through the tiered disk→host cache.
    let cost = CostModel::new(NodeSpec::a800_node(4), ModelShape::llama13b());
    let store = TieredDeltaStore::new(registry, 1 << 30);
    let binding = DeltaStoreBinding::new(store, vec![id4, id2]);
    let trace = Trace::generate(TraceSpec {
        n_models: 2,
        arrival_rate: 1.0,
        duration_s: 60.0,
        popularity: PopularityDist::Zipf { alpha: 1.5 },
        seed: 3,
    });
    let (metrics, binding) =
        dz.simulate_with_store(&trace, cost, DeltaZipConfig::default(), binding);

    let total_load: f64 = metrics.records.iter().map(|r| r.load_s).sum();
    println!(
        "\nserved {} requests, mean e2e {:.3}s, total load wait {:.3}ms",
        metrics.len(),
        metrics.mean_e2e(),
        total_load * 1e3
    );
    let stats = binding.store().total_stats();
    println!(
        "store: {} disk loads ({} bytes), {} host hits ({} bytes)",
        stats.disk_loads, stats.disk_bytes, stats.host_hits, stats.host_bytes
    );
    for (label, id) in [("sentiment-4bit", id4), ("nli-2bit", id2)] {
        let s = binding.store().stats(&id);
        println!(
            "  {label:<16} disk {}x/{}B  host {}x/{}B",
            s.disk_loads, s.disk_bytes, s.host_hits, s.host_bytes
        );
    }

    let _ = std::fs::remove_dir_all(&zoo_dir);
}
