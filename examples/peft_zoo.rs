//! PEFT zoo: fine-tune one tiny base with LoRA, RoSA and GaLore, register
//! everything with the DeltaZip facade, and compare accuracy, artifact
//! size and which serving path each method needs (§8).
//!
//! LoRA's update is exactly rank-r; RoSA adds a sparse component; GaLore's
//! accumulated update is full-rank, so only the ΔCompress delta path can
//! serve it — the point of the paper's §8 discussion.
//!
//! ```text
//! cargo run --release --example peft_zoo
//! ```

use deltazip::DeltaZip;
use dz_compress::pipeline::DeltaCompressConfig;
use dz_model::eval::task_accuracy;
use dz_model::galore::{finetune_galore, low_rank_residual, GaloreConfig};
use dz_model::lora::{finetune_lora, LoraAdapter, LoraConfig};
use dz_model::rosa::{finetune_rosa, RosaAdapter, RosaConfig};
use dz_model::tasks::{Corpus, RecallTask};
use dz_model::train::{finetune_fmt, pretrain, TrainConfig};
use dz_model::transformer::{ModelConfig, Params};
use dz_tensor::Rng;

fn main() {
    let cfg = ModelConfig {
        d_model: 32,
        n_heads: 4,
        d_ff: 64,
        ..dz_model::transformer::test_config()
    };
    let task = RecallTask;
    let rank = 4;
    let train = TrainConfig {
        steps: 400,
        batch: 8,
        lr: 1e-2,
        clip: 1.0,
        seed: 7,
    };

    println!("pre-training a tiny base...");
    let mut rng = Rng::seeded(1);
    let mut base = Params::init(cfg, &mut rng);
    pretrain(
        &mut base,
        &Corpus::new(cfg.max_seq),
        TrainConfig::pretrain(300),
    );

    println!("fine-tuning four ways (LoRA / RoSA / GaLore / FMT)...");
    let mut lora = LoraAdapter::init(&base, LoraConfig::rank(rank), &mut rng);
    finetune_lora(&base, &mut lora, &task, train);

    let mut rosa = RosaAdapter::init(&base, RosaConfig::new(rank, 0.05), &mut rng);
    finetune_rosa(&base, &mut rosa, &task, train);

    let mut galore_model = base.clone();
    finetune_galore(
        &mut galore_model,
        &task,
        TrainConfig { lr: 3e-3, ..train },
        GaloreConfig::rank(rank),
    );

    let mut fmt = base.clone();
    finetune_fmt(&mut fmt, &task, TrainConfig { lr: 3e-3, ..train });

    println!("registering everything with the DeltaZip facade...\n");
    let mut dz = DeltaZip::new();
    let b = dz
        .register_base("tiny-base", base.clone())
        .expect("fresh name");
    let v_lora = dz
        .register_lora("variant-lora", b, lora)
        .expect("fresh name");
    let v_rosa = dz
        .register_rosa("variant-rosa", b, rosa)
        .expect("fresh name");
    let v_galore = dz
        .register_fmt_variant(
            "variant-galore",
            b,
            &galore_model,
            DeltaCompressConfig::starred(4),
        )
        .expect("fresh name");
    let v_fmt = dz
        .register_fmt_variant("variant-fmt", b, &fmt, DeltaCompressConfig::starred(4))
        .expect("fresh name");

    let mut eval_rng = Rng::seeded(42);
    println!(
        "{:<16} {:>9} {:>14} {:>10} serving path",
        "variant", "acc (%)", "swap bytes", "rank-res"
    );
    for (vid, name) in [
        (v_lora, "LoRA"),
        (v_rosa, "RoSA"),
        (v_galore, "GaLore+ΔC"),
        (v_fmt, "FMT+ΔC"),
    ] {
        let served = dz.reconstruct(vid).expect("registered variant");
        let acc = task_accuracy(&served, &task, 300, &mut eval_rng) * 100.0;
        let info = dz.manager().variant(vid).expect("registered variant");
        let delta = served
            .get("layer0.wq")
            .expect("projection exists")
            .sub(base.get("layer0.wq").expect("projection exists"));
        let residual = low_rank_residual(&delta, rank, &mut eval_rng);
        let path = match info.artifact {
            deltazip::VariantArtifact::Delta(_) => "compressed delta (SBMM)",
            deltazip::VariantArtifact::Lora(_) => "adapter (SGMV)",
            deltazip::VariantArtifact::Rosa(_) => "adapter + sparse",
        };
        println!(
            "{name:<16} {acc:>9.1} {:>14} {residual:>10.2} {path}",
            info.artifact.swap_bytes()
        );
    }
    println!("\nrank-res = residual of the best rank-{rank} fit to the layer0.wq delta;");
    println!("~0 means the update is low-rank (adapter-servable), large means it");
    println!("needs the full-model delta path that DeltaZip adds.");
}
