//! Operator's tour of the scheduling policies beyond the paper's defaults
//! (§5.4 dynamic tuning and the §8 future-work mechanisms built here):
//!
//! 1. SLO tiers — latency-critical variants are scheduled first, with
//!    aging so the batch tier cannot starve;
//! 2. length-aware preemption — children predicted to finish soon keep
//!    their slots instead of being kicked back to the queue;
//! 3. resume policies — swap-to-host vs recompute vs cost-based restore
//!    of preempted requests;
//! 4. online `N` tuning — the concurrent-delta cap follows the workload
//!    through a skew shift.
//!
//! ```text
//! cargo run --release --example operator_policies
//! ```

use dz_gpusim::shapes::ModelShape;
use dz_gpusim::spec::NodeSpec;
use dz_serve::predictor::LengthEstimator;
use dz_serve::slo::SloPolicy;
use dz_serve::tuning::{DynamicN, DynamicNConfig};
use dz_serve::{
    CostModel, DeltaZipConfig, DeltaZipEngine, Engine, Metrics, PreemptionPolicy, ResumePolicy,
};
use dz_workload::{PopularityDist, Trace, TraceSpec};

fn skewed_trace(seed: u64) -> Trace {
    Trace::generate(TraceSpec {
        n_models: 32,
        arrival_rate: 2.0,
        duration_s: 120.0,
        popularity: PopularityDist::Zipf { alpha: 1.5 },
        seed,
    })
}

fn summarize(label: &str, m: &Metrics) {
    let preemptions: usize = m.records.iter().map(|r| r.preemptions).sum();
    println!(
        "{label:<34} E2E {:>6.1}s  TTFT {:>6.2}s  p90 TTFT {:>6.1}s  preempt {preemptions}",
        m.mean_e2e(),
        m.mean_ttft(),
        m.ttft_percentile(0.9),
    );
}

fn main() {
    let cost = CostModel::new(NodeSpec::a800_node(4), ModelShape::llama13b());
    let base_config = DeltaZipConfig {
        max_concurrent_deltas: 4,
        max_batch: 32,
        ..DeltaZipConfig::default()
    };

    println!("== 1. SLO tiers (first 4 variants sold as Interactive) ==");
    let trace = skewed_trace(0x0b1);
    let policy = SloPolicy::tiered(32, 4);
    let plain = DeltaZipEngine::new(cost, base_config).run(&trace);
    let tiered = DeltaZipEngine::new(cost, base_config)
        .with_slo_policy(policy.clone())
        .run(&trace);
    for (name, metrics) in [("FCFS", &plain), ("SLO-priority", &tiered)] {
        for (class, sub) in policy.split_metrics(metrics) {
            println!(
                "{name:<14} {class:?}: mean TTFT {:>6.2}s, attain@{:.0}s = {:.0}%",
                sub.mean_ttft(),
                class.ttft_target_s(),
                sub.slo_attainment_ttft(class.ttft_target_s()) * 100.0
            );
        }
    }

    println!("\n== 2. Starvation handling with length prediction ==");
    for (label, preemption, estimator) in [
        (
            "parent-finish (paper)",
            PreemptionPolicy::ParentFinish,
            LengthEstimator::default(),
        ),
        (
            "length-aware (online mean)",
            PreemptionPolicy::LengthAware { spare_tokens: 16 },
            LengthEstimator::default(),
        ),
        (
            "length-aware (oracle)",
            PreemptionPolicy::LengthAware { spare_tokens: 16 },
            LengthEstimator::Oracle,
        ),
    ] {
        let mut engine = DeltaZipEngine::new(
            cost,
            DeltaZipConfig {
                preemption,
                ..base_config
            },
        )
        .with_estimator(estimator);
        summarize(label, &engine.run(&trace));
    }

    println!("\n== 3. Resume policy for preempted requests ==");
    for (label, resume) in [
        ("swap to host (paper)", ResumePolicy::SwapToHost),
        ("recompute", ResumePolicy::Recompute),
        ("cost-based", ResumePolicy::CostBased),
    ] {
        let mut engine = DeltaZipEngine::new(
            cost,
            DeltaZipConfig {
                resume,
                ..base_config
            },
        );
        summarize(label, &engine.run(&trace));
    }

    println!("\n== 4. Online N tuning across a skew shift ==");
    let cost_small = CostModel::new(NodeSpec::rtx3090_node(2), ModelShape::llama7b());
    let shift = Trace::generate(TraceSpec {
        n_models: 12,
        arrival_rate: 3.0,
        duration_s: 90.0,
        popularity: PopularityDist::Zipf { alpha: 4.0 },
        seed: 0x0b2,
    })
    .then(&Trace::generate(TraceSpec {
        n_models: 12,
        arrival_rate: 1.5,
        duration_s: 90.0,
        popularity: PopularityDist::Uniform,
        seed: 0x0b3,
    }));
    for n in [2usize, 12] {
        let m = DeltaZipEngine::new(
            cost_small,
            DeltaZipConfig {
                max_concurrent_deltas: n,
                ..DeltaZipConfig::default()
            },
        )
        .run(&shift);
        summarize(&format!("fixed N={n}"), &m);
    }
    let controller = DynamicN::new(
        DynamicNConfig {
            min_n: 2,
            max_n: 12,
            ..DynamicNConfig::default()
        },
        4,
    );
    let mut dynamic =
        DeltaZipEngine::new(cost_small, DeltaZipConfig::default()).with_dynamic_n(controller);
    let m = dynamic.run(&shift);
    summarize("dynamic N (2..12)", &m);
    let final_n = dynamic
        .dynamic_n
        .as_ref()
        .expect("controller present")
        .current();
    println!("controller settled at N = {final_n} after the uniform phase");
}
