//! Compression study: ΔCompress vs SparseGPT-direct vs AWQ on a real
//! fine-tuned (tiny) model, including the no-reconstruction ablation that
//! motivates Algorithm 1's per-layer weight re-adding.
//!
//! ```text
//! cargo run --release --example compress_and_eval
//! ```

use dz_compress::baselines::{awq_quantize, sparsegpt_direct};
use dz_compress::calib::calibration_set;
use dz_compress::pipeline::{delta_compress, delta_compress_no_reconstruct, DeltaCompressConfig};
use dz_model::eval::task_accuracy;
use dz_model::tasks::{Corpus, NliTask, SentimentTask, Task};
use dz_model::train::{pretrain, train, BatchItem, TrainConfig};
use dz_model::transformer::{ModelConfig, Params};
use dz_model::vocab;
use dz_tensor::Rng;

fn main() {
    let cfg = ModelConfig {
        vocab: vocab::MIN_VOCAB,
        d_model: 48,
        n_layers: 3,
        n_heads: 4,
        d_ff: 96,
        max_seq: 24,
    };
    let mut rng = Rng::seeded(3);
    let mut base = Params::init(cfg, &mut rng);
    let corpus = Corpus::new(cfg.max_seq);
    println!("training base + variant (sentiment & NLI mixture)...");
    pretrain(&mut base, &corpus, TrainConfig::pretrain(400));
    let mut tuned = base.clone();
    let tasks: Vec<Box<dyn Task>> = vec![Box::new(SentimentTask), Box::new(NliTask)];
    train(
        &mut tuned,
        TrainConfig {
            steps: 1200,
            batch: 8,
            lr: 2e-3,
            clip: 1.0,
            seed: 5,
        },
        |r| {
            let t = &tasks[r.below(tasks.len())];
            let ex = t.sample(r);
            BatchItem::task(ex.tokens, ex.answer_len)
        },
    );

    let calib = calibration_set(&corpus, 16, 77);
    let eval = |label: &str, params: &Params, ratio: f64| {
        let s = task_accuracy(params, &SentimentTask, 300, &mut Rng::seeded(1)) * 100.0;
        let n = task_accuracy(params, &NliTask, 300, &mut Rng::seeded(2)) * 100.0;
        println!("{label:<28} sentiment {s:>5.1}%  nli {n:>5.1}%  ratio {ratio:>5.2}x");
    };

    eval("FP16 (uncompressed FMT)", &tuned, 1.0);
    let sgpt = sparsegpt_direct(&tuned, &calib, 4, 16);
    eval(
        "SparseGPT direct (4bit*)",
        &sgpt.params,
        sgpt.report.model_ratio(),
    );
    let awq = awq_quantize(&tuned, &calib, 4, 16);
    eval("AWQ (4bit)", &awq.params, awq.report.model_ratio());
    for bits in [4u32, 2] {
        let (cd, rec) = delta_compress(&base, &tuned, &calib, DeltaCompressConfig::starred(bits));
        eval(
            &format!("DeltaZip ΔCompress ({bits}bit*)"),
            &rec,
            cd.report.model_ratio(),
        );
    }
    // Ablation: skip the per-layer weight reconstruction of Algorithm 1.
    let (_, rec_no) =
        delta_compress_no_reconstruct(&base, &tuned, &calib, DeltaCompressConfig::starred(4));
    eval("  ablation: no reconstruct", &rec_no, 0.0);
    println!("\n(The ablation row shows why Line 6 of Algorithm 1 matters: without");
    println!(" re-adding the base, deeper layers calibrate on vanishing activations.)");
}
