//! Kernel tour: the packed formats, the fused dequant GEMMs, SBMM, and the
//! GPU performance model behind Figures 6 and 7.
//!
//! ```text
//! cargo run --release --example kernel_tour
//! ```

use dz_compress::obs::{compress_matrix, ObsConfig};
use dz_compress::pack::CompressedMatrix;
use dz_compress::quant::QuantSpec;
use dz_gpusim::kernel::{
    normalized_achieved_flops, sbmm_time, BatchedImpl, MatmulDesc, WeightFormat,
};
use dz_gpusim::spec::A800;
use dz_kernels::{quant_gemm, sbmm_grouped, sbmm_naive};
use dz_tensor::{Matrix, Rng};
use std::time::Instant;

fn main() {
    let mut rng = Rng::seeded(1);
    let (d_in, d_out) = (256, 256);

    // Pack a small delta at 4-bit + 2:4.
    let delta = Matrix::randn(d_in, d_out, 0.01, &mut rng);
    let cfg = ObsConfig {
        spec: QuantSpec::new(4, 16),
        sparse24: true,
        damp: 0.05,
    };
    let packed = compress_matrix(&delta, &Matrix::identity(d_in), &cfg).packed;
    println!(
        "packed {}x{} delta: {} bytes vs {} FP16 bytes ({:.2}x), {:.0}% zero levels",
        d_in,
        d_out,
        packed.packed_bytes(),
        packed.fp16_bytes(),
        packed.fp16_bytes() as f64 / packed.packed_bytes() as f64,
        packed.zero_level_fraction() * 100.0
    );

    // Fused dequant GEMM numerics.
    let x = Matrix::randn(8, d_in, 1.0, &mut rng);
    let fused = quant_gemm(&x, &packed);
    let reference = x.matmul(&packed.dequantize());
    println!(
        "fused dequant GEMM max |err| vs dense reference: {:.2e}",
        fused.max_abs_diff(&reference)
    );

    // SBMM: grouped equals naive, and is faster on CPU too.
    let n_models = 16usize;
    let deltas: Vec<CompressedMatrix> = (0..n_models)
        .map(|i| {
            let w = Matrix::randn(d_in, d_out, 0.01, &mut Rng::seeded(100 + i as u64));
            compress_matrix(&w, &Matrix::identity(d_in), &cfg).packed
        })
        .collect();
    let refs: Vec<&CompressedMatrix> = deltas.iter().collect();
    let xb = Matrix::randn(64, d_in, 1.0, &mut rng);
    let idx: Vec<usize> = (0..64).map(|i| i % n_models).collect();
    let t0 = Instant::now();
    let a = sbmm_naive(&xb, &idx, &refs);
    let naive_t = t0.elapsed();
    let t1 = Instant::now();
    let b = sbmm_grouped(&xb, &idx, &refs);
    let grouped_t = t1.elapsed();
    assert_eq!(a, b);
    println!(
        "SBMM over {n_models} deltas x 64 requests: naive {naive_t:?}, grouped {grouped_t:?} (equal outputs)"
    );

    // GPU performance model: the Figure 6 story.
    println!("\nGPU model (A800), normalized achieved FLOPs vs input size:");
    println!(
        "{:>8} {:>10} {:>10} {:>14}",
        "m", "FP16", "Int4", "SparseInt4"
    );
    for exp in [0u32, 2, 4, 8, 12] {
        let m = 1usize << exp;
        let f = |format| {
            normalized_achieved_flops(
                &A800,
                &MatmulDesc {
                    m,
                    k: 4096,
                    n: 4096,
                    format,
                },
            )
        };
        println!(
            "{:>8} {:>10.3} {:>10.3} {:>14.3}",
            m,
            f(WeightFormat::Fp16),
            f(WeightFormat::Int {
                bits: 4,
                sparse24: false
            }),
            f(WeightFormat::Int {
                bits: 4,
                sparse24: true
            }),
        );
    }

    // And the Figure 7 story: kernel-launch amortization.
    let reqs = vec![1usize; 64];
    let fmt = WeightFormat::Int {
        bits: 4,
        sparse24: true,
    };
    println!("\n64 single-request deltas, 4096^2 (GPU model):");
    for (name, strat) in [
        ("FP16 for-loop", BatchedImpl::Fp16ForLoop),
        ("FP16 bmm", BatchedImpl::Fp16Bmm),
        ("naive for-loop", BatchedImpl::NaiveForLoop),
        ("SBMM (reorder)", BatchedImpl::Sbmm),
        ("SBMM+ (fused)", BatchedImpl::SbmmPlus),
    ] {
        let f = if matches!(strat, BatchedImpl::Fp16ForLoop | BatchedImpl::Fp16Bmm) {
            WeightFormat::Fp16
        } else {
            fmt
        };
        println!(
            "  {name:<16} {:>8.3} ms",
            sbmm_time(&A800, &reqs, 4096, 4096, f, strat) * 1e3
        );
    }
}
