//! Quickstart: train a base + one fine-tuned variant, register both with
//! DeltaZip, and serve the variant through the decoupled base+delta path.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use deltazip::DeltaZip;
use dz_compress::pipeline::DeltaCompressConfig;
use dz_model::eval::task_accuracy;
use dz_model::tasks::{Corpus, SentimentTask, Task};
use dz_model::train::{finetune_fmt, pretrain, TrainConfig};
use dz_model::transformer::{ModelConfig, Params};
use dz_model::vocab;
use dz_tensor::Rng;

fn main() {
    // 1. Pre-train a tiny base model on the synthetic corpus.
    let cfg = ModelConfig {
        vocab: vocab::MIN_VOCAB,
        d_model: 32,
        n_layers: 2,
        n_heads: 4,
        d_ff: 64,
        max_seq: 24,
    };
    let mut rng = Rng::seeded(7);
    let mut base = Params::init(cfg, &mut rng);
    let corpus = Corpus::new(cfg.max_seq);
    println!("pre-training base ({} params)...", cfg.param_count());
    pretrain(&mut base, &corpus, TrainConfig::pretrain(300));

    // 2. Full-model fine-tune a sentiment variant.
    let mut tuned = base.clone();
    println!("fine-tuning variant on the sentiment task...");
    finetune_fmt(
        &mut tuned,
        &SentimentTask,
        TrainConfig {
            steps: 600,
            batch: 8,
            lr: 2e-3,
            clip: 1.0,
            seed: 11,
        },
    );
    let fmt_acc = task_accuracy(&tuned, &SentimentTask, 300, &mut Rng::seeded(1));

    // 3. Register with DeltaZip: the delta is extracted and ΔCompressed.
    let mut dz = DeltaZip::new();
    let b = dz.register_base("tiny-base", base).expect("register base");
    let v = dz
        .register_fmt_variant("tiny-sentiment", b, &tuned, DeltaCompressConfig::starred(4))
        .expect("register variant");
    let report = dz.size_report(v).expect("delta variant");
    println!(
        "compressed: model {:.2}x smaller (delta alone {:.2}x), {} -> {} bytes",
        report.model_ratio(),
        report.delta_ratio(),
        report.full_fp16_bytes,
        report.compressed_linear_bytes + report.uncompressed_rest_bytes,
    );

    // 4. Quality check: the compressed variant keeps its accuracy.
    let rec = dz.reconstruct(v).expect("reconstruct");
    let rec_acc = task_accuracy(&rec, &SentimentTask, 300, &mut Rng::seeded(1));
    println!(
        "accuracy: FMT {:.1}% -> ΔCompressed {:.1}%",
        fmt_acc * 100.0,
        rec_acc * 100.0
    );

    // 5. Serve: greedy generation through base GEMM + SBMM delta kernels.
    let ex = SentimentTask.sample(&mut Rng::seeded(5));
    let prompt = ex.prompt();
    let out = dz.generate(v, prompt, 1).expect("generate");
    println!(
        "prompt  {:?}\nanswer  {} (expected {})",
        vocab::render_seq(prompt),
        vocab::render(out[0]),
        vocab::render(ex.answer()[0]),
    );
}
