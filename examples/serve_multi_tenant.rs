//! Multi-tenant serving scenario: 32 fine-tuned 13B variants behind one
//! 4-GPU node, bursty Azure-like traffic — the paper's core use case.
//!
//! Replays the same trace through DeltaZip, the vLLM+SCB baseline, and the
//! LoRA/Punica engine on the calibrated GPU performance model, then prints
//! the comparison.
//!
//! ```text
//! cargo run --release --example serve_multi_tenant
//! ```

use dz_gpusim::shapes::ModelShape;
use dz_gpusim::spec::NodeSpec;
use dz_serve::{
    CostModel, DeltaZipConfig, DeltaZipEngine, Engine, EngineBuilder, LoraServingConfig,
    VllmScbConfig, VllmScbEngine,
};
use dz_workload::stats::{idle_fraction, invocation_matrix, render_heatmap};
use dz_workload::{PopularityDist, Trace, TraceSpec};

fn main() {
    let trace = Trace::generate(TraceSpec {
        n_models: 32,
        arrival_rate: 1.0,
        duration_s: 300.0,
        popularity: PopularityDist::AzureLike,
        seed: 99,
    });
    println!(
        "trace: {} requests, 32 variants, 300 s (Azure-like bursts)\n",
        trace.len()
    );
    let matrix = invocation_matrix(&trace, 15.0);
    println!("{}", render_heatmap(&matrix[..8.min(matrix.len())]));
    println!(
        "... ({:.0}% of (model, window) cells idle)\n",
        idle_fraction(&matrix) * 100.0
    );

    let cost = CostModel::new(NodeSpec::a800_node(4), ModelShape::llama13b());
    let mut engines: Vec<Box<dyn Engine>> = vec![
        Box::new(VllmScbEngine::new(cost, VllmScbConfig::default())),
        Box::new(DeltaZipEngine::new(
            cost,
            DeltaZipConfig {
                max_concurrent_deltas: 8,
                ..DeltaZipConfig::default()
            },
        )),
        Box::new(DeltaZipEngine::new(
            cost,
            DeltaZipConfig {
                max_concurrent_deltas: 12,
                ..DeltaZipConfig::default()
            },
        )),
        Box::new(
            EngineBuilder::new(cost)
                .adapters(LoraServingConfig::default())
                .build_adapter_only(),
        ),
    ];
    println!(
        "{:<18} {:>10} {:>10} {:>12} {:>14}",
        "engine", "E2E (s)", "TTFT (s)", "req/s", "SLO@60s E2E"
    );
    for engine in engines.iter_mut() {
        let m = engine.run(&trace);
        println!(
            "{:<18} {:>10.1} {:>10.2} {:>12.2} {:>13.0}%",
            m.engine,
            m.mean_e2e(),
            m.mean_ttft(),
            m.throughput_rps(),
            m.slo_attainment_e2e(60.0) * 100.0
        );
    }
    println!("\n(LoRA row is the adapter-serving upper bound; DeltaZip brings");
    println!(" full-model-tuned variants within reach of it.)");
}
