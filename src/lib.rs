//! Umbrella library; see the `deltazip` crate.
