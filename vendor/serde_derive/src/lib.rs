//! `#[derive(Serialize, Deserialize)]` for the shapes this workspace uses:
//! non-generic structs with named fields and non-generic enums whose
//! variants are unit or named-field (externally tagged representation,
//! matching upstream serde's default).
//!
//! Implemented without `syn`/`quote`: the input item is walked as raw
//! token trees to extract names, and the generated impl is built as a
//! string and re-parsed into a `TokenStream`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What was derived on.
enum Item {
    /// Struct name + field names.
    Struct(String, Vec<String>),
    /// Enum name + (variant name, named fields if a struct variant).
    Enum(String, Vec<(String, Option<Vec<String>>)>),
}

/// Consumes attributes (`#[...]`) at the cursor.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Consumes a visibility qualifier (`pub`, `pub(crate)`, ...) at the cursor.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Parses `name: Type,` items out of a brace-group body, returning the
/// field names in declaration order.
fn parse_named_fields(body: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        i = skip_attrs(body, i);
        i = skip_vis(body, i);
        let Some(TokenTree::Ident(name)) = body.get(i) else {
            break;
        };
        fields.push(name.to_string());
        i += 1;
        // Expect ':' then the type; skip to the next comma at angle depth 0.
        let mut depth = 0i32;
        while i < body.len() {
            match &body[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected struct/enum, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected item name, found {other:?}"),
    };
    i += 1;
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            g.stream().into_iter().collect::<Vec<_>>()
        }
        _ => panic!(
            "serde derive on `{name}`: only braced (non-generic, non-tuple) items are supported"
        ),
    };
    match kind.as_str() {
        "struct" => Item::Struct(name, parse_named_fields(&body)),
        "enum" => {
            let mut variants = Vec::new();
            let mut j = 0;
            while j < body.len() {
                j = skip_attrs(&body, j);
                let Some(TokenTree::Ident(vname)) = body.get(j) else {
                    break;
                };
                let vname = vname.to_string();
                j += 1;
                match body.get(j) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let fields =
                            parse_named_fields(&g.stream().into_iter().collect::<Vec<_>>());
                        variants.push((vname, Some(fields)));
                        j += 1;
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        panic!("serde derive: tuple variant `{vname}` is not supported")
                    }
                    _ => variants.push((vname, None)),
                }
                if let Some(TokenTree::Punct(p)) = body.get(j) {
                    if p.as_char() == ',' {
                        j += 1;
                    }
                }
            }
            Item::Enum(name, variants)
        }
        other => panic!("serde derive: unsupported item kind `{other}`"),
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct(name, fields) => {
            let mut pushes = String::new();
            for f in &fields {
                pushes.push_str(&format!(
                    "fields.push((\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn to_value(&self) -> ::serde::value::Value {{
                        let mut fields: Vec<(String, ::serde::value::Value)> = Vec::new();
                        {pushes}
                        ::serde::value::Value::Object(fields)
                    }}
                }}"
            )
        }
        Item::Enum(name, variants) => {
            let mut arms = String::new();
            for (v, fields) in &variants {
                match fields {
                    None => arms.push_str(&format!(
                        "{name}::{v} => ::serde::value::Value::Str(\"{v}\".to_string()),\n"
                    )),
                    Some(fs) => {
                        let binders = fs.join(", ");
                        let mut pushes = String::new();
                        for f in fs {
                            pushes.push_str(&format!(
                                "fields.push((\"{f}\".to_string(), ::serde::Serialize::to_value({f})));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binders} }} => {{
                                let mut fields: Vec<(String, ::serde::value::Value)> = Vec::new();
                                {pushes}
                                ::serde::value::Value::Object(vec![(
                                    \"{v}\".to_string(),
                                    ::serde::value::Value::Object(fields),
                                )])
                            }}\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn to_value(&self) -> ::serde::value::Value {{
                        match self {{ {arms} }}
                    }}
                }}"
            )
        }
    };
    out.parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct(name, fields) => {
            let mut inits = String::new();
            for f in &fields {
                inits.push_str(&format!(
                    "{f}: ::serde::Deserialize::from_value(v.get_field(\"{f}\")?)?,\n"
                ));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{
                    fn from_value(v: &::serde::value::Value)
                        -> Result<Self, ::serde::error::Error> {{
                        Ok({name} {{ {inits} }})
                    }}
                }}"
            )
        }
        Item::Enum(name, variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for (v, fields) in &variants {
                match fields {
                    None => unit_arms.push_str(&format!("\"{v}\" => Ok({name}::{v}),\n")),
                    Some(fs) => {
                        let mut inits = String::new();
                        for f in fs {
                            inits.push_str(&format!(
                                "{f}: ::serde::Deserialize::from_value(inner.get_field(\"{f}\")?)?,\n"
                            ));
                        }
                        tagged_arms
                            .push_str(&format!("\"{v}\" => Ok({name}::{v} {{ {inits} }}),\n"));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{
                    fn from_value(v: &::serde::value::Value)
                        -> Result<Self, ::serde::error::Error> {{
                        match v {{
                            ::serde::value::Value::Str(s) => match s.as_str() {{
                                {unit_arms}
                                other => Err(::serde::error::Error::msg(format!(
                                    \"unknown {name} variant `{{other}}`\"
                                ))),
                            }},
                            ::serde::value::Value::Object(pairs) if pairs.len() == 1 => {{
                                let (tag, inner) = &pairs[0];
                                let _ = inner;
                                match tag.as_str() {{
                                    {tagged_arms}
                                    other => Err(::serde::error::Error::msg(format!(
                                        \"unknown {name} variant `{{other}}`\"
                                    ))),
                                }}
                            }}
                            other => Err(::serde::error::Error::ty(\"{name}\", other)),
                        }}
                    }}
                }}"
            )
        }
    };
    out.parse().expect("generated Deserialize impl parses")
}
