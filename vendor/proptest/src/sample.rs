//! Sampling helpers: an index into a collection of yet-unknown length.

/// A position that resolves against a concrete collection length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    /// Wraps raw entropy.
    pub fn new(raw: u64) -> Self {
        Index(raw)
    }

    /// Resolves to an index in `[0, len)`; panics when `len == 0`.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on an empty collection");
        (self.0 % len as u64) as usize
    }
}
