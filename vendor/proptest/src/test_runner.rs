//! Deterministic case generation and failure reporting.

/// Per-suite configuration; only `cases` is supported.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases generated per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; this keeps default suites fast while
        // still exploring a meaningful sample.
        ProptestConfig { cases: 64 }
    }
}

/// A failed property, carrying the formatted assertion message.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Wraps an assertion failure message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic RNG (splitmix64) driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from raw state.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Seeds deterministically from a test name (FNV-1a).
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::new(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        let mut c = TestRng::from_name("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_stays_in_range() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let u = rng.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
