//! `any::<T>()` — full-domain strategies for primitive types.

use crate::sample::Index;
use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain generator.
pub trait Arbitrary {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.unit_f64() * 2.0 - 1.0) as f32 * 1e6
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.unit_f64() * 2.0 - 1.0) * 1e9
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        Index::new(rng.next_u64())
    }
}
