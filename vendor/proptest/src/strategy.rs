//! Strategies: value generators composable with `prop_map` and unions.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A generator of values of one type.
///
/// Object-safe: combinators carry a `Self: Sized` bound so boxed
/// strategies (`prop_oneof!`) work.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Boxes a strategy for use in heterogeneous unions.
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The `prop_map` combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice over boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union; panics on an empty option list.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}
signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (self.start as f64, self.end as f64);
                (lo + rng.unit_f64() * (hi - lo)) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as f64, *self.end() as f64);
                (lo + rng.unit_f64() * (hi - lo)) as $t
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F)
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::any;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(3);
        for _ in 0..500 {
            let v = (5usize..9).sample(&mut rng);
            assert!((5..9).contains(&v));
            let w = (1u8..=255).sample(&mut rng);
            assert!(w >= 1);
            let f = (-2.0f64..3.0).sample(&mut rng);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn map_and_tuples_compose() {
        let mut rng = TestRng::new(9);
        let s = (1usize..=4, any::<u64>()).prop_map(|(n, seed)| (n * 2, seed));
        for _ in 0..100 {
            let (n, _) = s.sample(&mut rng);
            assert!(n % 2 == 0 && (2..=8).contains(&n));
        }
    }

    #[test]
    fn union_draws_every_arm() {
        let u = Union::new(vec![
            boxed(Just(1u32)),
            boxed(Just(2u32)),
            boxed(Just(3u32)),
        ]);
        let mut rng = TestRng::new(11);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[u.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }
}
