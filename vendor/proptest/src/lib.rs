//! Minimal, vendored proptest stand-in.
//!
//! Supports the surface this workspace uses: the `proptest! {}` macro with
//! an optional `#![proptest_config(...)]` header, range and `any::<T>()`
//! strategies, tuples of strategies, `prop_map`, `prop_oneof!`, `Just`,
//! `collection::vec`, `sample::Index`, and the `prop_assert*` macros.
//! Cases are generated from a deterministic splitmix64 stream seeded by
//! the test name, so failures reproduce across runs.

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub use arbitrary::{any, Arbitrary};
pub use strategy::{Just, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// Everything a `proptest!` test body typically needs.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Fails the current proptest case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current proptest case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Fails the current proptest case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Uniformly picks one of several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strategy)),+])
    };
}

/// Declares property tests. Each `pat in strategy` argument is sampled per
/// case; the body runs once per case and may use `prop_assert*`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg_pat:pat in $arg_strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(stringify!($name));
            for case in 0..config.cases {
                let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $arg_pat =
                        $crate::Strategy::sample(&($arg_strat), &mut rng);)+
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "proptest `{}` failed at case {}/{}:\n{}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}
