//! Collection strategies: vectors of a given element strategy.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// An inclusive length range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Generates `Vec<S::Value>` with lengths drawn from a [`SizeRange`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Vector strategy over `element` with the given length range.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo
            + if span == 0 {
                0
            } else {
                rng.below(span + 1) as usize
            };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::any;

    #[test]
    fn lengths_cover_the_range() {
        let s = vec(any::<u8>(), 0..5);
        let mut rng = TestRng::new(1);
        let mut seen = [false; 5];
        for _ in 0..300 {
            let v = s.sample(&mut rng);
            assert!(v.len() < 5);
            seen[v.len()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
