//! Minimal, vendored serde_json stand-in over the `serde` value model.

pub use serde::error::Error;
pub use serde::value::Value;

/// Serializes a value to compact JSON text.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json())
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let v = Value::parse_json(text)?;
    T::from_value(&v)
}

#[cfg(test)]
mod tests {
    use serde::{Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Point {
        x: f64,
        n: usize,
        label: String,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Shape {
        Unit,
        Scaled { factor: f64, tag: u32 },
    }

    #[test]
    fn struct_round_trip() {
        let p = Point {
            x: -1.25,
            n: 42,
            label: "hello \"world\"".into(),
        };
        let text = super::to_string(&p).unwrap();
        assert_eq!(super::from_str::<Point>(&text).unwrap(), p);
    }

    #[test]
    fn enum_round_trip_externally_tagged() {
        for s in [
            Shape::Unit,
            Shape::Scaled {
                factor: 0.5,
                tag: 7,
            },
        ] {
            let text = super::to_string(&s).unwrap();
            assert_eq!(super::from_str::<Shape>(&text).unwrap(), s);
        }
        assert_eq!(super::to_string(&Shape::Unit).unwrap(), "\"Unit\"");
    }

    #[test]
    fn missing_field_is_an_error() {
        let err = super::from_str::<Point>("{\"x\":1.0,\"n\":2}").unwrap_err();
        assert!(err.to_string().contains("label"));
    }
}
