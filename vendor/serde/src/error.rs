//! Serialization/deserialization error type.

use crate::value::Value;

/// Error raised while converting between values and Rust types, or while
/// parsing/printing JSON text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// An error with a preformatted message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }

    /// A type-mismatch error: wanted `expected`, found `got`.
    pub fn ty(expected: &str, got: &Value) -> Self {
        Error(format!("expected {expected}, found {}", got.kind()))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}
