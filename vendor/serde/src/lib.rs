//! Minimal, vendored serde stand-in: a JSON-shaped data model plus
//! `Serialize`/`Deserialize` traits and derive macros.
//!
//! The derives cover the shapes this workspace uses: structs with named
//! fields, enums with unit and named-field variants (externally tagged,
//! matching upstream serde's default representation).

pub use serde_derive::{Deserialize, Serialize};

pub mod error;
pub mod value;

use error::Error;
use value::{Number, Value};

/// Types that can be converted into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a tree [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a tree [`Value`].
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::UInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error::ty("unsigned integer", v))?;
                <$t>::try_from(n).map_err(|_| Error::msg(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
impl_ser_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::Int(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| Error::ty("integer", v))?;
                <$t>::try_from(n).map_err(|_| Error::msg(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64, isize);

macro_rules! impl_ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::Float(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_f64().map(|f| f as $t).ok_or_else(|| Error::ty("number", v))
            }
        }
    )*};
}
impl_ser_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::ty("bool", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::ty("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::ty("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}
