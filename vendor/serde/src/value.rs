//! The tree data model plus JSON text printing and parsing.

use crate::error::Error;

/// A JSON-compatible number, kept in its widest exact representation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A signed integer (also covers all non-negative values `<= i64::MAX`).
    Int(i64),
    /// An unsigned integer above `i64::MAX`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
}

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Num(Number),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An ordered map (insertion order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Looks a key up in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Looks a required field up, erroring with the field name.
    pub fn get_field(&self, key: &str) -> Result<&Value, Error> {
        self.get(key)
            .ok_or_else(|| Error::msg(format!("missing field `{key}`")))
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(Number::Int(i)) if *i >= 0 => Some(*i as u64),
            Value::Num(Number::UInt(u)) => Some(*u),
            Value::Num(Number::Float(f))
                if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 =>
            {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(Number::Int(i)) => Some(*i),
            Value::Num(Number::UInt(u)) => i64::try_from(*u).ok(),
            Value::Num(Number::Float(f)) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => {
                Some(*f as i64)
            }
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(Number::Int(i)) => Some(*i as f64),
            Value::Num(Number::UInt(u)) => Some(*u as f64),
            Value::Num(Number::Float(f)) => Some(*f),
            _ => None,
        }
    }

    /// Renders the value as compact JSON text.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(Number::Int(i)) => out.push_str(&i.to_string()),
            Value::Num(Number::UInt(u)) => out.push_str(&u.to_string()),
            Value::Num(Number::Float(f)) => {
                if f.is_finite() {
                    // Rust's shortest round-trip formatting; force a decimal
                    // point so the value re-parses as a float.
                    let s = f.to_string();
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_json_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_json(out);
                }
                out.push(']');
            }
            Value::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text into a value.
    pub fn parse_json(text: &str) -> Result<Value, Error> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(Error::msg("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(Error::msg("unexpected end of input")),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(Error::msg(format!(
                "unexpected character '{}' at byte {}",
                c as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::msg("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::msg("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::msg("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::msg("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(Error::msg("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| Error::msg("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this workspace.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(Error::msg("unknown escape")),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at pos - 1.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    if end > self.bytes.len() {
                        return Err(Error::msg("invalid utf-8 in string"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::msg("invalid utf-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Num(Number::Int(i)));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Num(Number::UInt(u)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Num(Number::Float(f)))
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v = Value::Object(vec![
            ("id".into(), Value::Num(Number::Int(3))),
            ("x".into(), Value::Num(Number::Float(1.5))),
            ("s".into(), Value::Str("a\"b".into())),
            (
                "arr".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        let text = v.to_json();
        assert_eq!(Value::parse_json(&text).unwrap(), v);
    }

    #[test]
    fn big_u64_survives() {
        let v = Value::Num(Number::UInt(u64::MAX));
        let text = v.to_json();
        assert_eq!(Value::parse_json(&text).unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn float_whole_numbers_reparse_as_float() {
        let v = Value::Num(Number::Float(2.0));
        assert_eq!(v.to_json(), "2.0");
        assert_eq!(Value::parse_json("2.0").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Value::parse_json("{").is_err());
        assert!(Value::parse_json("[1,]").is_err());
        assert!(Value::parse_json("nul").is_err());
        assert!(Value::parse_json("1 2").is_err());
    }
}
