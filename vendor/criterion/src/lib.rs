//! Minimal, vendored criterion stand-in: the macro/group/bencher surface
//! with a simple wall-clock timer printing mean iteration time.

use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Work-amount annotation for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// A parameter-only id (used inside groups).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Times closures.
pub struct Bencher {
    samples: u32,
    last: Option<Duration>,
}

impl Bencher {
    /// Runs the routine repeatedly and records the mean iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up, then timed samples.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.last = Some(start.elapsed() / self.samples);
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    samples: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { samples: 10 }
    }
}

impl Criterion {
    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(self.samples, &id.into().label, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = self.samples;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            samples,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    samples: u32,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = (n as u32).max(1);
        self
    }

    /// Annotates the amount of work per iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(self.samples, &label, self.throughput, f);
        self
    }

    /// Runs one benchmark parameterized by an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(self.samples, &label, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnOnce(&mut Bencher)>(
    samples: u32,
    label: &str,
    throughput: Option<Throughput>,
    f: F,
) {
    let mut b = Bencher {
        samples,
        last: None,
    };
    f(&mut b);
    match b.last {
        Some(t) => {
            let extra = match throughput {
                Some(Throughput::Bytes(n)) => {
                    let gbps = n as f64 / t.as_secs_f64() / 1e9;
                    format!("  ({gbps:.3} GB/s)")
                }
                Some(Throughput::Elements(n)) => {
                    let meps = n as f64 / t.as_secs_f64() / 1e6;
                    format!("  ({meps:.3} Melem/s)")
                }
                None => String::new(),
            };
            println!("{label:<60} {t:>12.3?}/iter{extra}");
        }
        None => println!("{label:<60} (no measurement)"),
    }
}

/// Declares a group-runner function invoking each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
